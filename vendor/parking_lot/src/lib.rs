//! Vendored minimal stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io. This crate
//! reproduces the `parking_lot` API subset the workspace uses — `Mutex` and
//! `RwLock` whose `lock()`/`read()`/`write()` return guards directly (no
//! `Result`, no poisoning). Lock poisoning is deliberately ignored, exactly
//! like the real `parking_lot`.

use std::sync;

/// A mutual exclusion primitive (API subset of `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the inner value (no locking needed with `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock (API subset of `parking_lot::RwLock`).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrow the inner value (no locking needed with `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(l.into_inner(), 2);
    }
}

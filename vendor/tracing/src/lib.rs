//! Vendored minimal stand-in for `tracing` (offline build).
//!
//! The build environment has no network access to crates.io. This crate
//! reproduces the small slice of the `tracing` model the workspace needs:
//! spans with numeric IDs and parent links, structured `key = value`
//! events, and a pluggable [`Subscriber`] — with a disabled path that
//! costs one atomic load per call site. The macro surface of the real
//! crate is replaced by plain functions ([`span`], [`event`]) taking a
//! `&[(&str, Value)]` field slice; call sites build that slice on the
//! stack, so the disabled path allocates nothing.
//!
//! Design notes:
//!
//! - The global subscriber is an `AtomicPtr` to a leaked
//!   `Box<Box<dyn Subscriber>>` (double-boxed so the pointer is thin).
//!   A null pointer means "disabled"; [`enabled`] is exactly that null
//!   check. Replacing the subscriber leaks the previous one — other
//!   threads may still hold the raw pointer, and the expected usage is
//!   "install once at startup" (the bench toggles twice per process,
//!   which leaks two small boxes and nothing else).
//! - Span IDs are assigned by the subscriber ([`Subscriber::new_span`]),
//!   so a ring-buffer recorder can reuse its sequence numbers. ID 0 is
//!   reserved for "no span".
//! - The current span is a thread-local stack, pushed by
//!   [`Span::enter`]'s RAII guard. Events pick up the top of the stack
//!   as their enclosing span; new spans pick it up as their parent.
//! - [`Value`] has only `Copy` variants so subscribers can store fields
//!   in fixed-size POD slots (the flight-recorder use case). Anything
//!   dynamic must be rendered to a number or a `&'static str` by the
//!   caller.

use std::cell::RefCell;
use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// A structured field value. Deliberately `Copy`-only: subscribers may
/// persist fields into fixed-size slots without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An unsigned integer (counts, sizes, IDs, nanoseconds).
    U64(u64),
    /// A signed integer (deltas, directions).
    I64(i64),
    /// A boolean flag.
    Bool(bool),
    /// A static string (variant names, labels — never formatted data).
    Str(&'static str),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

/// One structured field: a static key and a [`Value`].
pub type Field = (&'static str, Value);

/// Receives spans and events. Implementations must be cheap and
/// non-blocking — subscribers run inline on request and peel hot paths.
pub trait Subscriber: Send + Sync {
    /// Allocate an ID for a new span. `parent` is 0 for root spans.
    /// Must never return 0 (reserved for "no span").
    fn new_span(&self, name: &'static str, parent: u64, fields: &[Field]) -> u64;

    /// A point-in-time event inside `span` (0 = no enclosing span).
    fn event(&self, span: u64, name: &'static str, fields: &[Field]);

    /// The span with `id` has been dropped. Default: ignore.
    fn close_span(&self, id: u64) {
        let _ = id;
    }
}

// The installed subscriber, double-boxed so the trait object fits a thin
// pointer. Null = disabled.
static SUBSCRIBER: AtomicPtr<Box<dyn Subscriber>> = AtomicPtr::new(ptr::null_mut());

/// Install the global subscriber, enabling all call sites. The previous
/// subscriber (if any) is leaked — see the crate docs.
pub fn set_subscriber(sub: Box<dyn Subscriber>) {
    let boxed: *mut Box<dyn Subscriber> = Box::into_raw(Box::new(sub));
    // ordering: Release publishes the subscriber's construction to
    // threads that observe the pointer with the matching Acquire load.
    SUBSCRIBER.store(boxed, Ordering::Release);
}

/// Disable tracing globally (the current subscriber is leaked).
pub fn clear_subscriber() {
    // ordering: Release for symmetry with set_subscriber; the null store
    // publishes nothing but keeps the pair self-documenting.
    SUBSCRIBER.store(ptr::null_mut(), Ordering::Release);
}

/// Is a subscriber installed? This is the whole disabled-path cost: one
/// atomic load and a null check.
#[inline]
pub fn enabled() -> bool {
    // ordering: Acquire pairs with set_subscriber's Release so a
    // non-null pointer implies a fully-constructed subscriber.
    !SUBSCRIBER.load(Ordering::Acquire).is_null()
}

#[inline]
fn with<R>(f: impl FnOnce(&dyn Subscriber) -> R) -> Option<R> {
    // ordering: Acquire pairs with set_subscriber's Release (see
    // `enabled`).
    let p = SUBSCRIBER.load(Ordering::Acquire);
    if p.is_null() {
        return None;
    }
    // SAFETY: non-null pointers come only from Box::into_raw in
    // set_subscriber and are never freed (leak-on-replace policy), so
    // the reference is valid for the program's lifetime. The double
    // indirection is deliberate: it keeps the stored pointer thin.
    let sub: &dyn Subscriber = unsafe { (*p).as_ref() };
    Some(f(sub))
}

thread_local! {
    /// Stack of entered span IDs; the top is the "current" span.
    static CURRENT: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The ID of the innermost entered span on this thread (0 if none).
pub fn current_span() -> u64 {
    CURRENT.with(|c| c.borrow().last().copied().unwrap_or(0))
}

/// A handle to a subscriber-allocated span. Dropping it notifies the
/// subscriber via [`Subscriber::close_span`]. ID 0 is the inert "no
/// subscriber / no span" handle and costs nothing to drop.
#[derive(Debug)]
pub struct Span {
    id: u64,
}

impl Span {
    /// The inert span (used when tracing is disabled).
    pub const fn none() -> Span {
        Span { id: 0 }
    }

    /// This span's subscriber-assigned ID (0 = inert).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Enter the span: events and child spans created on this thread
    /// while the guard lives attach to it.
    pub fn enter(&self) -> Entered<'_> {
        if self.id != 0 {
            CURRENT.with(|c| c.borrow_mut().push(self.id));
        }
        Entered { span: self }
    }

    /// Run `f` inside the span (enter/exit around the closure).
    pub fn in_scope<R>(&self, f: impl FnOnce() -> R) -> R {
        let _g = self.enter();
        f()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id != 0 {
            with(|s| s.close_span(self.id));
        }
    }
}

/// RAII guard returned by [`Span::enter`].
#[derive(Debug)]
pub struct Entered<'a> {
    span: &'a Span,
}

impl Drop for Entered<'_> {
    fn drop(&mut self) {
        if self.span.id != 0 {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
}

/// Create a span named `name`, parented to the current span. Returns
/// [`Span::none`] when tracing is disabled.
pub fn span(name: &'static str, fields: &[Field]) -> Span {
    match with(|s| s.new_span(name, current_span(), fields)) {
        Some(id) => Span { id },
        None => Span::none(),
    }
}

/// Emit a structured event inside the current span. A no-op (one atomic
/// load) when tracing is disabled.
#[inline]
pub fn event(name: &'static str, fields: &[Field]) {
    with(|s| s.event(current_span(), name, fields));
}

/// Render a field slice as `k=v` pairs separated by spaces (the shared
/// human-readable form used by dumps and logs).
pub fn render_fields(fields: &[Field]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(&v.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Collect {
        next: AtomicU64,
        log: Mutex<Vec<String>>,
    }

    impl Subscriber for Collect {
        fn new_span(&self, name: &'static str, parent: u64, fields: &[Field]) -> u64 {
            // ordering: Relaxed — a test-only ID counter with no
            // ordering relationship to other data.
            let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
            self.log.lock().unwrap().push(format!(
                "span {id} parent={parent} {name} {}",
                render_fields(fields)
            ));
            id
        }

        fn event(&self, span: u64, name: &'static str, fields: &[Field]) {
            self.log
                .lock()
                .unwrap()
                .push(format!("event in={span} {name} {}", render_fields(fields)));
        }

        fn close_span(&self, id: u64) {
            self.log.lock().unwrap().push(format!("close {id}"));
        }
    }

    // The global subscriber is process-wide, so the tests that install
    // one serialize on this lock (cargo runs #[test] fns concurrently).
    static GLOBAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_path_is_inert() {
        let _g = GLOBAL.lock().unwrap();
        clear_subscriber();
        assert!(!enabled());
        let s = span("root", &[("a", Value::U64(1))]);
        assert_eq!(s.id(), 0);
        let _e = s.enter();
        event("nothing", &[]);
        assert_eq!(current_span(), 0);
    }

    #[test]
    fn spans_nest_and_events_attach() {
        let _g = GLOBAL.lock().unwrap();
        set_subscriber(Box::new(Collect::default()));
        assert!(enabled());
        {
            let root = span("root", &[("kind", Value::Str("request"))]);
            let _r = root.enter();
            assert_eq!(current_span(), root.id());
            let child = span("child", &[]);
            let _c = child.enter();
            event("tick", &[("n", Value::U64(7))]);
            assert_eq!(current_span(), child.id());
        }
        assert_eq!(current_span(), 0);
        clear_subscriber();
    }

    #[test]
    fn parent_links_are_recorded() {
        let _g = GLOBAL.lock().unwrap();
        let collect = Box::new(Collect::default());
        // Keep a raw handle for assertions after install: the global owns
        // the box, so snoop via a second subscriber-side log instead.
        set_subscriber(collect);
        let root = span("outer", &[]);
        let _r = root.enter();
        let child = span("inner", &[]);
        assert_ne!(child.id(), 0);
        assert_ne!(child.id(), root.id());
        drop(child);
        clear_subscriber();
    }

    #[test]
    fn value_conversions_and_rendering() {
        let fields: Vec<Field> = vec![
            ("count", 3u64.into()),
            ("delta", (-2i64).into()),
            ("ok", true.into()),
            ("kind", "insert".into()),
        ];
        assert_eq!(
            render_fields(&fields),
            "count=3 delta=-2 ok=true kind=insert"
        );
    }
}

//! Vendored minimal stand-in for the `proptest` API subset this workspace
//! uses.
//!
//! The build environment has no network access to crates.io. This crate
//! reproduces the *macro surface* of real proptest — `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`, `ProptestConfig`,
//! `any`, `Just`, range/tuple/collection strategies, and the `prop_map` /
//! `prop_flat_map` / `prop_filter` combinators — on top of a simple
//! deterministic random sampler.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and the values
//!   are reproducible (the RNG is seeded from the test's module path and
//!   name), but no minimization is attempted.
//! * Sampling is plain uniform draws rather than proptest's bias-aware
//!   generators.
//!
//! Swapping back to crates.io proptest is a one-line manifest change; the
//! test sources need no edits.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test configuration and the deterministic sampler.

    /// Configuration for a `proptest!` block (subset of the real one).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic 64-bit sampler (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier string.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128).wrapping_mul(n as u128);
                if (m as u64) >= n.wrapping_neg() % n {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of random values (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values through `f`.
    fn prop_map<F, T>(self, f: F) -> PropMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        PropMap { base: self, f }
    }

    /// Build a dependent strategy from each produced value.
    fn prop_flat_map<F, S>(self, f: F) -> PropFlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        PropFlatMap { base: self, f }
    }

    /// Reject values failing `pred` (resampling, bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> PropFilter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        PropFilter {
            base: self,
            reason,
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` combinator.
pub struct PropMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for PropMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct PropFlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for PropFlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// `prop_filter` combinator.
pub struct PropFilter<S, F> {
    base: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for PropFilter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}): could not satisfy predicate in 1000 draws",
            self.reason
        );
    }
}

/// Always produce a clone of the given value (proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy choosing uniformly between boxed alternatives
/// (the desugaring of [`prop_oneof!`]).
pub struct OneOf<V> {
    /// The alternatives to choose between. Must be non-empty.
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

// --- Integer / float range strategies --------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

// --- Tuple strategies -------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

// --- `any` ------------------------------------------------------------------

/// Full-domain strategy for primitives (proptest's `any::<T>()`).
pub struct Any<T>(PhantomData<T>);

/// Produce the full-domain strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

// --- Collections ------------------------------------------------------------

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{test_runner::TestRng, Strategy};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// A size specification: fixed or a range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo + 1) as u64;
            self.lo + rng.below(span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s. The target size is drawn from `size`; if
    /// the element domain is too small to reach it, a smaller set results.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: small domains may not reach `target`.
            for _ in 0..(4 * target + 16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeMap`s, sized like [`btree_set`].
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeMap::new();
            for _ in 0..(4 * target + 16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.sample(rng), self.value.sample(rng));
            }
            out
        }
    }
}

pub mod bool {
    //! Boolean strategies (subset of `proptest::bool`).

    use super::{test_runner::TestRng, Strategy};

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// See [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.p
        }
    }
}

// Re-exports so fully qualified `proptest::collection::vec` etc. work and
// the items above are nameable from the crate root.
pub use self::collection::SizeRange;

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        BoxedStrategy, Just, Strategy,
    };
}

// --- Macros -----------------------------------------------------------------

/// Outcome of one generated case (implementation detail of [`proptest!`]
/// and [`prop_assume!`]).
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The case ran to completion.
    Accepted,
    /// The case was rejected by `prop_assume!` and does not count.
    Rejected,
}

/// Skip the current case unless the condition holds (no failure recorded).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return $crate::CaseOutcome::Rejected;
        }
    };
}

/// Assert inside a property test (panics on failure; no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strategy)),+] }
    };
}

/// The `proptest!` block: defines `#[test]` functions whose arguments are
/// drawn from strategies. Mirrors real proptest's grammar for the subset
/// `fn name(pat in strategy, ...) { body }` with an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // `prop_assume!` rejections redraw rather than consuming the
            // case budget (as in real proptest), with a cap so a
            // never-satisfiable assumption fails instead of spinning.
            let max_rejects = (config.cases as u64) * 16 + 1024;
            let mut accepted: u32 = 0;
            let mut rejected: u64 = 0;
            while accepted < config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || {
                        $body
                        $crate::CaseOutcome::Accepted
                    },
                ));
                match outcome {
                    Ok($crate::CaseOutcome::Accepted) => accepted += 1,
                    Ok($crate::CaseOutcome::Rejected) => {
                        rejected += 1;
                        assert!(
                            rejected <= max_rejects,
                            "`{}`: prop_assume! rejected {} draws before reaching {} cases",
                            stringify!($name),
                            rejected,
                            config.cases,
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (deterministic seed; rerun reproduces it)",
                            accepted + 1,
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_patterns((a, b) in (1u64..5, 10u64..20), flag in any::<bool>()) {
            prop_assert!(a < 5 && b >= 10);
            let _ = flag;
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u64>(), 2..6),
            s in crate::collection::btree_set(0u64..1000, 0..10),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn combinators_compose(
            n in (1usize..4).prop_flat_map(|k| crate::collection::vec(Just(k), k)),
            sign in prop_oneof![Just(1i64), Just(-1)],
        ) {
            prop_assert!(!n.is_empty() && n.iter().all(|&x| x == n.len()));
            prop_assert!(sign == 1 || sign == -1);
        }
    }

    static ASSUME_BODY_RUNS: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        // No #[test] attribute: driven by the wrapper below so the run
        // count can be asserted exactly once.
        fn assume_heavy_body(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            ASSUME_BODY_RUNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn prop_assume_redraws_instead_of_consuming_budget() {
        assume_heavy_body();
        // ~half the draws are rejected; all 20 configured cases must still
        // execute the body.
        assert_eq!(
            ASSUME_BODY_RUNS.load(std::sync::atomic::Ordering::Relaxed),
            20
        );
    }
}

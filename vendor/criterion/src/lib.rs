//! Vendored minimal stand-in for the `criterion` API subset this workspace
//! uses.
//!
//! The build environment has no network access to crates.io. This crate
//! provides the types and macros the `peel-bench` benches compile against —
//! `Criterion`, `benchmark_group`, `bench_function`, `BenchmarkId`,
//! `Throughput`, `BatchSize`, `iter`/`iter_batched`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! mean-of-samples timer instead of criterion's statistical machinery.
//! Output is one line per benchmark: mean wall time and derived throughput.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion's `black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted, not used by this shim's timer).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Create an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Top-level benchmark driver (subset of criterion's).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Time `f` and print one summary line.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let total: Duration = bencher.samples.iter().sum();
        let n = bencher.samples.len().max(1);
        let mean = total / n as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(e)) if mean > Duration::ZERO => {
                format!("  {:.3e} elem/s", e as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(b)) if mean > Duration::ZERO => {
                format!("  {:.3e} B/s", b as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{}: mean {:?} over {} samples{}",
            self.name, id, mean, n, rate
        );
        self
    }

    /// Finish the group (no-op beyond matching criterion's API).
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` for the configured number of samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warmup call, then timed samples.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // warmup + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(2);
        let mut setups = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 3);
    }
}

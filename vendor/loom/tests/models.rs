//! Self-tests for the vendored model checker: known-good models must
//! pass exhaustively, known-broken models must be caught, and a caught
//! failure's schedule string must replay to the same failure.

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::{explore, model, Builder};

#[test]
fn atomic_rmw_counter_is_exact() {
    model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom::thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
}

/// The deliberately-injected race: a load-then-store "increment" is not
/// atomic. The checker must find the lost update, and the reported
/// schedule must deterministically replay it.
#[test]
fn racy_load_then_store_is_caught_and_replays() {
    let broken = || {
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom::thread::spawn(move || {
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
    };
    let failure = explore(broken).expect_err("checker must catch the lost update");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {}",
        failure.message
    );
    // Replay: the schedule string alone reproduces the same failure in
    // a single execution.
    let mut replayer = Builder::new();
    replayer.replay = Some(failure.schedule.clone());
    let replayed = replayer.explore(broken).expect_err("replay must fail too");
    assert_eq!(replayed.message, failure.message);
    assert_eq!(replayed.schedule, failure.schedule);
}

/// Relaxed message passing lets the reader see the flag without the
/// data — the weak-memory modeling must surface the stale read.
#[test]
fn relaxed_message_passing_reads_stale_data() {
    let failure = explore(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let h = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data read");
        }
        h.join().unwrap();
    })
    .expect_err("relaxed flag must not publish the data");
    assert!(failure.message.contains("stale data read"));
}

/// The same pattern with Release/Acquire is correct and must pass.
#[test]
fn release_acquire_message_passing_is_sound() {
    model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let h = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        h.join().unwrap();
    });
}

#[test]
fn mutex_guards_nonatomic_increments() {
    model(|| {
        let c = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom::thread::spawn(move || {
                    let mut g = c.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*c.lock().unwrap(), 2);
    });
}

#[test]
fn lock_order_inversion_deadlock_is_detected() {
    let failure = explore(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = loom::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_gb, _ga));
        h.join().unwrap();
    })
    .expect_err("AB-BA locking must deadlock in some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn condvar_handoff_has_no_lost_final_wakeup() {
    model(|| {
        let state = Arc::new((Mutex::new(false), loom::sync::Condvar::new()));
        let s2 = Arc::clone(&state);
        let h = loom::thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*state;
        let mut done = m.lock().unwrap();
        while !*done {
            done = cv.wait(done).unwrap();
        }
        drop(done);
        h.join().unwrap();
    });
}

/// Poisoning flows through from the real `std` mutex: a panic with the
/// guard held poisons it, and `lock()` hands back a recoverable
/// `PoisonError` — the contract `peel-service`'s `plock` relies on.
#[test]
fn mutex_poisoning_is_recoverable_in_model() {
    model(|| {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let h = loom::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g = m2.lock().unwrap();
                panic!("poison the lock");
            }));
        });
        h.join().unwrap();
        assert!(m.is_poisoned());
        let v = *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(v, 7);
    });
}

/// Exhaustiveness sanity: a small model finishes its whole schedule
/// space (`complete == true`) in a modest number of runs.
#[test]
fn small_model_space_is_exhausted() {
    let stats = explore(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let h = loom::thread::spawn(move || {
            c2.fetch_add(1, Ordering::AcqRel);
        });
        c.fetch_add(1, Ordering::AcqRel);
        h.join().unwrap();
        assert_eq!(c.load(Ordering::Acquire), 2);
    })
    .expect("model must pass");
    assert!(stats.complete, "space not exhausted in {} runs", stats.runs);
    assert!(stats.runs > 1, "no interleaving was explored");
}

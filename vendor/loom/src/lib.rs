//! Vendored minimal stand-in for the `loom` concurrency model checker
//! (offline build), in the same API-subset-shim discipline as the other
//! `vendor/` crates: it reproduces exactly the subset this workspace
//! uses, with the same exhaustive-checking semantics at model scale.
//!
//! What it does
//! ------------
//! [`model`] runs a closure repeatedly, exploring **every** schedule of
//! the threads it spawns (up to a preemption bound, default 2) and every
//! weak-memory value a relaxed load may observe, using the drop-in
//! [`sync::atomic`], [`sync::Mutex`]/[`sync::Condvar`], and [`thread`]
//! types. The first execution that panics, asserts, or deadlocks fails
//! the model with a **schedule string** (e.g. `t1.t0.v1`) that replays
//! that exact execution via [`Builder::replay`] or the `LOOM_REPLAY`
//! environment variable. `check` also writes the schedule under
//! `target/loom/` so CI can upload failures as artifacts.
//!
//! Outside [`model`], every shim type delegates directly to its `std`
//! equivalent, so code compiled with `--cfg loom` still runs normally
//! in ordinary tests.
//!
//! Supported: `AtomicBool`/`AtomicU32`/`AtomicU64`/`AtomicUsize`/
//! `AtomicI64` (load/store/swap/CAS/fetch ops with acquire-release and
//! SeqCst visibility modeling), `Mutex` (+ real `std` poisoning),
//! `Condvar` (incl. immediate-timeout `wait_timeout`), `thread::spawn`/
//! `join`/`yield_now`. Not modeled: `UnsafeCell` data-race detection on
//! non-atomic data, SC fences, `std::thread::park`.

mod builder;
pub(crate) mod rt;
pub mod sync;
pub mod thread;

pub use builder::{Builder, Failure, Stats};

/// `loom::model::Builder` compatibility path (the function [`model()`]
/// and this module share a name, as in real loom).
pub mod model {
    pub use crate::builder::Builder;
}

/// Exhaustively check a concurrency model with default settings,
/// panicking (with a replayable schedule) on the first failure.
pub fn model<F: Fn()>(f: F) {
    Builder::new().check(f)
}

/// Like [`model`] but returns the first failure instead of panicking —
/// for tests that assert a model *does* fail (e.g. seeded races).
pub fn explore<F: Fn()>(f: F) -> Result<Stats, Failure> {
    Builder::new().explore(f)
}

//! Model-aware `std::thread` subset. Inside a model, spawned closures
//! run on real OS threads serialized by the scheduler token; outside a
//! model everything delegates to `std::thread`.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

use crate::rt::{self, AbortToken, Rt};

type Slot<T> = Arc<StdMutex<Option<T>>>;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        rt: Arc<Rt>,
        tid: usize,
        slot: Slot<T>,
    },
}

/// Handle to a spawned (model or real) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result. A panic
    /// that escaped a model thread has already failed the model; the
    /// `Err` arm here mirrors `std` for API compatibility.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { rt, tid, slot } => {
                let me = rt::current().expect("join called off-model").1;
                rt.join_thread(me, tid);
                match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(v) => Ok(v),
                    None => Err(Box::new("loom: joined model thread panicked".to_string())),
                }
            }
        }
    }
}

/// Spawn a thread. In a model the child participates in exhaustive
/// scheduling; the spawn itself is a scheduling point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
        Some((rt, me)) => {
            let tid = rt.register_thread(me);
            let slot: Slot<T> = Arc::new(StdMutex::new(None));
            let rt2 = Arc::clone(&rt);
            let slot2 = Arc::clone(&slot);
            let real = std::thread::Builder::new()
                .name(format!("loom-{tid}"))
                .spawn(move || {
                    rt::set_current(Some((Arc::clone(&rt2), tid)));
                    if !rt2.wait_first(tid) {
                        rt2.finish_silent(tid);
                        return;
                    }
                    match panic::catch_unwind(AssertUnwindSafe(f)) {
                        Ok(v) => {
                            *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                            rt2.finish_thread(tid, None);
                        }
                        Err(p) if p.is::<AbortToken>() => rt2.finish_silent(tid),
                        Err(p) => {
                            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                                (*s).to_string()
                            } else if let Some(s) = p.downcast_ref::<String>() {
                                s.clone()
                            } else {
                                "model thread panicked".to_string()
                            };
                            rt2.finish_thread(tid, Some(msg));
                        }
                    }
                })
                .expect("spawn model thread");
            rt.adopt_real(real);
            rt.yield_point(me);
            JoinHandle {
                inner: Inner::Model { rt, tid, slot },
            }
        }
    }
}

/// Voluntary scheduling point (no-op semantics, richer interleaving).
pub fn yield_now() {
    match rt::current() {
        None => std::thread::yield_now(),
        Some((rt, me)) => rt.yield_point(me),
    }
}

//! The exploration driver: runs a model closure under every schedule
//! (depth-first over recorded choice points, bounded preemption), and
//! on failure reports — and can replay — the exact choice sequence.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::Arc;

use crate::rt::{self, Rt, MAIN};

pub use crate::rt::Failure;

/// Exploration statistics returned by [`Builder::explore`].
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Number of executions performed.
    pub runs: u64,
    /// `true` if the search space was exhausted (under the preemption
    /// bound); `false` if `max_runs` stopped it early or a single
    /// schedule was replayed.
    pub complete: bool,
}

/// Configures a model-checking run.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum number of involuntary context switches explored per
    /// execution. 2–3 catches almost all real bugs while keeping the
    /// search tractable (iterative context bounding).
    pub preemption_bound: usize,
    /// Upper bound on executions before giving up (with a warning on
    /// stderr) rather than failing.
    pub max_runs: u64,
    /// Replay exactly one schedule (as printed in a failure report)
    /// instead of searching. Also settable via the `LOOM_REPLAY`
    /// environment variable.
    pub replay: Option<String>,
    /// Where `check` writes failure schedules (default `target/loom`,
    /// overridable via `LOOM_SCHEDULE_DIR`).
    pub schedule_dir: Option<PathBuf>,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

static FAILURE_SEQ: AtomicU64 = AtomicU64::new(0);

impl Builder {
    pub fn new() -> Builder {
        Builder {
            preemption_bound: 2,
            max_runs: 200_000,
            replay: None,
            schedule_dir: None,
        }
    }

    /// Run the model to completion, panicking with the failure message
    /// and replay schedule if any execution fails. The schedule is also
    /// written under `target/loom/` so CI can upload it as an artifact.
    pub fn check<F: Fn()>(&self, f: F) {
        match self.explore(f) {
            Ok(stats) => {
                if !stats.complete && self.replay.is_none() {
                    eprintln!(
                        "loom: warning: stopped after {} executions without exhausting \
                         the schedule space (raise max_runs to finish)",
                        stats.runs
                    );
                }
            }
            Err(fail) => {
                let path = self.write_schedule(&fail);
                let hint = match &path {
                    Some(p) => format!("\nschedule written to {}", p.display()),
                    None => String::new(),
                };
                panic!(
                    "loom model failed: {}\nreplay schedule: {}\nreplay with \
                     LOOM_REPLAY=\"{}\" (or Builder::replay){}",
                    fail.message, fail.schedule, fail.schedule, hint
                );
            }
        }
    }

    /// Like [`Builder::check`] but returns the first failure instead of
    /// panicking — used by tests that expect a model to fail.
    pub fn explore<F: Fn()>(&self, f: F) -> Result<Stats, Failure> {
        let replay = self
            .replay
            .clone()
            .or_else(|| std::env::var("LOOM_REPLAY").ok());
        let replay_once = replay.is_some();
        let mut prefix: Vec<usize> = match &replay {
            Some(s) => rt::parse_schedule(s).map_err(|message| Failure {
                message,
                schedule: s.clone(),
            })?,
            None => Vec::new(),
        };
        let rt = Arc::new(Rt::new(self.preemption_bound));
        let mut runs = 0u64;
        loop {
            runs += 1;
            rt.begin_run(std::mem::take(&mut prefix));
            rt::set_current(Some((rt.clone(), MAIN)));
            let result = panic::catch_unwind(AssertUnwindSafe(&f));
            match result {
                Ok(()) => rt.main_drain(),
                Err(p) if p.is::<rt::AbortToken>() => {}
                Err(p) => rt.fail_from_payload(p.as_ref()),
            }
            rt::set_current(None);
            rt.end_run();
            if let Some(failure) = rt.take_failure() {
                return Err(failure);
            }
            if replay_once {
                return Ok(Stats {
                    runs,
                    complete: false,
                });
            }
            let st = rt.lock_state();
            match next_prefix(&st.trace) {
                Some(p) => prefix = p,
                None => {
                    return Ok(Stats {
                        runs,
                        complete: true,
                    })
                }
            }
            drop(st);
            if runs >= self.max_runs {
                return Ok(Stats {
                    runs,
                    complete: false,
                });
            }
        }
    }

    fn write_schedule(&self, fail: &Failure) -> Option<PathBuf> {
        let dir = self
            .schedule_dir
            .clone()
            .or_else(|| std::env::var_os("LOOM_SCHEDULE_DIR").map(PathBuf::from))
            .unwrap_or_else(|| PathBuf::from("target/loom"));
        std::fs::create_dir_all(&dir).ok()?;
        let n = FAILURE_SEQ.fetch_add(1, StdOrdering::Relaxed);
        let path = dir.join(format!("loom-failure-{}-{}.txt", std::process::id(), n));
        let body = format!(
            "failure: {}\nschedule: {}\nreplay: LOOM_REPLAY=\"{}\" cargo test ... \n",
            fail.message, fail.schedule, fail.schedule
        );
        std::fs::write(&path, body).ok()?;
        Some(path)
    }
}

/// Depth-first successor: flip the deepest choice that still has an
/// untried alternative; `None` once the space is exhausted.
fn next_prefix(trace: &[crate::rt::Choice]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        if trace[i].picked + 1 < trace[i].options {
            let mut p: Vec<usize> = trace[..i].iter().map(|c| c.picked).collect();
            p.push(trace[i].picked + 1);
            return Some(p);
        }
    }
    None
}

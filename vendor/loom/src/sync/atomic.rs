//! Instrumented atomic types. Outside a model every operation passes
//! straight through to the matching `std::sync::atomic` type; inside a
//! model, operations go through the runtime, which records the full
//! modification order and explores stale-read and interleaving choices.
//!
//! The live `std` atomic always holds the newest store of the model's
//! modification order, so `get_mut`/`into_inner`/`Debug` observe the
//! current value, and invalidating the registration (on `get_mut`)
//! collapses history to "current value, visible to all" — the right
//! semantics for exclusive access.

use std::fmt;

use crate::rt::{self, RegCell};

pub use std::sync::atomic::Ordering;

macro_rules! atomic_int {
    ($name:ident, $std:path, $prim:ty) => {
        pub struct $name {
            inner: $std,
            reg: RegCell,
        }

        impl $name {
            pub const fn new(v: $prim) -> Self {
                $name {
                    inner: <$std>::new(v),
                    reg: RegCell::new(),
                }
            }

            #[inline]
            #[allow(clippy::unnecessary_cast)]
            fn to_bits(v: $prim) -> u64 {
                v as u64
            }

            #[inline]
            #[allow(clippy::unnecessary_cast)]
            fn from_bits(b: u64) -> $prim {
                b as $prim
            }

            fn live_bits(&self) -> u64 {
                Self::to_bits(self.inner.load(Ordering::Relaxed))
            }

            pub fn load(&self, order: Ordering) -> $prim {
                match rt::current() {
                    None => self.inner.load(order),
                    Some((rt, _)) => {
                        Self::from_bits(rt.atomic_load(&self.reg, self.live_bits(), order))
                    }
                }
            }

            pub fn store(&self, val: $prim, order: Ordering) {
                match rt::current() {
                    None => self.inner.store(val, order),
                    Some((rt, _)) => {
                        rt.atomic_store(&self.reg, self.live_bits(), Self::to_bits(val), order);
                        self.inner.store(val, Ordering::Relaxed);
                    }
                }
            }

            fn model_rmw(
                &self,
                rt: &std::sync::Arc<crate::rt::Rt>,
                order: Ordering,
                f: impl FnOnce($prim) -> $prim,
            ) -> $prim {
                let (prev, new) = rt.atomic_rmw(&self.reg, self.live_bits(), order, |b| {
                    Self::to_bits(f(Self::from_bits(b)))
                });
                self.inner.store(Self::from_bits(new), Ordering::Relaxed);
                Self::from_bits(prev)
            }

            pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                match rt::current() {
                    None => self.inner.swap(val, order),
                    Some((rt, _)) => self.model_rmw(&rt, order, |_| val),
                }
            }

            pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                match rt::current() {
                    None => self.inner.fetch_add(val, order),
                    Some((rt, _)) => self.model_rmw(&rt, order, |v| v.wrapping_add(val)),
                }
            }

            pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                match rt::current() {
                    None => self.inner.fetch_sub(val, order),
                    Some((rt, _)) => self.model_rmw(&rt, order, |v| v.wrapping_sub(val)),
                }
            }

            pub fn fetch_and(&self, val: $prim, order: Ordering) -> $prim {
                match rt::current() {
                    None => self.inner.fetch_and(val, order),
                    Some((rt, _)) => self.model_rmw(&rt, order, |v| v & val),
                }
            }

            pub fn fetch_or(&self, val: $prim, order: Ordering) -> $prim {
                match rt::current() {
                    None => self.inner.fetch_or(val, order),
                    Some((rt, _)) => self.model_rmw(&rt, order, |v| v | val),
                }
            }

            pub fn fetch_xor(&self, val: $prim, order: Ordering) -> $prim {
                match rt::current() {
                    None => self.inner.fetch_xor(val, order),
                    Some((rt, _)) => self.model_rmw(&rt, order, |v| v ^ val),
                }
            }

            pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                match rt::current() {
                    None => self.inner.fetch_max(val, order),
                    Some((rt, _)) => self.model_rmw(&rt, order, |v| v.max(val)),
                }
            }

            pub fn fetch_min(&self, val: $prim, order: Ordering) -> $prim {
                match rt::current() {
                    None => self.inner.fetch_min(val, order),
                    Some((rt, _)) => self.model_rmw(&rt, order, |v| v.min(val)),
                }
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match rt::current() {
                    None => self.inner.compare_exchange(current, new, success, failure),
                    Some((rt, _)) => {
                        let r = rt.atomic_cas(
                            &self.reg,
                            self.live_bits(),
                            Self::to_bits(current),
                            Self::to_bits(new),
                            success,
                            failure,
                        );
                        match r {
                            Ok(prev) => {
                                self.inner.store(new, Ordering::Relaxed);
                                Ok(Self::from_bits(prev))
                            }
                            Err(prev) => Err(Self::from_bits(prev)),
                        }
                    }
                }
            }

            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            pub fn get_mut(&mut self) -> &mut $prim {
                self.reg.invalidate();
                self.inner.get_mut()
            }

            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$prim>::default())
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> Self {
                Self::new(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.inner.load(Ordering::Relaxed), f)
            }
        }
    };
}

atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
atomic_int!(AtomicI64, std::sync::atomic::AtomicI64, i64);

/// Instrumented `AtomicBool` (bit-modeled as 0/1).
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
    reg: RegCell,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(v),
            reg: RegCell::new(),
        }
    }

    fn live_bits(&self) -> u64 {
        u64::from(self.inner.load(Ordering::Relaxed))
    }

    pub fn load(&self, order: Ordering) -> bool {
        match rt::current() {
            None => self.inner.load(order),
            Some((rt, _)) => rt.atomic_load(&self.reg, self.live_bits(), order) != 0,
        }
    }

    pub fn store(&self, val: bool, order: Ordering) {
        match rt::current() {
            None => self.inner.store(val, order),
            Some((rt, _)) => {
                rt.atomic_store(&self.reg, self.live_bits(), u64::from(val), order);
                self.inner.store(val, Ordering::Relaxed);
            }
        }
    }

    fn model_rmw(
        &self,
        rt: &std::sync::Arc<crate::rt::Rt>,
        order: Ordering,
        f: impl FnOnce(bool) -> bool,
    ) -> bool {
        let (prev, new) =
            rt.atomic_rmw(&self.reg, self.live_bits(), order, |b| u64::from(f(b != 0)));
        self.inner.store(new != 0, Ordering::Relaxed);
        prev != 0
    }

    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        match rt::current() {
            None => self.inner.swap(val, order),
            Some((rt, _)) => self.model_rmw(&rt, order, |_| val),
        }
    }

    pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
        match rt::current() {
            None => self.inner.fetch_or(val, order),
            Some((rt, _)) => self.model_rmw(&rt, order, |v| v | val),
        }
    }

    pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
        match rt::current() {
            None => self.inner.fetch_and(val, order),
            Some((rt, _)) => self.model_rmw(&rt, order, |v| v & val),
        }
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match rt::current() {
            None => self.inner.compare_exchange(current, new, success, failure),
            Some((rt, _)) => {
                let r = rt.atomic_cas(
                    &self.reg,
                    self.live_bits(),
                    u64::from(current),
                    u64::from(new),
                    success,
                    failure,
                );
                match r {
                    Ok(prev) => {
                        self.inner.store(new, Ordering::Relaxed);
                        Ok(prev != 0)
                    }
                    Err(prev) => Err(prev != 0),
                }
            }
        }
    }

    pub fn get_mut(&mut self) -> &mut bool {
        self.reg.invalidate();
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner.load(Ordering::Relaxed), f)
    }
}

//! Model-aware `std::sync` subset: [`Mutex`], [`Condvar`], and the
//! instrumented atomics in [`atomic`].
//!
//! Both types *contain* their `std` counterpart and delegate to it
//! outside a model. Inside a model the scheduler arbitrates the lock
//! logically (so contention, handoff, and lost-wakeup interleavings
//! are explored) and the inner `std` mutex is taken with `try_lock`,
//! which cannot contend once the logical lock is held. Keeping the real
//! mutex in the loop preserves `std` poisoning semantics exactly: a
//! guard dropped during a panic poisons the inner mutex, and later
//! `lock()` calls surface a real [`PoisonError`].

pub mod atomic;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;
use std::time::Duration;

pub use std::sync::{Arc, LockResult, PoisonError};

use crate::rt::{self, RegCell, Rt};

/// Mutual exclusion, model-scheduled inside `loom::model`.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    reg: RegCell,
}

/// RAII guard for [`Mutex`]; releases the logical and real lock on drop
/// (bookkeeping only — safe during unwinding).
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(std::sync::Arc<Rt>, usize, usize)>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(t),
            reg: RegCell::new(),
        }
    }

    /// Acquire the lock, blocking (in the model: a scheduling point
    /// plus logical contention) until it is free.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(pe) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(pe.into_inner()),
                    model: None,
                })),
            },
            Some((rt, me)) => {
                let m = rt.mutex_lock(&self.reg, me);
                self.guard_after_logical_acquire(rt, m, me)
            }
        }
    }

    /// Build a guard once the logical lock is held: the inner
    /// `try_lock` can only fail with `Poisoned`.
    fn guard_after_logical_acquire(
        &self,
        rt: std::sync::Arc<Rt>,
        m: usize,
        me: usize,
    ) -> LockResult<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                model: Some((rt, m, me)),
            }),
            Err(TryLockError::Poisoned(pe)) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(pe.into_inner()),
                model: Some((rt, m, me)),
            })),
            Err(TryLockError::WouldBlock) => {
                unreachable!("loom: real mutex contended while logical lock held")
            }
        }
    }

    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first (poisoning the mutex if this drop
        // happens during a panic), then the logical one.
        drop(self.inner.take());
        if let Some((rt, m, me)) = self.model.take() {
            rt.mutex_unlock(m, me);
        }
    }
}

/// Condition variable, model-scheduled inside `loom::model`.
pub struct Condvar {
    std: std::sync::Condvar,
    reg: RegCell,
}

/// Result of a timed wait. Mirrors `std::sync::WaitTimeoutResult`
/// (which has no public constructor, hence this local type).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            std: std::sync::Condvar::new(),
            reg: RegCell::new(),
        }
    }

    /// Release the guard's mutex, wait for a notification, reacquire.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            None => {
                let lock = guard.lock;
                let g = guard.inner.take().expect("guard holds the lock");
                drop(guard);
                match self.std.wait(g) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model: None,
                    }),
                    Err(pe) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(pe.into_inner()),
                        model: None,
                    })),
                }
            }
            Some((rt, m, me)) => {
                let lock = guard.lock;
                drop(guard.inner.take());
                drop(guard);
                rt.condvar_wait(&self.reg, m, me);
                let m = rt.mutex_relock(&lock.reg, me);
                lock.guard_after_logical_acquire(rt, m, me)
            }
        }
    }

    /// Timed wait. In a model the timeout is taken to fire immediately
    /// (the mutex is still released and reacquired, so interleavings
    /// with other threads during the wait window are explored), which
    /// is sound for the re-check loops this repo uses timed waits for.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match guard.model.take() {
            None => {
                let lock = guard.lock;
                let g = guard.inner.take().expect("guard holds the lock");
                drop(guard);
                match self.std.wait_timeout(g, dur) {
                    Ok((g, r)) => Ok((
                        MutexGuard {
                            lock,
                            inner: Some(g),
                            model: None,
                        },
                        WaitTimeoutResult {
                            timed_out: r.timed_out(),
                        },
                    )),
                    Err(pe) => {
                        let (g, r) = pe.into_inner();
                        Err(PoisonError::new((
                            MutexGuard {
                                lock,
                                inner: Some(g),
                                model: None,
                            },
                            WaitTimeoutResult {
                                timed_out: r.timed_out(),
                            },
                        )))
                    }
                }
            }
            Some((rt, m, me)) => {
                let lock = guard.lock;
                drop(guard.inner.take());
                drop(guard);
                rt.condvar_wait_timeout(m, me);
                let m = rt.mutex_relock(&lock.reg, me);
                let timed = WaitTimeoutResult { timed_out: true };
                match lock.guard_after_logical_acquire(rt, m, me) {
                    Ok(g) => Ok((g, timed)),
                    Err(pe) => Err(PoisonError::new((pe.into_inner(), timed))),
                }
            }
        }
    }

    pub fn notify_one(&self) {
        match rt::current() {
            None => self.std.notify_one(),
            Some((rt, me)) => rt.condvar_notify(&self.reg, me, false),
        }
    }

    pub fn notify_all(&self) {
        match rt::current() {
            None => self.std.notify_all(),
            Some((rt, me)) => rt.condvar_notify(&self.reg, me, true),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

//! The model-checking runtime: a deterministic scheduler that serializes
//! real OS threads through a single "token" and records every scheduling
//! and value choice it makes, so the driver in [`crate::builder`] can
//! depth-first enumerate all choices (up to a preemption bound) and
//! replay any failing sequence from its schedule string.
//!
//! Execution model
//! ---------------
//! Exactly one model thread runs at a time. Every shared-memory
//! operation (atomic access, lock, notify, spawn, explicit yield) first
//! calls [`Rt::yield_point`], which consults the scheduler: the set of
//! runnable threads forms a *choice point*, one is picked (the recorded
//! trace replays the current prefix, then defaults to "continue the
//! current thread"), and the token is handed over. Blocked threads
//! (lock waiters, condvar waiters, joiners) are not runnable; waking
//! them is the responsibility of the operation that unblocks them. If
//! no thread is runnable and not all are finished, the execution is a
//! deadlock and the run fails.
//!
//! Weak-memory visibility
//! ----------------------
//! Each atomic location keeps its full modification order for the run.
//! Loads may read *stale* values: any store not yet ordered
//! happens-before the loading thread is eligible, which is decided with
//! per-thread vector clocks. Acquire loads of Release stores join
//! clocks (synchronizes-with); RMWs always read the newest store and
//! extend release sequences; `SeqCst` loads additionally may not read
//! anything older than the newest `SeqCst` store. Multiple eligible
//! stores form a *value* choice point explored like a scheduling one.

use std::cell::RefCell;
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Thread id of the thread that called [`crate::model`].
pub(crate) const MAIN: usize = 0;

/// Hard cap on model threads; vector clocks are fixed-size arrays.
pub(crate) const MAX_THREADS: usize = 8;

/// Memory orderings, re-exported from `std` so model code and
/// uninstrumented code can share `use std::sync::atomic::Ordering`.
pub(crate) use std::sync::atomic::Ordering;

fn acquiring(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releasing(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

type VClock = [u64; MAX_THREADS];

fn vc_join(a: &mut VClock, b: &VClock) {
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = (*x).max(*y);
    }
}

/// Did `vc` already observe the event `(writer, writer_clock)`?
fn vc_seen(vc: &VClock, writer: usize, writer_clock: u64) -> bool {
    vc[writer] >= writer_clock
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ChoiceKind {
    /// Which thread runs next.
    Thread,
    /// Which eligible store a load reads.
    Value,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub options: usize,
    pub picked: usize,
    pub kind: ChoiceKind,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Blocked {
    /// Waiting to acquire model mutex `m`.
    Lock(usize),
    /// Waiting on condvar `c`.
    CondWait(usize),
    /// Waiting for thread `t` to finish.
    Join(usize),
    /// The main thread has returned from the model closure and is
    /// waiting for every spawned thread to finish.
    MainExit,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Ready,
    Blocked(Blocked),
    Finished,
}

struct ThreadState {
    state: TState,
    vc: VClock,
}

struct StoreRec {
    val: u64,
    writer: usize,
    /// The writer's own clock component at the time of the store; a
    /// store with clock 0 is the location's initial value, visible to
    /// every thread.
    writer_clock: u64,
    /// Release clock carried by this store (set by Release-or-stronger
    /// stores; inherited and extended by RMWs — release sequences).
    release: Option<VClock>,
}

struct Loc {
    stores: Vec<StoreRec>,
    /// Per-thread coherence floor: index of the oldest store each
    /// thread may still read (monotone under reads-from and HB).
    floor: [usize; MAX_THREADS],
    /// Index of the newest `SeqCst` store.
    last_sc: usize,
}

struct MutexSt {
    owner: Option<usize>,
    /// Release clock of the last unlock; joined on acquire.
    vc: VClock,
}

struct CondSt {
    waiters: Vec<usize>,
}

/// A model failure: what went wrong plus the choice sequence that
/// reaches it.
#[derive(Clone, Debug)]
pub struct Failure {
    pub message: String,
    pub schedule: String,
}

pub(crate) struct ExecState {
    pub(crate) run_id: u64,
    threads: Vec<ThreadState>,
    active: usize,
    prefix: Vec<usize>,
    pub(crate) trace: Vec<Choice>,
    locs: Vec<Loc>,
    mutexes: Vec<MutexSt>,
    condvars: Vec<CondSt>,
    preemptions: usize,
    bound: usize,
    pub(crate) aborting: bool,
    pub(crate) failure: Option<Failure>,
    live_real: Vec<std::thread::JoinHandle<()>>,
}

/// The shared runtime: one per [`crate::builder::Builder`] exploration.
pub(crate) struct Rt {
    st: StdMutex<ExecState>,
    cv: StdCondvar,
}

/// Panic payload used to unwind model threads when a run aborts early
/// (failure found elsewhere, or deadlock). Never treated as a bug.
pub(crate) struct AbortToken;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// The runtime handle of the calling thread, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Rt>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Global run counter so location-registration tags are unique across
/// every model execution in the process.
static RUN_SEQ: StdAtomicU64 = StdAtomicU64::new(1);

/// Per-object registration cell: packs `(run_id << 24) | (slot + 1)` so
/// an atomic/mutex/condvar lazily re-registers itself on its first use
/// in each run.
pub(crate) struct RegCell(StdAtomicU64);

impl RegCell {
    pub(crate) const fn new() -> Self {
        RegCell(StdAtomicU64::new(0))
    }

    /// Invalidate the registration (used by `get_mut`-style exclusive
    /// access: the next shared use re-registers from the live value,
    /// which models the exclusively-written value as visible to all).
    pub(crate) fn invalidate(&mut self) {
        *self.0.get_mut() = 0;
    }

    fn slot(&self, run_id: u64) -> Option<usize> {
        let pack = self.0.load(StdOrdering::Relaxed);
        if pack >> 24 == run_id {
            Some((pack & 0x00ff_ffff) as usize - 1)
        } else {
            None
        }
    }

    fn set_slot(&self, run_id: u64, slot: usize) {
        self.0
            .store((run_id << 24) | (slot as u64 + 1), StdOrdering::Relaxed);
    }
}

fn kind_char(k: ChoiceKind) -> char {
    match k {
        ChoiceKind::Thread => 't',
        ChoiceKind::Value => 'v',
    }
}

/// Render a trace as a replayable schedule string, e.g. `t1.v0.t0`.
pub(crate) fn format_schedule(trace: &[Choice]) -> String {
    let mut out = String::new();
    for (i, c) in trace.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        out.push(kind_char(c.kind));
        out.push_str(&c.picked.to_string());
    }
    out
}

/// Parse a schedule string back into a pick sequence. Kind prefixes are
/// for human readability only; picks alone determine the execution.
pub(crate) fn parse_schedule(s: &str) -> Result<Vec<usize>, String> {
    let mut picks = Vec::new();
    for tok in s.split('.') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        let digits = tok.trim_start_matches(|c: char| c.is_ascii_alphabetic());
        picks.push(
            digits
                .parse::<usize>()
                .map_err(|_| format!("bad schedule token {tok:?}"))?,
        );
    }
    Ok(picks)
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

impl Rt {
    pub(crate) fn new(bound: usize) -> Self {
        Rt {
            st: StdMutex::new(ExecState {
                run_id: 0,
                threads: Vec::new(),
                active: MAIN,
                prefix: Vec::new(),
                trace: Vec::new(),
                locs: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                preemptions: 0,
                bound,
                aborting: false,
                failure: None,
                live_real: Vec::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    pub(crate) fn lock_state(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Reset state for a fresh execution that will replay `prefix`.
    pub(crate) fn begin_run(&self, prefix: Vec<usize>) {
        let mut st = self.lock_state();
        st.run_id = RUN_SEQ.fetch_add(1, StdOrdering::Relaxed);
        st.threads = vec![ThreadState {
            state: TState::Ready,
            vc: [0; MAX_THREADS],
        }];
        st.active = MAIN;
        st.prefix = prefix;
        st.trace.clear();
        st.locs.clear();
        st.mutexes.clear();
        st.condvars.clear();
        st.preemptions = 0;
        st.aborting = false;
        debug_assert!(st.live_real.is_empty());
    }

    /// Join every real OS thread spawned during the run. Must be called
    /// with the state lock released.
    pub(crate) fn end_run(&self) {
        let handles: Vec<_> = self.lock_state().live_real.drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    pub(crate) fn take_failure(&self) -> Option<Failure> {
        self.lock_state().failure.take()
    }

    // --- core scheduling -------------------------------------------------

    fn fail(&self, st: &mut ExecState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(Failure {
                schedule: format_schedule(&st.trace),
                message,
            });
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Record a choice among `options` alternatives. Single-option
    /// choices are not recorded (they never branch), keeping schedule
    /// strings down to genuine decision points.
    fn pick(&self, st: &mut ExecState, options: usize, kind: ChoiceKind) -> usize {
        if options <= 1 {
            return 0;
        }
        let idx = st.trace.len();
        let picked = match st.prefix.get(idx) {
            Some(&p) if p < options => p,
            Some(&p) => {
                self.fail(
                    st,
                    format!("schedule replay diverged: pick {p} of {options} at step {idx}"),
                );
                0
            }
            None => 0,
        };
        st.trace.push(Choice {
            options,
            picked,
            kind,
        });
        picked
    }

    /// Pick the next thread to run. `me` is the thread at the choice
    /// point (it holds the token); it may or may not still be runnable.
    fn reschedule(&self, st: &mut ExecState, me: usize) {
        let mut cands: Vec<usize> = Vec::with_capacity(st.threads.len());
        let me_ready = st.threads[me].state == TState::Ready;
        if me_ready {
            cands.push(me);
        }
        for (i, t) in st.threads.iter().enumerate() {
            if i != me && t.state == TState::Ready {
                cands.push(i);
            }
        }
        if cands.is_empty() {
            let all_done = st.threads.iter().all(|t| t.state == TState::Finished);
            let only_main_exit = st.threads.iter().enumerate().all(|(i, t)| {
                t.state == TState::Finished
                    || (i == MAIN && t.state == TState::Blocked(Blocked::MainExit))
            });
            if !all_done && !only_main_exit {
                let stuck: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !matches!(t.state, TState::Finished))
                    .map(|(i, t)| format!("thread {i} {:?}", t.state))
                    .collect();
                self.fail(
                    st,
                    format!("deadlock: no runnable thread ({})", stuck.join(", ")),
                );
            }
            return;
        }
        // Bounded preemption: once the budget is spent, a runnable
        // current thread is forced to continue (its alternatives are
        // pruned, which is what makes exhaustive search tractable).
        let options = if me_ready && st.preemptions >= st.bound {
            1
        } else {
            cands.len()
        };
        let picked = self.pick(st, options, ChoiceKind::Thread);
        let next = cands[picked];
        if me_ready && next != me {
            st.preemptions += 1;
        }
        st.active = next;
        self.cv.notify_all();
    }

    fn abort_unwind(&self) -> ! {
        panic_any(AbortToken)
    }

    /// Scheduling point: offer the token to any runnable thread, then
    /// wait until it comes back to `me`.
    pub(crate) fn yield_point(self: &Arc<Self>, me: usize) {
        let mut st = self.lock_state();
        if st.aborting {
            drop(st);
            self.abort_unwind();
        }
        self.reschedule(&mut st, me);
        while st.active != me && !st.aborting {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting {
            drop(st);
            self.abort_unwind();
        }
    }

    /// Mark `me` blocked for `why`, hand the token elsewhere, and wait
    /// until some other thread makes `me` ready and schedules it.
    fn block_on(
        self: &Arc<Self>,
        st: &mut Option<std::sync::MutexGuard<'_, ExecState>>,
        me: usize,
        why: Blocked,
    ) {
        let mut g = st.take().expect("state guard");
        g.threads[me].state = TState::Blocked(why);
        self.reschedule(&mut g, me);
        while g.active != me && !g.aborting {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.aborting {
            drop(g);
            self.abort_unwind();
        }
        *st = Some(g);
    }

    fn wake(&self, st: &mut ExecState, pred: impl Fn(usize, Blocked) -> bool) {
        for (i, t) in st.threads.iter_mut().enumerate() {
            if let TState::Blocked(b) = t.state {
                if pred(i, b) {
                    t.state = TState::Ready;
                }
            }
        }
    }

    // --- thread lifecycle ------------------------------------------------

    /// Register a newly spawned model thread; returns its id. The
    /// spawn edge happens-before everything the child does.
    pub(crate) fn register_thread(self: &Arc<Self>, parent: usize) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        assert!(
            tid < MAX_THREADS,
            "loom shim supports at most {MAX_THREADS} model threads"
        );
        st.threads[parent].vc[parent] += 1;
        let vc = st.threads[parent].vc;
        st.threads.push(ThreadState {
            state: TState::Ready,
            vc,
        });
        tid
    }

    pub(crate) fn adopt_real(&self, h: std::thread::JoinHandle<()>) {
        self.lock_state().live_real.push(h);
    }

    /// Park a fresh child until the scheduler first picks it. Returns
    /// `false` if the run aborted before the child ever ran.
    pub(crate) fn wait_first(self: &Arc<Self>, me: usize) -> bool {
        let mut st = self.lock_state();
        while st.active != me && !st.aborting {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        !st.aborting
    }

    /// Child thread finished; `panicked` carries an escaped panic
    /// message (a model failure).
    pub(crate) fn finish_thread(self: &Arc<Self>, me: usize, panicked: Option<String>) {
        let mut st = self.lock_state();
        st.threads[me].state = TState::Finished;
        self.wake(&mut st, |_, b| b == Blocked::Join(me));
        let others_done = st
            .threads
            .iter()
            .enumerate()
            .all(|(i, t)| i == MAIN || t.state == TState::Finished);
        if others_done && st.threads[MAIN].state == TState::Blocked(Blocked::MainExit) {
            st.threads[MAIN].state = TState::Ready;
        }
        if let Some(msg) = panicked {
            self.fail(&mut st, msg);
        } else {
            self.reschedule(&mut st, me);
        }
    }

    /// Child thread exiting because the run aborted under it.
    pub(crate) fn finish_silent(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me].state = TState::Finished;
        self.cv.notify_all();
    }

    /// Record a failure observed on the main thread (escaped panic from
    /// the model closure).
    pub(crate) fn fail_from_main(&self, msg: String) {
        let mut st = self.lock_state();
        st.threads[MAIN].state = TState::Finished;
        self.fail(&mut st, msg);
    }

    pub(crate) fn fail_from_payload(&self, p: &(dyn std::any::Any + Send)) {
        self.fail_from_main(payload_msg(p));
    }

    /// After the model closure returns: keep scheduling until every
    /// spawned thread has finished (or the run aborts).
    pub(crate) fn main_drain(self: &Arc<Self>) {
        loop {
            let st = self.lock_state();
            if st.aborting {
                return;
            }
            let others_done = st
                .threads
                .iter()
                .enumerate()
                .all(|(i, t)| i == MAIN || t.state == TState::Finished);
            if others_done {
                return;
            }
            let mut slot = Some(st);
            // A panic here cannot unwind into user code (main_drain is
            // called by the driver), so catch the abort token locally.
            let me_blocked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.block_on(&mut slot, MAIN, Blocked::MainExit);
            }));
            drop(slot);
            if me_blocked.is_err() {
                // Aborted while parked; payload is an AbortToken.
                return;
            }
        }
    }

    /// Block until thread `tid` finishes, then join its clock
    /// (join happens-after everything the child did).
    pub(crate) fn join_thread(self: &Arc<Self>, me: usize, tid: usize) {
        self.yield_point(me);
        loop {
            let st = self.lock_state();
            if st.aborting {
                drop(st);
                self.abort_unwind();
            }
            if st.threads[tid].state == TState::Finished {
                let mut st = st;
                let cvc = st.threads[tid].vc;
                vc_join(&mut st.threads[me].vc, &cvc);
                return;
            }
            let mut slot = Some(st);
            self.block_on(&mut slot, me, Blocked::Join(tid));
        }
    }

    // --- atomics ---------------------------------------------------------

    fn loc_slot(&self, st: &mut ExecState, cell: &RegCell, init: u64) -> usize {
        if let Some(s) = cell.slot(st.run_id) {
            return s;
        }
        let slot = st.locs.len();
        st.locs.push(Loc {
            stores: vec![StoreRec {
                val: init,
                writer: MAIN,
                writer_clock: 0,
                release: None,
            }],
            floor: [0; MAX_THREADS],
            last_sc: 0,
        });
        cell.set_slot(st.run_id, slot);
        slot
    }

    /// Atomic load. `init` is the location's live value, used only if
    /// this is the location's first use in the run.
    pub(crate) fn atomic_load(self: &Arc<Self>, cell: &RegCell, init: u64, order: Ordering) -> u64 {
        let me = current().expect("model thread").1;
        self.yield_point(me);
        let mut st = self.lock_state();
        let slot = self.loc_slot(&mut st, cell, init);
        let me_vc = st.threads[me].vc;
        let loc = &st.locs[slot];
        let newest = loc.stores.len() - 1;
        let mut floor = loc.floor[me];
        if order == Ordering::SeqCst {
            floor = floor.max(loc.last_sc);
        }
        // Coherence: cannot read older than the newest store already
        // observed (happens-before) by this thread.
        for j in (floor..=newest).rev() {
            let s = &loc.stores[j];
            if vc_seen(&me_vc, s.writer, s.writer_clock) {
                floor = floor.max(j);
                break;
            }
        }
        let options = newest - floor + 1;
        let picked = self.pick(&mut st, options, ChoiceKind::Value);
        let idx = newest - picked;
        let s = &st.locs[slot].stores[idx];
        let val = s.val;
        let rel = s.release;
        st.locs[slot].floor[me] = st.locs[slot].floor[me].max(idx);
        if acquiring(order) {
            if let Some(rvc) = rel {
                vc_join(&mut st.threads[me].vc, &rvc);
            }
        }
        val
    }

    /// Atomic store: appends to the modification order; the caller
    /// writes the same value to the live cell after this returns.
    pub(crate) fn atomic_store(
        self: &Arc<Self>,
        cell: &RegCell,
        init: u64,
        val: u64,
        order: Ordering,
    ) {
        let me = current().expect("model thread").1;
        self.yield_point(me);
        let mut st = self.lock_state();
        let slot = self.loc_slot(&mut st, cell, init);
        st.threads[me].vc[me] += 1;
        let clock = st.threads[me].vc[me];
        let release = releasing(order).then(|| st.threads[me].vc);
        let seqcst = order == Ordering::SeqCst;
        let loc = &mut st.locs[slot];
        loc.stores.push(StoreRec {
            val,
            writer: me,
            writer_clock: clock,
            release,
        });
        let idx = loc.stores.len() - 1;
        loc.floor[me] = idx;
        if seqcst {
            loc.last_sc = idx;
        }
    }

    /// Atomic read-modify-write: always reads the newest store (RMW
    /// atomicity), extends its release sequence, appends the result.
    /// Returns `(previous, new)`.
    pub(crate) fn atomic_rmw(
        self: &Arc<Self>,
        cell: &RegCell,
        init: u64,
        order: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> (u64, u64) {
        let me = current().expect("model thread").1;
        self.yield_point(me);
        let mut st = self.lock_state();
        let slot = self.loc_slot(&mut st, cell, init);
        let newest = st.locs[slot].stores.len() - 1;
        let prev = st.locs[slot].stores[newest].val;
        let prev_rel = st.locs[slot].stores[newest].release;
        if acquiring(order) {
            if let Some(rvc) = prev_rel {
                vc_join(&mut st.threads[me].vc, &rvc);
            }
        }
        st.threads[me].vc[me] += 1;
        let clock = st.threads[me].vc[me];
        // Release sequence: an RMW inherits the release clock of the
        // store it replaces, so acquire loads of the RMW's result still
        // synchronize with the original release store.
        let mut release = prev_rel;
        if releasing(order) {
            let own = st.threads[me].vc;
            release = Some(match release {
                Some(mut r) => {
                    vc_join(&mut r, &own);
                    r
                }
                None => own,
            });
        }
        let new = f(prev);
        let seqcst = order == Ordering::SeqCst;
        let loc = &mut st.locs[slot];
        loc.stores.push(StoreRec {
            val: new,
            writer: me,
            writer_clock: clock,
            release,
        });
        let idx = loc.stores.len() - 1;
        loc.floor[me] = idx;
        if seqcst {
            loc.last_sc = idx;
        }
        (prev, new)
    }

    /// Atomic compare-exchange over the newest store.
    pub(crate) fn atomic_cas(
        self: &Arc<Self>,
        cell: &RegCell,
        init: u64,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let me = current().expect("model thread").1;
        self.yield_point(me);
        let mut st = self.lock_state();
        let slot = self.loc_slot(&mut st, cell, init);
        let newest = st.locs[slot].stores.len() - 1;
        let prev = st.locs[slot].stores[newest].val;
        let prev_rel = st.locs[slot].stores[newest].release;
        if prev != expected {
            st.locs[slot].floor[me] = newest;
            if acquiring(failure) {
                if let Some(rvc) = prev_rel {
                    vc_join(&mut st.threads[me].vc, &rvc);
                }
            }
            return Err(prev);
        }
        if acquiring(success) {
            if let Some(rvc) = prev_rel {
                vc_join(&mut st.threads[me].vc, &rvc);
            }
        }
        st.threads[me].vc[me] += 1;
        let clock = st.threads[me].vc[me];
        let mut release = prev_rel;
        if releasing(success) {
            let own = st.threads[me].vc;
            release = Some(match release {
                Some(mut r) => {
                    vc_join(&mut r, &own);
                    r
                }
                None => own,
            });
        }
        let seqcst = success == Ordering::SeqCst;
        let loc = &mut st.locs[slot];
        loc.stores.push(StoreRec {
            val: new,
            writer: me,
            writer_clock: clock,
            release,
        });
        let idx = loc.stores.len() - 1;
        loc.floor[me] = idx;
        if seqcst {
            loc.last_sc = idx;
        }
        Ok(prev)
    }

    // --- mutexes & condvars ----------------------------------------------

    fn mutex_slot(&self, st: &mut ExecState, cell: &RegCell) -> usize {
        if let Some(s) = cell.slot(st.run_id) {
            return s;
        }
        let slot = st.mutexes.len();
        st.mutexes.push(MutexSt {
            owner: None,
            vc: [0; MAX_THREADS],
        });
        cell.set_slot(st.run_id, slot);
        slot
    }

    fn cond_slot(&self, st: &mut ExecState, cell: &RegCell) -> usize {
        if let Some(s) = cell.slot(st.run_id) {
            return s;
        }
        let slot = st.condvars.len();
        st.condvars.push(CondSt {
            waiters: Vec::new(),
        });
        cell.set_slot(st.run_id, slot);
        slot
    }

    /// Blocking logical lock acquisition (with the initial scheduling
    /// point). Returns the mutex slot.
    pub(crate) fn mutex_lock(self: &Arc<Self>, cell: &RegCell, me: usize) -> usize {
        self.yield_point(me);
        self.mutex_relock(cell, me)
    }

    /// Lock acquisition retry loop without a leading yield (used after
    /// a condvar wait, where the wakeup already was a schedule point).
    pub(crate) fn mutex_relock(self: &Arc<Self>, cell: &RegCell, me: usize) -> usize {
        loop {
            let mut st = self.lock_state();
            if st.aborting {
                drop(st);
                self.abort_unwind();
            }
            let m = self.mutex_slot(&mut st, cell);
            if st.mutexes[m].owner.is_none() {
                st.mutexes[m].owner = Some(me);
                let mvc = st.mutexes[m].vc;
                vc_join(&mut st.threads[me].vc, &mvc);
                return m;
            }
            let mut slot = Some(st);
            self.block_on(&mut slot, me, Blocked::Lock(m));
        }
    }

    /// Logical unlock: release-publish this thread's clock and wake
    /// lock waiters. Pure bookkeeping — never blocks, never panics — so
    /// it is safe from guard `Drop` even during unwinding.
    pub(crate) fn mutex_unlock(&self, m: usize, me: usize) {
        let mut st = self.lock_state();
        st.threads[me].vc[me] += 1;
        let tvc = st.threads[me].vc;
        vc_join(&mut st.mutexes[m].vc, &tvc);
        st.mutexes[m].owner = None;
        self.wake(&mut st, |_, b| b == Blocked::Lock(m));
        self.cv.notify_all();
    }

    /// Condvar wait: atomically (in the model) release the mutex,
    /// register as a waiter, and block until notified. The caller then
    /// reacquires via [`Rt::mutex_relock`].
    pub(crate) fn condvar_wait(self: &Arc<Self>, cell: &RegCell, m: usize, me: usize) {
        let mut st = self.lock_state();
        if st.aborting {
            drop(st);
            self.abort_unwind();
        }
        let c = self.cond_slot(&mut st, cell);
        // Release the mutex exactly like mutex_unlock.
        st.threads[me].vc[me] += 1;
        let tvc = st.threads[me].vc;
        vc_join(&mut st.mutexes[m].vc, &tvc);
        st.mutexes[m].owner = None;
        self.wake(&mut st, |_, b| b == Blocked::Lock(m));
        st.condvars[c].waiters.push(me);
        let mut slot = Some(st);
        self.block_on(&mut slot, me, Blocked::CondWait(c));
    }

    /// Timed condvar wait is modeled as the timeout firing immediately:
    /// release the mutex, yield, report `timed_out`. Sound for code
    /// that treats timeouts as spurious wakeups (re-check loops).
    pub(crate) fn condvar_wait_timeout(self: &Arc<Self>, m: usize, me: usize) {
        {
            let mut st = self.lock_state();
            if st.aborting {
                drop(st);
                self.abort_unwind();
            }
            st.threads[me].vc[me] += 1;
            let tvc = st.threads[me].vc;
            vc_join(&mut st.mutexes[m].vc, &tvc);
            st.mutexes[m].owner = None;
            self.wake(&mut st, |_, b| b == Blocked::Lock(m));
        }
        self.yield_point(me);
    }

    /// Notify: wake one/all waiters (they then contend for the mutex).
    /// A notification with no waiters is lost, as with real condvars.
    pub(crate) fn condvar_notify(self: &Arc<Self>, cell: &RegCell, me: usize, all: bool) {
        self.yield_point(me);
        let mut st = self.lock_state();
        let c = self.cond_slot(&mut st, cell);
        let woken: Vec<usize> = if all {
            std::mem::take(&mut st.condvars[c].waiters)
        } else if st.condvars[c].waiters.is_empty() {
            Vec::new()
        } else {
            vec![st.condvars[c].waiters.remove(0)]
        };
        for w in woken {
            st.threads[w].state = TState::Ready;
        }
    }
}

//! Vendored minimal stand-in for the `rand` 0.8 trait surface.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides exactly the subset of `rand` 0.8 the workspace uses: the
//! [`RngCore`] and [`SeedableRng`] traits (implemented by the generators in
//! `peel-graph`), the [`Rng`] extension trait with `gen_range`, and the
//! opaque [`Error`] type referenced by `try_fill_bytes`. Swapping this for
//! the real crates.io `rand` is a one-line change in the workspace manifest.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Opaque error type for fallible RNG operations (mirrors `rand::Error`).
///
/// The deterministic generators in this workspace never fail, so this type
/// is never constructed; it exists so `try_fill_bytes` signatures match the
/// real `rand` 0.8 API.
pub struct Error {
    _private: (),
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RNG error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fill `dest` with random bytes, reporting failure (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A random number generator seedable from fixed entropy
/// (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a generator from a `u64` (expanded via SplitMix64, as the real
    /// `rand` does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step, the same expansion rand 0.8 uses.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A range that can be sampled uniformly (subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Sample a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `0..n` (Lemire multiply-shift with rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a uniform value from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a mixer: good enough to exercise ranges.
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(10..=12);
            assert!((10..=12).contains(&y));
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn seed_from_u64_fills_seed() {
        struct S([u8; 32]);
        impl SeedableRng for S {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                S(seed)
            }
        }
        let s = S::seed_from_u64(7);
        assert!(s.0.iter().any(|&b| b != 0));
    }
}

//! Vendored minimal stand-in for `mio`, backed by raw `epoll(7)` on Linux
//! and portable `poll(2)` elsewhere.
//!
//! The build environment has no network access to crates.io. This crate
//! reproduces the `mio` 0.8 API subset the workspace uses — [`Poll`],
//! [`Registry`], [`Events`], [`Token`], [`Interest`], [`Waker`], and
//! [`unix::SourceFd`] — so that swapping to the real crate is a one-line
//! change in the workspace manifest, the same discipline as the vendored
//! `rayon`/`parking_lot` shims. Server code registers raw fds through
//! `SourceFd`, which is exactly the pattern real mio supports for std
//! sockets, so no call sites change on swap.
//!
//! Semantics notes (documented divergences from real mio, none observable
//! to a correctly written level- or edge-agnostic event loop):
//!
//! - Readiness is **level-triggered** (real mio is edge-triggered). The
//!   service's event loop is written edge-safe — it drains reads and
//!   writes to `WouldBlock` — so both disciplines work.
//! - The [`Waker`] uses `eventfd(2)` registered edge-triggered on Linux
//!   (same as real mio) and a non-blocking self-pipe on the portable
//!   backend; wake-ups coalesce but are never lost.
//! - Registrations made from another thread while `poll` is blocked take
//!   effect on the next poll cycle on the portable backend ([`Waker`] is
//!   the only cross-thread interruption primitive, as in real mio usage).
//!
//! No `libc` crate is available; the handful of syscalls used here are
//! declared as local `extern "C"` bindings (the C library is already
//! linked into every Rust binary on the supported targets).

use std::io;
use std::os::fd::RawFd;
use std::sync::{Arc, Weak};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Public surface: Token / Interest / Event / Events
// ---------------------------------------------------------------------------

/// Associates readiness events with the registration they belong to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Interest in readable and/or writable readiness (API subset of
/// `mio::Interest`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in readable readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in writable readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combine two interests.
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include readable readiness?
    pub const fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Does this interest include writable readiness?
    pub const fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// Readiness event types.
pub mod event {
    use super::{Interest, Registry, Token};
    use std::io;

    /// A single readiness event delivered by [`super::Poll::poll`].
    #[derive(Copy, Clone, Debug)]
    pub struct Event {
        pub(crate) token: Token,
        pub(crate) readable: bool,
        pub(crate) writable: bool,
        pub(crate) read_closed: bool,
        pub(crate) write_closed: bool,
        pub(crate) error: bool,
    }

    impl Event {
        /// Token supplied at registration time.
        pub fn token(&self) -> Token {
            self.token
        }
        /// Readable readiness (includes hang-up/error so reads observe EOF).
        pub fn is_readable(&self) -> bool {
            self.readable
        }
        /// Writable readiness.
        pub fn is_writable(&self) -> bool {
            self.writable
        }
        /// Peer shut down the read half (RDHUP/HUP).
        pub fn is_read_closed(&self) -> bool {
            self.read_closed
        }
        /// Write half closed (HUP).
        pub fn is_write_closed(&self) -> bool {
            self.write_closed
        }
        /// Error condition on the fd.
        pub fn is_error(&self) -> bool {
            self.error
        }
    }

    /// A type that can be registered with a [`Registry`].
    pub trait Source {
        /// Register with the poller.
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;
        /// Change token/interest of an existing registration.
        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()>;
        /// Remove the registration.
        fn deregister(&mut self, registry: &Registry) -> io::Result<()>;
    }
}

/// Unix-only helpers.
pub mod unix {
    use super::event::Source;
    use super::{Interest, Registry, Token};
    use std::io;
    use std::os::fd::RawFd;

    /// Adapter registering an arbitrary raw fd — the same escape hatch real
    /// mio provides for std sockets.
    #[derive(Debug)]
    pub struct SourceFd<'a>(pub &'a RawFd);

    impl Source for SourceFd<'_> {
        fn register(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.register_fd(*self.0, token, interests, false)
        }
        fn reregister(
            &mut self,
            registry: &Registry,
            token: Token,
            interests: Interest,
        ) -> io::Result<()> {
            registry.reregister_fd(*self.0, token, interests)
        }
        fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
            registry.deregister_fd(*self.0)
        }
    }
}

use event::Event;

/// A buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// Create a buffer able to hold up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        let capacity = capacity.max(1);
        Events {
            inner: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Iterate over the events from the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// True when the last poll produced no events (timeout or spurious wake).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop all buffered events.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events")
            .field("len", &self.inner.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// FFI: the few syscalls we need, declared locally (no libc crate offline).
// ---------------------------------------------------------------------------

mod ffi {
    #![allow(non_camel_case_types)]

    pub type c_int = i32;

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use super::c_int;

        // epoll_event carries a 32-bit mask plus 64-bit user data; the
        // kernel ABI packs it on x86-64 only.
        #[cfg(target_arch = "x86_64")]
        #[repr(C, packed)]
        #[derive(Copy, Clone)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }
        #[cfg(not(target_arch = "x86_64"))]
        #[repr(C)]
        #[derive(Copy, Clone)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLPRI: u32 = 0x002;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EPOLLET: u32 = 1 << 31;

        pub const EFD_CLOEXEC: c_int = 0o2000000;
        pub const EFD_NONBLOCK: c_int = 0o4000;

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut epoll_event,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        }
    }

    pub mod portable {
        use super::c_int;

        #[repr(C)]
        #[derive(Copy, Clone)]
        pub struct pollfd {
            pub fd: c_int,
            pub events: i16,
            pub revents: i16,
        }

        #[cfg(target_os = "linux")]
        pub type nfds_t = u64;
        #[cfg(not(target_os = "linux"))]
        pub type nfds_t = u32;

        pub const POLLIN: i16 = 0x001;
        pub const POLLPRI: i16 = 0x002;
        pub const POLLOUT: i16 = 0x004;
        pub const POLLERR: i16 = 0x008;
        pub const POLLHUP: i16 = 0x010;
        pub const POLLNVAL: i16 = 0x020;

        pub const F_GETFL: c_int = 3;
        pub const F_SETFL: c_int = 4;
        pub const F_SETFD: c_int = 2;
        pub const FD_CLOEXEC: c_int = 1;
        #[cfg(target_os = "linux")]
        pub const O_NONBLOCK: c_int = 0o4000;
        #[cfg(not(target_os = "linux"))]
        pub const O_NONBLOCK: c_int = 0x0004;

        extern "C" {
            pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
            pub fn pipe(fds: *mut c_int) -> c_int;
            pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        }
    }

    extern "C" {
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }
}

fn cvt(ret: ffi::c_int) -> io::Result<ffi::c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Milliseconds for the kernel timeout argument: `None` blocks forever,
/// sub-millisecond non-zero durations round up so callers never busy-spin.
fn timeout_ms(timeout: Option<Duration>) -> ffi::c_int {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => {
            // as_millis truncates; round up so a positive wait never spins.
            let mut ms = d.as_millis();
            if d.as_nanos() % 1_000_000 != 0 {
                ms = ms.saturating_add(1);
            }
            ms.clamp(1, i32::MAX as u128) as ffi::c_int
        }
    }
}

// ---------------------------------------------------------------------------
// Backend: epoll (Linux)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys_epoll {
    use super::ffi::epoll::*;
    use super::{cvt, event::Event, timeout_ms, Events, Interest, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    #[derive(Debug)]
    pub struct Selector {
        epfd: RawFd,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            // Safety: epoll_create1 has no memory arguments.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
            let mut ev = epoll_event {
                events,
                data: token.0 as u64,
            };
            // Safety: ev is a valid epoll_event for the duration of the call.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        fn bits(interests: Interest, edge: bool) -> u32 {
            let mut events = 0;
            if interests.is_readable() {
                events |= EPOLLIN | EPOLLRDHUP;
            }
            if interests.is_writable() {
                events |= EPOLLOUT;
            }
            if edge {
                events |= EPOLLET;
            }
            events
        }

        pub fn register(
            &self,
            fd: RawFd,
            token: Token,
            interests: Interest,
            edge: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Self::bits(interests, edge), token)
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Self::bits(interests, false), token)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Token(0))
        }

        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.inner.clear();
            let cap = events.capacity as i32;
            let mut buf = vec![epoll_event { events: 0, data: 0 }; events.capacity];
            // Safety: buf holds `cap` epoll_event slots valid for the call.
            let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), cap, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for raw in buf.iter().take(n as usize) {
                let bits = raw.events;
                let data = raw.data;
                events.inner.push(Event {
                    token: Token(data as usize),
                    readable: bits & (EPOLLIN | EPOLLPRI | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    read_closed: bits & (EPOLLRDHUP | EPOLLHUP) != 0,
                    write_closed: bits & EPOLLHUP != 0,
                    error: bits & EPOLLERR != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            // Safety: epfd is owned by this selector and closed exactly once.
            unsafe { super::ffi::close(self.epfd) };
        }
    }

    /// An eventfd-based waker, registered edge-triggered exactly like real
    /// mio: each write re-arms the event, so wake-ups coalesce without a
    /// drain in the poll loop.
    #[derive(Debug)]
    pub struct WakerFd {
        fd: RawFd,
    }

    impl WakerFd {
        pub fn new() -> io::Result<WakerFd> {
            // Safety: eventfd has no memory arguments.
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(WakerFd { fd })
        }

        pub fn fd(&self) -> RawFd {
            self.fd
        }

        pub fn wake(&self) -> io::Result<()> {
            let one: u64 = 1;
            // Safety: writes 8 bytes from a live stack value.
            let n = unsafe { super::ffi::write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::WouldBlock {
                    // Counter saturated: drain and re-fire.
                    let mut buf = [0u8; 8];
                    // Safety: reads at most 8 bytes into a live buffer.
                    unsafe { super::ffi::read(self.fd, buf.as_mut_ptr(), 8) };
                    // Safety: as above.
                    unsafe { super::ffi::write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
                    return Ok(());
                }
                return Err(err);
            }
            Ok(())
        }
    }

    impl Drop for WakerFd {
        fn drop(&mut self) {
            // Safety: fd is owned by this waker and closed exactly once.
            unsafe { super::ffi::close(self.fd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Backend: portable poll(2) — default off-Linux, always compiled so it
// cannot rot; exercised by this crate's self-tests on every platform.
// ---------------------------------------------------------------------------

mod sys_poll {
    use super::ffi::portable::*;
    use super::{cvt, event::Event, timeout_ms, Events, Interest, Token};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[derive(Copy, Clone, Debug)]
    struct Entry {
        token: Token,
        interests: Interest,
        waker: bool,
    }

    #[derive(Debug, Default)]
    pub struct Selector {
        entries: Mutex<HashMap<RawFd, Entry>>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Ok(Selector::default())
        }

        pub fn register(
            &self,
            fd: RawFd,
            token: Token,
            interests: Interest,
            waker: bool,
        ) -> io::Result<()> {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            if entries.contains_key(&fd) {
                return Err(io::Error::from_raw_os_error(17 /* EEXIST */));
            }
            entries.insert(
                fd,
                Entry {
                    token,
                    interests,
                    waker,
                },
            );
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            match entries.get_mut(&fd) {
                Some(entry) => {
                    entry.token = token;
                    entry.interests = interests;
                    Ok(())
                }
                None => Err(io::Error::from_raw_os_error(2 /* ENOENT */)),
            }
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            match entries.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::from_raw_os_error(2 /* ENOENT */)),
            }
        }

        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.inner.clear();
            let snapshot: Vec<(RawFd, Entry)> = {
                let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
                entries.iter().map(|(fd, e)| (*fd, *e)).collect()
            };
            let mut fds: Vec<pollfd> = snapshot
                .iter()
                .map(|(fd, e)| {
                    let mut ev = 0i16;
                    if e.interests.is_readable() {
                        ev |= POLLIN;
                    }
                    if e.interests.is_writable() {
                        ev |= POLLOUT;
                    }
                    pollfd {
                        fd: *fd,
                        events: ev,
                        revents: 0,
                    }
                })
                .collect();
            // Safety: fds points at `len` pollfd slots valid for the call.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as nfds_t, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (slot, (fd, entry)) in fds.iter().zip(snapshot.iter()) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                if entry.waker && bits & (POLLIN | POLLHUP | POLLERR) != 0 {
                    // Self-pipe waker: drain before delivering so the event
                    // coalesces; a write racing the drain re-fires next poll.
                    let mut buf = [0u8; 64];
                    // Safety: reads into a live 64-byte buffer.
                    while unsafe { super::ffi::read(*fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
                }
                if events.inner.len() >= events.capacity {
                    break;
                }
                events.inner.push(Event {
                    token: entry.token,
                    readable: bits & (POLLIN | POLLPRI | POLLHUP | POLLERR) != 0,
                    writable: bits & (POLLOUT | POLLERR) != 0,
                    read_closed: bits & POLLHUP != 0,
                    write_closed: bits & POLLHUP != 0,
                    error: bits & (POLLERR | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }

    fn set_nonblocking_cloexec(fd: RawFd) -> io::Result<()> {
        // Safety: fcntl on an owned fd with integer arguments only.
        unsafe {
            let flags = cvt(fcntl(fd, F_GETFL, 0))?;
            cvt(fcntl(fd, F_SETFL, flags | O_NONBLOCK))?;
            cvt(fcntl(fd, F_SETFD, FD_CLOEXEC))?;
        }
        Ok(())
    }

    /// Self-pipe waker for the portable backend.
    #[derive(Debug)]
    pub struct WakerFd {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    impl WakerFd {
        pub fn new() -> io::Result<WakerFd> {
            let mut fds = [0i32; 2];
            // Safety: pipe writes two fds into a live 2-slot array.
            cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
            let (read_fd, write_fd) = (fds[0], fds[1]);
            for fd in [read_fd, write_fd] {
                if let Err(err) = set_nonblocking_cloexec(fd) {
                    // Safety: both fds are owned here and not yet published.
                    unsafe {
                        super::ffi::close(read_fd);
                        super::ffi::close(write_fd);
                    }
                    return Err(err);
                }
            }
            Ok(WakerFd { read_fd, write_fd })
        }

        pub fn fd(&self) -> RawFd {
            self.read_fd
        }

        pub fn wake(&self) -> io::Result<()> {
            let buf = [1u8];
            // Safety: writes one byte from a live buffer.
            let n = unsafe { super::ffi::write(self.write_fd, buf.as_ptr(), 1) };
            if n < 0 {
                let err = io::Error::last_os_error();
                // A full pipe is still readable: the wake is already pending.
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }
    }

    impl Drop for WakerFd {
        fn drop(&mut self) {
            // Safety: both fds are owned by this waker, closed exactly once.
            unsafe {
                super::ffi::close(self.read_fd);
                super::ffi::close(self.write_fd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Poll / Registry / Waker
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(sys_epoll::Selector),
    Pollfd(sys_poll::Selector),
}

#[derive(Debug)]
struct Inner {
    backend: Backend,
}

impl Inner {
    fn register_fd(
        &self,
        fd: RawFd,
        token: Token,
        interests: Interest,
        waker: bool,
    ) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(s) => s.register(fd, token, interests, waker),
            Backend::Pollfd(s) => s.register(fd, token, interests, waker),
        }
    }

    fn reregister_fd(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(s) => s.reregister(fd, token, interests),
            Backend::Pollfd(s) => s.reregister(fd, token, interests),
        }
    }

    fn deregister_fd(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(s) => s.deregister(fd),
            Backend::Pollfd(s) => s.deregister(fd),
        }
    }

    fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(s) => s.poll(events, timeout),
            Backend::Pollfd(s) => s.poll(events, timeout),
        }
    }
}

/// Handle through which sources are (de)registered; clone of the one owned
/// by [`Poll`] (API subset of `mio::Registry`).
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Register an event source.
    pub fn register<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.register(self, token, interests)
    }

    /// Change an existing registration's token/interest.
    pub fn reregister<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.reregister(self, token, interests)
    }

    /// Remove a registration.
    pub fn deregister<S: event::Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        source.deregister(self)
    }

    /// Clone the registry handle (always succeeds in this shim).
    pub fn try_clone(&self) -> io::Result<Registry> {
        Ok(self.clone())
    }

    fn register_fd(
        &self,
        fd: RawFd,
        token: Token,
        interests: Interest,
        waker: bool,
    ) -> io::Result<()> {
        self.inner.register_fd(fd, token, interests, waker)
    }

    fn reregister_fd(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        self.inner.reregister_fd(fd, token, interests)
    }

    fn deregister_fd(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister_fd(fd)
    }
}

/// The poller: wraps epoll on Linux, poll(2) elsewhere (API subset of
/// `mio::Poll`).
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Create a poller using the platform's default backend.
    pub fn new() -> io::Result<Poll> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poll {
                registry: Registry {
                    inner: Arc::new(Inner {
                        backend: Backend::Epoll(sys_epoll::Selector::new()?),
                    }),
                },
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poll::new_portable()
        }
    }

    /// Create a poller on the portable poll(2) backend regardless of
    /// platform. Not part of the real mio API — exists so the fallback is
    /// testable on Linux; production code must use [`Poll::new`].
    #[doc(hidden)]
    pub fn new_portable() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                inner: Arc::new(Inner {
                    backend: Backend::Pollfd(sys_poll::Selector::new()?),
                }),
            },
        })
    }

    /// The registry handle for this poller.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Block until readiness events arrive, the timeout expires, or a
    /// [`Waker`] fires. `EINTR` returns `Ok` with an empty event set.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.registry.inner.poll(events, timeout)
    }
}

enum WakerImpl {
    #[cfg(target_os = "linux")]
    Eventfd(sys_epoll::WakerFd),
    Pipe(sys_poll::WakerFd),
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from any thread (API subset of
/// `mio::Waker`).
pub struct Waker {
    imp: WakerImpl,
    registry: Weak<Inner>,
}

impl Waker {
    /// Create a waker delivering events on `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let imp = match &registry.inner.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => WakerImpl::Eventfd(sys_epoll::WakerFd::new()?),
            Backend::Pollfd(_) => WakerImpl::Pipe(sys_poll::WakerFd::new()?),
        };
        let fd = match &imp {
            #[cfg(target_os = "linux")]
            WakerImpl::Eventfd(w) => w.fd(),
            WakerImpl::Pipe(w) => w.fd(),
        };
        registry.register_fd(fd, token, Interest::READABLE, true)?;
        Ok(Waker {
            imp,
            registry: Arc::downgrade(&registry.inner),
        })
    }

    /// Wake the poller. Wake-ups coalesce; never blocks.
    pub fn wake(&self) -> io::Result<()> {
        match &self.imp {
            #[cfg(target_os = "linux")]
            WakerImpl::Eventfd(w) => w.wake(),
            WakerImpl::Pipe(w) => w.wake(),
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        if let Some(inner) = self.registry.upgrade() {
            let fd = match &self.imp {
                #[cfg(target_os = "linux")]
                WakerImpl::Eventfd(w) => w.fd(),
                WakerImpl::Pipe(w) => w.fd(),
            };
            let _ = inner.deregister_fd(fd);
        }
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Waker")
    }
}

// ---------------------------------------------------------------------------
// Self-tests: run against every backend compiled on this platform.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::unix::SourceFd;
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);
    const WAKER: Token = Token(2);

    fn backends() -> Vec<(&'static str, Poll)> {
        vec![
            ("default", Poll::new().unwrap()),
            ("portable", Poll::new_portable().unwrap()),
        ]
    }

    fn wait_for(
        poll: &mut Poll,
        events: &mut Events,
        token: Token,
        what: impl Fn(&event::Event) -> bool,
    ) -> event::Event {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            assert!(Instant::now() < deadline, "timed out waiting for {token:?}");
            poll.poll(events, Some(Duration::from_millis(100))).unwrap();
            if let Some(ev) = events.iter().find(|e| e.token() == token && what(e)) {
                return *ev;
            }
        }
    }

    #[test]
    fn accept_and_read_readiness() {
        for (name, mut poll) in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            let addr = listener.local_addr().unwrap();
            poll.registry()
                .register(
                    &mut SourceFd(&listener.as_raw_fd()),
                    LISTENER,
                    Interest::READABLE,
                )
                .unwrap();

            let mut client = TcpStream::connect(addr).unwrap();
            let mut events = Events::with_capacity(16);
            wait_for(&mut poll, &mut events, LISTENER, |e| e.is_readable());
            let (mut server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();
            poll.registry()
                .register(
                    &mut SourceFd(&server_side.as_raw_fd()),
                    CLIENT,
                    Interest::READABLE | Interest::WRITABLE,
                )
                .unwrap();

            // Fresh socket: writable.
            wait_for(&mut poll, &mut events, CLIENT, |e| e.is_writable());

            client.write_all(b"ping").unwrap();
            wait_for(&mut poll, &mut events, CLIENT, |e| e.is_readable());
            let mut buf = [0u8; 8];
            let n = server_side.read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ping", "backend {name}");

            // Peer close surfaces as readable (EOF) on the next poll.
            drop(client);
            let ev = wait_for(&mut poll, &mut events, CLIENT, |e| e.is_readable());
            assert!(ev.is_readable());
            poll.registry()
                .deregister(&mut SourceFd(&server_side.as_raw_fd()))
                .unwrap();
        }
    }

    #[test]
    fn deregister_silences_events() {
        for (name, mut poll) in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            let addr = listener.local_addr().unwrap();
            poll.registry()
                .register(
                    &mut SourceFd(&listener.as_raw_fd()),
                    LISTENER,
                    Interest::READABLE,
                )
                .unwrap();
            let _client = TcpStream::connect(addr).unwrap();
            let mut events = Events::with_capacity(16);
            wait_for(&mut poll, &mut events, LISTENER, |e| e.is_readable());
            poll.registry()
                .deregister(&mut SourceFd(&listener.as_raw_fd()))
                .unwrap();
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.token() != LISTENER),
                "backend {name}: deregistered fd still reported"
            );
        }
    }

    #[test]
    fn reregister_changes_interest() {
        for (name, mut poll) in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = TcpStream::connect(addr).unwrap();
            client.set_nonblocking(true).unwrap();
            let fd = client.as_raw_fd();
            poll.registry()
                .register(&mut SourceFd(&fd), CLIENT, Interest::WRITABLE)
                .unwrap();
            let mut events = Events::with_capacity(16);
            wait_for(&mut poll, &mut events, CLIENT, |e| e.is_writable());
            // Drop write interest: an idle connected socket reports nothing.
            poll.registry()
                .reregister(&mut SourceFd(&fd), CLIENT, Interest::READABLE)
                .unwrap();
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.token() != CLIENT),
                "backend {name}: read-only socket reported while idle"
            );
        }
    }

    #[test]
    fn timeout_expires() {
        for (name, mut poll) in backends() {
            let mut events = Events::with_capacity(4);
            let start = Instant::now();
            poll.poll(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert!(events.is_empty(), "backend {name}");
            assert!(
                start.elapsed() >= Duration::from_millis(25),
                "backend {name}: poll returned early"
            );
        }
    }

    #[test]
    fn waker_wakes_blocked_poll() {
        for (name, mut poll) in backends() {
            let waker = std::sync::Arc::new(Waker::new(poll.registry(), WAKER).unwrap());
            let w2 = waker.clone();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                w2.wake().unwrap();
            });
            let mut events = Events::with_capacity(4);
            let start = Instant::now();
            poll.poll(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "backend {name}: waker did not interrupt poll"
            );
            assert!(
                events.iter().any(|e| e.token() == WAKER && e.is_readable()),
                "backend {name}: no waker event"
            );
            handle.join().unwrap();

            // Wake-ups coalesce: repeated wakes deliver at least one event,
            // and a quiet poller then times out instead of spinning.
            waker.wake().unwrap();
            waker.wake().unwrap();
            poll.poll(&mut events, Some(Duration::from_millis(200)))
                .unwrap();
            assert!(events.iter().any(|e| e.token() == WAKER), "backend {name}");
            poll.poll(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(
                events.iter().all(|e| e.token() != WAKER),
                "backend {name}: waker event not coalesced/drained"
            );
        }
    }

    #[test]
    fn timeout_ms_rounds_up() {
        assert_eq!(super::timeout_ms(None), -1);
        assert_eq!(super::timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(super::timeout_ms(Some(Duration::from_nanos(1))), 1);
        assert_eq!(super::timeout_ms(Some(Duration::from_millis(7))), 7);
        assert_eq!(
            super::timeout_ms(Some(Duration::from_secs(1 << 40))),
            i32::MAX
        );
    }
}

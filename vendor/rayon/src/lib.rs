//! Vendored minimal stand-in for the `rayon` API subset this workspace uses.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements — with genuine data parallelism on `std::thread::scope` —
//! exactly the surface the peeling engines need:
//!
//! * `par_iter()` on slices, `into_par_iter()` on integer ranges and `Vec`;
//! * the adapters `map`, `filter`, `filter_map`, `enumerate`;
//! * the terminals `for_each`, `collect` (into `Vec`), `sum`, `all`,
//!   `reduce`, and rayon's two-level `fold(..).reduce(..)` pattern;
//! * [`join`], [`current_num_threads`], and a [`ThreadPoolBuilder`] /
//!   [`ThreadPool::install`] pair that bounds the worker count.
//!
//! Execution model: every pipeline bottoms out in an *indexed, splittable*
//! source (range, slice, or vec). A terminal operation splits the source
//! into one contiguous chunk per worker, runs the fused sequential pipeline
//! on each chunk in a scoped thread, and combines the per-chunk results in
//! source order. This preserves the properties the engines rely on: `collect`
//! is order-stable, side effects in `for_each`/`map` run concurrently (so
//! atomic-based claiming logic is genuinely exercised), and `fold` produces
//! one accumulator per chunk exactly like rayon's per-split accumulators.
//!
//! Not implemented (panics or compile error if reached): work stealing,
//! nested pool scheduling, `scope`/`spawn`, parallel sorts.

use std::cell::Cell;
use std::ops::Range;
use std::panic::resume_unwind;

/// Sequential fallback threshold: sources smaller than this run inline.
const MIN_CHUNK: usize = 1024;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`];
    /// 0 means "use the machine default".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Machine parallelism, resolved once. `available_parallelism` is a
/// syscall on most platforms; real rayon consults its global registry
/// instead, so querying it per terminal operation would make every small
/// `par_iter` pay microseconds of overhead that rayon does not.
fn machine_threads() -> usize {
    use std::sync::OnceLock;
    static MACHINE_THREADS: OnceLock<usize> = OnceLock::new();
    *MACHINE_THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Number of worker threads terminal operations will use on this thread.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        machine_threads()
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never actually produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _private: (),
}

/// Builder for a [`ThreadPool`] (API subset of rayon's).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Create a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the number of worker threads (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in this implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "thread pool": in this shim, a worker-count bound applied while a
/// closure runs via [`ThreadPool::install`]. Threads themselves are scoped
/// per terminal operation rather than pooled.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's worker-count bound installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = POOL_THREADS.with(Cell::get);
        let _restore = Restore(prev);
        POOL_THREADS.with(|c| c.set(self.num_threads));
        op()
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let threads = current_num_threads();
    if threads <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        // Propagate the caller's worker-count bound into the spawned side so
        // nested parallel ops inside `b` still respect an installed pool.
        let hb = s.spawn(move || {
            POOL_THREADS.with(|c| c.set(threads));
            b()
        });
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| resume_unwind(e));
        (ra, rb)
    })
}

/// The parallel iterator trait: an indexed, splittable pipeline.
///
/// `par_len` counts *source* elements (adapters like `filter` do not change
/// it — it exists only to balance chunking), `split_at` splits the source,
/// and `seq` yields the fused sequential pipeline for one chunk.
pub trait ParallelIterator: Sized + Send {
    /// Element type produced by the pipeline.
    type Item: Send;
    /// The fused sequential iterator for one chunk.
    type Seq: Iterator<Item = Self::Item>;

    /// Number of source elements remaining in this part.
    fn par_len(&self) -> usize;
    /// Split the source after `mid` elements.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Sequential iterator over this part.
    fn seq(self) -> Self::Seq;

    /// Smallest chunk this pipeline wants per worker, if overridden.
    ///
    /// `None` means "use the global [`MIN_CHUNK`] heuristic". Sources with
    /// intrinsically coarse elements (e.g. [`ParChunks`], where one element
    /// is already a whole sub-slice) and the [`MinLen`] adapter override
    /// this so a handful of heavy elements still fans out across workers.
    fn min_len_hint(&self) -> Option<usize> {
        None
    }

    /// Map each element through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Keep elements satisfying `pred`.
    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send + Clone,
    {
        Filter { base: self, pred }
    }

    /// Map-and-filter in one pass.
    fn filter_map<F, R>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Sync + Send + Clone,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    /// Consume the pipeline, running `f` on every element concurrently.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        execute(self, &|part: Self| {
            part.seq().for_each(&f);
        });
    }

    /// Collect the pipeline, preserving source order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_chunks(execute(self, &|part: Self| part.seq().collect::<Vec<_>>()))
    }

    /// Sum the elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        execute(self, &|part: Self| part.seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Test whether every element satisfies `pred`.
    fn all<F>(self, pred: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync + Send,
    {
        execute(self, &|part: Self| part.seq().all(&pred))
            .into_iter()
            .all(|b| b)
    }

    /// Rayon-style parallel fold: produces one accumulator per chunk.
    ///
    /// The result is itself a parallel iterator over the accumulators,
    /// typically combined with [`ParallelIterator::reduce`].
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParVec<T>
    where
        T: Send,
        ID: Fn() -> T + Sync + Send,
        F: Fn(T, Self::Item) -> T + Sync + Send,
    {
        ParVec {
            items: execute(self, &|part: Self| part.seq().fold(identity(), &fold_op)),
        }
    }

    /// Reduce all elements to one value with an associative operation.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        execute(self, &|part: Self| part.seq().fold(identity(), &op))
            .into_iter()
            .fold(identity(), op)
    }
}

/// Marker for pipelines where each source element maps to exactly one output
/// element at its source position (no `filter`/`filter_map` upstream). Only
/// indexed pipelines may be enumerated — mirroring real rayon, where
/// `enumerate` requires `IndexedParallelIterator`, this turns the
/// wrong-indices-after-filter trap into a compile error.
pub trait IndexedParallelIterator: ParallelIterator {
    /// Pair each element with its source index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Set the smallest number of source elements a worker may receive.
    ///
    /// This both *lowers* the sequential-fallback threshold (so a source of
    /// e.g. 32 heavy stripe tasks actually fans out, where the default
    /// [`MIN_CHUNK`] heuristic would run it inline) and *raises* the chunk
    /// floor when `min > MIN_CHUNK` (capping dispatch overhead on cheap
    /// elements). Mirrors rayon's `with_min_len`.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen {
            base: self,
            min: min.max(1),
        }
    }
}

/// Split `p` into roughly even chunks and run `run` on each, in scoped
/// threads when the source is large enough to be worth it.
fn execute<P, R, F>(p: P, run: &F) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let threads = current_num_threads().max(1);
    let len = p.par_len();
    let min_chunk = p.min_len_hint().unwrap_or(MIN_CHUNK);
    if threads == 1 || len < 2 * min_chunk {
        return vec![run(p)];
    }
    let chunk = len.div_ceil(threads).max(min_chunk);
    let mut parts = Vec::with_capacity(threads);
    let mut rest = p;
    let mut remaining = len;
    while remaining > chunk {
        let (head, tail) = rest.split_at(chunk);
        parts.push(head);
        rest = tail;
        remaining -= chunk;
    }
    parts.push(rest);
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| {
                s.spawn(move || {
                    // Propagate the caller's worker-count bound so nested
                    // parallel ops inside `run` respect an installed pool.
                    POOL_THREADS.with(|c| c.set(threads));
                    run(part)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| resume_unwind(e)))
            .collect()
    })
}

/// Conversion from ordered per-chunk results (rayon's `FromParallelIterator`).
pub trait FromParallelIterator<T: Send> {
    /// Build the collection from per-chunk partial results, in source order.
    fn from_par_chunks(chunks: Vec<Vec<T>>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_chunks(chunks: Vec<Vec<T>>) -> Self {
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for mut c in chunks {
            out.append(&mut c);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over an integer range.
#[derive(Clone)]
pub struct ParRange<T> {
    range: Range<T>,
}

macro_rules! par_range_impl {
    ($($t:ty),*) => {$(
        impl ParallelIterator for ParRange<$t> {
            type Item = $t;
            type Seq = Range<$t>;

            fn par_len(&self) -> usize {
                (self.range.end.saturating_sub(self.range.start)) as usize
            }
            fn split_at(self, mid: usize) -> (Self, Self) {
                let pivot = self.range.start + mid as $t;
                (
                    ParRange { range: self.range.start..pivot },
                    ParRange { range: pivot..self.range.end },
                )
            }
            fn seq(self) -> Self::Seq {
                self.range
            }
        }

        impl IndexedParallelIterator for ParRange<$t> {}

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;
            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { range: self }
            }
        }
    )*};
}

par_range_impl!(u32, u64, usize);

/// Parallel iterator over a slice (by reference).
pub struct ParSliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at(mid);
        (ParSliceIter { slice: head }, ParSliceIter { slice: tail })
    }
    fn seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

impl<T: Sync> IndexedParallelIterator for ParSliceIter<'_, T> {}

/// Parallel iterator over non-overlapping sub-slices of length `size`
/// (last may be shorter) — the unit of splitting is the whole chunk.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (head, tail) = self.slice.split_at(at);
        (
            ParChunks {
                slice: head,
                size: self.size,
            },
            ParChunks {
                slice: tail,
                size: self.size,
            },
        )
    }
    fn seq(self) -> Self::Seq {
        self.slice.chunks(self.size)
    }
    fn min_len_hint(&self) -> Option<usize> {
        // One element is already a whole `size`-long sub-slice: the caller
        // chose the dispatch granularity explicitly, so even a handful of
        // chunks fans out rather than hitting the MIN_CHUNK inline path.
        Some(1)
    }
}

impl<T: Sync> IndexedParallelIterator for ParChunks<'_, T> {}

/// Owning parallel iterator over a `Vec` — also the accumulator carrier for
/// [`ParallelIterator::fold`].
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.items.split_off(mid);
        (self, ParVec { items: tail })
    }
    fn seq(self) -> Self::Seq {
        self.items.into_iter()
    }
}

impl<T: Send> IndexedParallelIterator for ParVec<T> {}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Types convertible into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on slices (and, via deref, `Vec`s and arrays).
pub trait ParallelSlice<T: Sync> {
    /// Borrowing parallel iterator over the elements.
    fn par_iter(&self) -> ParSliceIter<'_, T>;

    /// Parallel iterator over `size`-long sub-slices (last may be shorter).
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        ParChunks {
            slice: self,
            size: size.max(1),
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// `map` adapter.
#[derive(Clone)]
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync + Send + Clone,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn seq(self) -> Self::Seq {
        self.base.seq().map(self.f)
    }
    fn min_len_hint(&self) -> Option<usize> {
        self.base.min_len_hint()
    }
}

impl<P, F, R> IndexedParallelIterator for Map<P, F>
where
    P: IndexedParallelIterator,
    F: Fn(P::Item) -> R + Sync + Send + Clone,
    R: Send,
{
}

/// `filter` adapter.
#[derive(Clone)]
pub struct Filter<P, F> {
    base: P,
    pred: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync + Send + Clone,
{
    type Item = P::Item;
    type Seq = std::iter::Filter<P::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Filter {
                base: a,
                pred: self.pred.clone(),
            },
            Filter {
                base: b,
                pred: self.pred,
            },
        )
    }
    fn seq(self) -> Self::Seq {
        self.base.seq().filter(self.pred)
    }
    fn min_len_hint(&self) -> Option<usize> {
        self.base.min_len_hint()
    }
}

/// `filter_map` adapter.
#[derive(Clone)]
pub struct FilterMap<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> Option<R> + Sync + Send + Clone,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::FilterMap<P::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            FilterMap {
                base: a,
                f: self.f.clone(),
            },
            FilterMap { base: b, f: self.f },
        )
    }
    fn seq(self) -> Self::Seq {
        self.base.seq().filter_map(self.f)
    }
    fn min_len_hint(&self) -> Option<usize> {
        self.base.min_len_hint()
    }
}

/// `enumerate` adapter (indexed pipelines only, as in rayon).
#[derive(Clone)]
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P> ParallelIterator for Enumerate<P>
where
    P: ParallelIterator,
{
    type Item = (usize, P::Item);
    type Seq = std::iter::Zip<Range<usize>, P::Seq>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + mid,
            },
        )
    }
    fn seq(self) -> Self::Seq {
        let start = self.offset;
        let end = start + self.base.par_len();
        (start..end).zip(self.base.seq())
    }
    fn min_len_hint(&self) -> Option<usize> {
        self.base.min_len_hint()
    }
}

impl<P> IndexedParallelIterator for Enumerate<P> where P: IndexedParallelIterator {}

/// `with_min_len` adapter: overrides the per-worker chunk floor.
#[derive(Clone)]
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P> ParallelIterator for MinLen<P>
where
    P: ParallelIterator,
{
    type Item = P::Item;
    type Seq = P::Seq;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            MinLen {
                base: a,
                min: self.min,
            },
            MinLen {
                base: b,
                min: self.min,
            },
        )
    }
    fn seq(self) -> Self::Seq {
        self.base.seq()
    }
    fn min_len_hint(&self) -> Option<usize> {
        Some(self.min)
    }
}

impl<P> IndexedParallelIterator for MinLen<P> where P: IndexedParallelIterator {}

/// The traits needed for `par_iter()` / `into_par_iter()` method syntax.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, ParallelIterator,
        ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

    /// Run `f` both with the machine default worker count and under an
    /// installed 4-thread pool, so the chunked scoped-thread path is
    /// exercised even on single-core machines (where the default degrades
    /// to the sequential fast path).
    fn with_and_without_pool(f: impl Fn()) {
        f();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(&f);
    }

    #[test]
    fn collect_preserves_order() {
        with_and_without_pool(|| {
            let v: Vec<u32> = (0u32..100_000).into_par_iter().map(|x| x * 2).collect();
            assert_eq!(v.len(), 100_000);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(v[7], 14);
        });
    }

    #[test]
    fn filter_sum_matches_serial() {
        with_and_without_pool(|| {
            let par: u64 = (0u64..1_000_000)
                .into_par_iter()
                .filter(|&x| x % 3 == 0)
                .map(|x| x)
                .sum();
            let ser: u64 = (0u64..1_000_000).filter(|&x| x % 3 == 0).sum();
            assert_eq!(par, ser);
        });
    }

    #[test]
    fn for_each_runs_every_element() {
        with_and_without_pool(|| {
            let total = AtomicU64::new(0);
            let data: Vec<u64> = (1..=10_000).collect();
            data.par_iter().for_each(|&x| {
                total.fetch_add(x, Relaxed);
            });
            assert_eq!(total.load(Relaxed), 10_000 * 10_001 / 2);
        });
    }

    #[test]
    fn fold_reduce_concatenates() {
        with_and_without_pool(|| {
            let data: Vec<u32> = (0..50_000).collect();
            let out: Vec<u32> = data
                .par_iter()
                .fold(Vec::new, |mut acc, &x| {
                    acc.push(x);
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
            assert_eq!(out, data);
        });
    }

    #[test]
    fn enumerate_gives_global_indices() {
        with_and_without_pool(|| {
            let data: Vec<u64> = (0..30_000).map(|x| x * 10).collect();
            data.par_iter().enumerate().for_each(|(i, &x)| {
                assert_eq!(x, i as u64 * 10);
            });
        });
    }

    #[test]
    fn installed_pool_actually_splits_work() {
        // Under a 4-thread pool a large source must be driven by more than
        // one worker thread; thread ids observed inside `for_each` prove
        // the scoped-thread path ran (this would see exactly one id if the
        // sequential fast path were taken).
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        let items = AtomicUsize::new(0);
        pool.install(|| {
            (0usize..100_000).into_par_iter().for_each(|_| {
                items.fetch_add(1, Relaxed);
                seen.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert_eq!(items.load(Relaxed), 100_000);
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected multiple worker threads under an installed pool"
        );
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let n = pool.install(current_num_threads);
        assert_eq!(n, 2);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn all_short_circuits_logically() {
        assert!((0u32..10_000).into_par_iter().all(|x| x < 10_000));
        assert!(!(0u32..10_000).into_par_iter().all(|x| x < 9_999));
    }

    #[test]
    fn par_chunks_covers_slice_in_order() {
        with_and_without_pool(|| {
            let data: Vec<u32> = (0..10_007).collect();
            let chunks: Vec<Vec<u32>> = data.par_chunks(64).map(<[u32]>::to_vec).collect();
            assert_eq!(chunks.len(), 10_007usize.div_ceil(64));
            let flat: Vec<u32> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, data);
        });
    }

    #[test]
    fn par_chunks_fans_out_few_heavy_chunks() {
        // 8 chunks of 16 elements is far below MIN_CHUNK source elements,
        // but par_chunks splits per chunk: under a 4-thread pool more than
        // one worker must participate.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let data = [0u8; 128];
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        pool.install(|| {
            data.par_chunks(16).for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            });
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected par_chunks to split across workers"
        );
    }

    #[test]
    fn with_min_len_lowers_inline_threshold() {
        // A 32-element range is far below 2*MIN_CHUNK, so by default it runs
        // inline; with_min_len(1) makes it fan out under an installed pool.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        let total = AtomicU64::new(0);
        pool.install(|| {
            (0u32..32).into_par_iter().with_min_len(1).for_each(|x| {
                total.fetch_add(u64::from(x), Relaxed);
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            });
        });
        assert_eq!(total.load(Relaxed), 31 * 32 / 2);
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected with_min_len(1) to split a tiny source"
        );
    }

    #[test]
    fn with_min_len_raises_chunk_floor() {
        // With a floor of 100_000 on a 100_000-element source, the split
        // loop cannot produce more than one part: exactly one thread runs.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        pool.install(|| {
            (0u32..100_000)
                .into_par_iter()
                .with_min_len(100_000)
                .for_each(|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                });
        });
        assert_eq!(seen.lock().unwrap().len(), 1);
    }
}

//! Keyspace sharding: key → shard, and per-shard IBLT configurations.
//!
//! Client and server must agree on both mappings, so the router is pure,
//! deterministic arithmetic over values exchanged in the `Hello` handshake
//! (shard count, router seed, base IBLT config). Each shard gets its own
//! hash-function seed so that a key colliding in one shard's table is
//! independent of its placement everywhere else.

use peel_iblt::{Iblt, IbltConfig};

/// The 64-bit SplitMix finalizer (same mixer family as `peel-iblt`'s
/// hashing; duplicated here because the service must not depend on the
/// IBLT's private internals for its *routing* decisions).
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic key → shard mapping shared by clients and servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
    seed: u64,
}

impl ShardRouter {
    /// Router over `shards` shards (≥ 1) under a shared seed.
    pub fn new(shards: u32, seed: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardRouter { shards, seed }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Shard owning `key` (multiply-shift range reduction, no modulo bias).
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        let h = mix64(key ^ self.seed);
        ((h as u128 * self.shards as u128) >> 64) as usize
    }

    /// Partition a key list into per-shard buckets.
    pub fn partition(&self, keys: &[u64]) -> Vec<Vec<u64>> {
        let mut out = vec![Vec::new(); self.shards as usize];
        for &k in keys {
            out[self.shard_of(k)].push(k);
        }
        out
    }

    /// The router of the next generation after resharding to `shards`
    /// shards. The seed is preserved, so resharding is purely a range
    /// rescaling of the same key hash: splitting and then merging back to
    /// the original count round-trips to the identity mapping, and
    /// clients derive the post-reshard routing from the same handshake
    /// seed they already hold.
    pub fn resharded(&self, shards: u32) -> ShardRouter {
        ShardRouter::new(shards, self.seed)
    }
}

/// The routing view during a live reshard: the old (serving) generation
/// plus, while a migration is in flight, the new generation being
/// populated. Reads are answered from the old mapping; writes dual-apply
/// to both, which is what keeps the new generation convergent under
/// racing ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationRouter {
    old: ShardRouter,
    new: Option<ShardRouter>,
}

impl GenerationRouter {
    /// A stable (non-migrating) view: one generation, no dual mapping.
    pub fn stable(router: ShardRouter) -> Self {
        GenerationRouter {
            old: router,
            new: None,
        }
    }

    /// A migrating view. Both generations must share a routing seed
    /// (they are produced by [`ShardRouter::resharded`]); anything else
    /// would re-key through an unrelated hash and break the
    /// split-then-merge identity.
    pub fn migrating(old: ShardRouter, new: ShardRouter) -> Self {
        assert_eq!(
            old.seed, new.seed,
            "generations must share the routing seed"
        );
        GenerationRouter {
            old,
            new: Some(new),
        }
    }

    /// True while a migration is in flight.
    pub fn is_migrating(&self) -> bool {
        self.new.is_some()
    }

    /// The serving (old-generation) router.
    pub fn old(&self) -> &ShardRouter {
        &self.old
    }

    /// The new-generation router, while migrating.
    pub fn new_gen(&self) -> Option<&ShardRouter> {
        self.new.as_ref()
    }

    /// Route one key: the old-generation shard it is served from, plus —
    /// during migration — the new-generation shard writes dual-apply to.
    /// Pure arithmetic over the two routers, so the pair is stable
    /// across calls for as long as the generations stand.
    #[inline]
    pub fn route(&self, key: u64) -> (usize, Option<usize>) {
        (
            self.old.shard_of(key),
            self.new.as_ref().map(|r| r.shard_of(key)),
        )
    }
}

/// The IBLT configuration of shard `shard` under a service-wide base
/// config: same geometry, per-shard hash seed.
pub fn shard_iblt_config(base: IbltConfig, shard: u32) -> IbltConfig {
    IbltConfig {
        seed: mix64(base.seed ^ (0x5eed_0000_0000_0000 | shard as u64)),
        ..base
    }
}

/// Build the per-shard IBLT digests of a key set — the client half of a
/// reconciliation. Uses exactly the routing and per-shard configs a
/// server advertising (`shards`, `router_seed`, `base`) applies on its
/// side, so digest `i` is subtraction-compatible with server shard `i`.
pub fn build_shard_digests(
    keys: &[u64],
    shards: u32,
    router_seed: u64,
    base: IbltConfig,
) -> Vec<Iblt> {
    let router = ShardRouter::new(shards, router_seed);
    let mut out: Vec<Iblt> = (0..shards)
        .map(|i| Iblt::new(shard_iblt_config(base, i)))
        .collect();
    for &k in keys {
        out[router.shard_of(k)].insert(k);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_in_range_and_deterministic() {
        let r = ShardRouter::new(7, 42);
        for key in 0..10_000u64 {
            let s = r.shard_of(key);
            assert!(s < 7);
            assert_eq!(s, ShardRouter::new(7, 42).shard_of(key));
        }
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let r = ShardRouter::new(8, 9);
        let keys: Vec<u64> = (0..80_000u64).map(|i| i.wrapping_mul(0x9e37)).collect();
        let parts = r.partition(&keys);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), keys.len());
        for p in &parts {
            // Expect 10k ± a generous 20%.
            assert!(p.len() > 8_000 && p.len() < 12_000, "bucket = {}", p.len());
        }
    }

    #[test]
    fn seed_changes_routing() {
        let a = ShardRouter::new(16, 1);
        let b = ShardRouter::new(16, 2);
        let moved = (0..1_000u64)
            .filter(|&k| a.shard_of(k) != b.shard_of(k))
            .count();
        assert!(moved > 800, "only {moved} keys moved");
    }

    #[test]
    fn resharded_preserves_seed_and_round_trips() {
        let r = ShardRouter::new(1, 77);
        let split = r.resharded(4);
        assert_eq!(split.shards(), 4);
        let merged = split.resharded(1);
        assert_eq!(merged, r);
        for key in 0..1_000u64 {
            assert_eq!(merged.shard_of(key), r.shard_of(key));
        }
    }

    #[test]
    fn generation_router_routes_pairs_during_migration() {
        let old = ShardRouter::new(4, 9);
        let stable = GenerationRouter::stable(old);
        assert!(!stable.is_migrating());
        assert_eq!(stable.route(42), (old.shard_of(42), None));

        let new = old.resharded(8);
        let mig = GenerationRouter::migrating(old, new);
        assert!(mig.is_migrating());
        for key in 0..1_000u64 {
            let (o, n) = mig.route(key);
            assert_eq!(o, old.shard_of(key));
            assert_eq!(n, Some(new.shard_of(key)));
            // Stable across calls.
            assert_eq!(mig.route(key), (o, n));
        }
    }

    #[test]
    #[should_panic(expected = "routing seed")]
    fn generation_router_rejects_mismatched_seeds() {
        let _ = GenerationRouter::migrating(ShardRouter::new(2, 1), ShardRouter::new(4, 2));
    }

    #[test]
    fn shard_configs_differ_only_in_seed() {
        let base = IbltConfig::new(4, 100, 77);
        let a = shard_iblt_config(base, 0);
        let b = shard_iblt_config(base, 1);
        assert_eq!(a.hashes, base.hashes);
        assert_eq!(a.cells_per_table, base.cells_per_table);
        assert_ne!(a.seed, b.seed);
        // Stable across calls (the client derives the same configs).
        assert_eq!(a, shard_iblt_config(base, 0));
    }
}

//! Keyspace sharding: key → shard, and per-shard IBLT configurations.
//!
//! Client and server must agree on both mappings, so the router is pure,
//! deterministic arithmetic over values exchanged in the `Hello` handshake
//! (shard count, router seed, base IBLT config). Each shard gets its own
//! hash-function seed so that a key colliding in one shard's table is
//! independent of its placement everywhere else.

use peel_iblt::{Iblt, IbltConfig};

/// The 64-bit SplitMix finalizer (same mixer family as `peel-iblt`'s
/// hashing; duplicated here because the service must not depend on the
/// IBLT's private internals for its *routing* decisions).
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic key → shard mapping shared by clients and servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
    seed: u64,
}

impl ShardRouter {
    /// Router over `shards` shards (≥ 1) under a shared seed.
    pub fn new(shards: u32, seed: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardRouter { shards, seed }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Shard owning `key` (multiply-shift range reduction, no modulo bias).
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        let h = mix64(key ^ self.seed);
        ((h as u128 * self.shards as u128) >> 64) as usize
    }

    /// Partition a key list into per-shard buckets.
    pub fn partition(&self, keys: &[u64]) -> Vec<Vec<u64>> {
        let mut out = vec![Vec::new(); self.shards as usize];
        for &k in keys {
            out[self.shard_of(k)].push(k);
        }
        out
    }
}

/// The IBLT configuration of shard `shard` under a service-wide base
/// config: same geometry, per-shard hash seed.
pub fn shard_iblt_config(base: IbltConfig, shard: u32) -> IbltConfig {
    IbltConfig {
        seed: mix64(base.seed ^ (0x5eed_0000_0000_0000 | shard as u64)),
        ..base
    }
}

/// Build the per-shard IBLT digests of a key set — the client half of a
/// reconciliation. Uses exactly the routing and per-shard configs a
/// server advertising (`shards`, `router_seed`, `base`) applies on its
/// side, so digest `i` is subtraction-compatible with server shard `i`.
pub fn build_shard_digests(
    keys: &[u64],
    shards: u32,
    router_seed: u64,
    base: IbltConfig,
) -> Vec<Iblt> {
    let router = ShardRouter::new(shards, router_seed);
    let mut out: Vec<Iblt> = (0..shards)
        .map(|i| Iblt::new(shard_iblt_config(base, i)))
        .collect();
    for &k in keys {
        out[router.shard_of(k)].insert(k);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_in_range_and_deterministic() {
        let r = ShardRouter::new(7, 42);
        for key in 0..10_000u64 {
            let s = r.shard_of(key);
            assert!(s < 7);
            assert_eq!(s, ShardRouter::new(7, 42).shard_of(key));
        }
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let r = ShardRouter::new(8, 9);
        let keys: Vec<u64> = (0..80_000u64).map(|i| i.wrapping_mul(0x9e37)).collect();
        let parts = r.partition(&keys);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), keys.len());
        for p in &parts {
            // Expect 10k ± a generous 20%.
            assert!(p.len() > 8_000 && p.len() < 12_000, "bucket = {}", p.len());
        }
    }

    #[test]
    fn seed_changes_routing() {
        let a = ShardRouter::new(16, 1);
        let b = ShardRouter::new(16, 2);
        let moved = (0..1_000u64)
            .filter(|&k| a.shard_of(k) != b.shard_of(k))
            .count();
        assert!(moved > 800, "only {moved} keys moved");
    }

    #[test]
    fn shard_configs_differ_only_in_seed() {
        let base = IbltConfig::new(4, 100, 77);
        let a = shard_iblt_config(base, 0);
        let b = shard_iblt_config(base, 1);
        assert_eq!(a.hashes, base.hashes);
        assert_eq!(a.cells_per_table, base.cells_per_table);
        assert_ne!(a.seed, b.seed);
        // Stable across calls (the client derives the same configs).
        assert_eq!(a, shard_iblt_config(base, 0));
    }
}

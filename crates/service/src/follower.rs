//! The follower driver: keeps a local [`PeelService`] converged with a
//! primary server, and — in a mesh — takes part in failover when that
//! primary dies.
//!
//! Two background threads per follower:
//!
//! * **Stream thread** (fast path): connects to the primary, sends
//!   `Subscribe`, and applies the replicated batch stream through
//!   [`apply_replication_stream`]. On any connection failure it backs
//!   off (exponentially, with jitter, so a mesh of followers doesn't
//!   reconnect in lockstep) and reconnects, resuming from the highest
//!   applied sequence number so nothing is double-applied. After
//!   [`FollowerConfig::failover_threshold`] consecutive failures with
//!   peers configured, it runs an election (see below).
//! * **Anti-entropy thread** (repair path): every
//!   [`FollowerConfig::anti_entropy_interval`], snapshots each local
//!   shard, sends it to the primary as a `Reconcile` digest, and applies
//!   the decoded symmetric difference — inserting keys only the primary
//!   has, deleting keys only this follower has. This provably converges
//!   the follower to the primary no matter what the stream dropped:
//!   each round's repair is exactly the per-shard symmetric difference
//!   the IBLT subtraction peels out, and repairs are applied even when a
//!   round decodes incompletely (peeled keys are always genuine), so
//!   successive rounds shrink any divergence to zero.
//!
//! ## Election and fencing
//!
//! The election is deliberately simple — deterministic, leaderless, and
//! safe because anti-entropy erases any divergence a bad cut leaves
//! behind. When the stream thread exhausts its failover threshold it
//! probes every configured peer's `ReplicaStatus` and runs [`elect`]
//! over the reachable candidates (itself included): a reachable node
//! already leading at the highest epoch wins outright (someone else got
//! there first — re-parent onto it); otherwise the most caught-up
//! candidate wins, lowest node id breaking ties. If this node wins, it
//! bumps the replication epoch past everything it saw
//! ([`PeelService::fence_epoch`]) and starts leading; the bumped epoch
//! *fences* the old primary — its frames are refused by every follower,
//! and the higher epoch in their acks deposes it if it comes back. If a
//! peer wins, this node re-parents its stream and repair connections
//! onto the winner.
//!
//! The driver refuses a primary whose fixed `Hello` parameters (router
//! seed, base IBLT config) don't match the local service — shard digests
//! would not be subtraction-compatible. The shard *count* is live: when
//! the primary reshards, the in-stream generation-change notice (or the
//! repair loop's handshake poll) reshards the local service to the same
//! generation before reconciling.

use std::net::{Shutdown as SockShutdown, SocketAddr, TcpStream};
// ordering: the follower's bare atomics are Relaxed. `stop` publishes no
// data (raise() follows the store with the signal-lock acquire/release
// that wakes sleepers, and every loop re-polls it), and `last_applied` is
// a resume cursor: its only cross-thread reader is the repair loop's
// progress probe, which tolerates staleness by design — it merely defers
// a repair round. Checked by the loom models in tests/loom_lock.rs.
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::sync::{AtomicBool, AtomicU64, Condvar, Mutex};

use crate::client::Client;
use crate::lock::{plock, pwait_timeout};
use crate::replication::apply_replication_stream;
use crate::service::PeelService;
use crate::wire::WireError;

/// Tunables for a [`Follower`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerConfig {
    /// How often the anti-entropy loop reconciles against the primary.
    pub anti_entropy_interval: Duration,
    /// Initial delay between reconnection attempts after a connection
    /// failure; doubles per consecutive failure (with jitter) up to
    /// [`FollowerConfig::max_reconnect_backoff`].
    pub reconnect_backoff: Duration,
    /// Cap on the exponential reconnect backoff.
    pub max_reconnect_backoff: Duration,
    /// The other replicas of this mesh (election electorate). Empty
    /// means no failover: this follower waits for its one primary
    /// forever, exactly the pre-mesh behaviour.
    pub peers: Vec<SocketAddr>,
    /// Consecutive stream connection failures before an election is
    /// attempted (only with non-empty `peers`).
    pub failover_threshold: u32,
    /// The address this node's own server is reachable at, advertised as
    /// the redirect target in `ReadStale` responses if this node wins an
    /// election. Empty disables the hint.
    pub advertise: String,
    /// Socket read/write deadline for anti-entropy and repair
    /// connections to the primary, so a half-dead peer (accepts, never
    /// answers) fails the round as [`ServiceError::PeerTimedOut`]
    /// instead of hanging the repair loop forever. Does not apply to
    /// the replication stream, which legitimately idles between
    /// batches. `None` disables the deadline.
    pub io_timeout: Option<Duration>,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            anti_entropy_interval: Duration::from_millis(200),
            reconnect_backoff: Duration::from_millis(100),
            max_reconnect_backoff: Duration::from_secs(2),
            peers: Vec::new(),
            failover_threshold: 3,
            advertise: String::new(),
            io_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// One node as seen by an election: identity, fence, progress, role.
/// Built from [`crate::wire::ReplicaStatus`] probes (and the local
/// service's own status).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The node's mesh identity (the deterministic tie-breaker).
    pub node_id: u64,
    /// Highest replicated sequence number the node has applied.
    pub last_applied: u64,
    /// The replication epoch the node is fenced at.
    pub epoch: u64,
    /// Whether the node already believes it is primary.
    pub leading: bool,
}

/// The election rule, as a pure function over the reachable candidates.
/// Returns the index of the winner, or `None` for an empty electorate.
///
/// A candidate already leading at the highest epoch wins outright —
/// someone completed an election first, and fencing makes joining it
/// strictly safer than splitting. Otherwise candidates at the newest
/// fence are preferred (a deposed ex-primary's progress on the old
/// stream does not outrank the new regime), then the most caught-up
/// (highest `last_applied`), lowest `node_id` breaking ties — every
/// prober evaluating the same candidate set picks the same winner, which
/// is what makes the leaderless protocol converge.
pub fn elect(candidates: &[Candidate]) -> Option<usize> {
    use std::cmp::Reverse;
    let max_epoch = candidates.iter().map(|c| c.epoch).max()?;
    if let Some((i, _)) = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.leading && c.epoch == max_epoch)
        .min_by_key(|(_, c)| c.node_id)
    {
        return Some(i);
    }
    candidates
        .iter()
        .enumerate()
        .min_by_key(|(_, c)| (Reverse(c.epoch), Reverse(c.last_applied), c.node_id))
        .map(|(i, _)| i)
}

struct StopSignal {
    stop: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
    /// Socket clones for the stream and anti-entropy connections, so
    /// `stop` can unblock threads parked in blocking reads.
    socks: [Mutex<Option<TcpStream>>; 2],
}

impl StopSignal {
    fn stopped(&self) -> bool {
        self.stop.load(Relaxed)
    }

    /// Sleep up to `dur`, returning early (true) if stop was raised.
    fn sleep(&self, dur: Duration) -> bool {
        let guard = plock(&self.lock);
        if self.stopped() {
            return true;
        }
        let _ = pwait_timeout(&self.cv, guard, dur);
        self.stopped()
    }

    fn register(&self, slot: usize, sock: Option<TcpStream>) {
        *plock(&self.socks[slot]) = sock;
    }

    fn raise(&self) {
        self.stop.store(true, Relaxed);
        let _guard = plock(&self.lock);
        self.cv.notify_all();
        drop(_guard);
        for slot in &self.socks {
            if let Some(s) = plock(slot).take() {
                let _ = s.shutdown(SockShutdown::Both);
            }
        }
    }
}

const SLOT_STREAM: usize = 0;
const SLOT_REPAIR: usize = 1;

/// How long an election probe waits for a peer before counting it
/// unreachable. Short — a probed peer is on the same mesh, and a dead
/// one should not stall the election for the OS connect timeout.
const PROBE_TIMEOUT: Duration = Duration::from_millis(250);

/// A running primary→follower replication driver. Stops (and joins its
/// threads) on [`Follower::stop`] or drop.
pub struct Follower {
    signal: Arc<StopSignal>,
    threads: Vec<JoinHandle<()>>,
    last_applied: Arc<AtomicU64>,
}

impl Follower {
    /// Start replicating `primary` into `svc`. Connections are
    /// established (and re-established) in the background, so the
    /// primary does not need to be up yet. Marks `svc` as following
    /// (not leading) and records the primary as its redirect hint.
    pub fn start(svc: Arc<PeelService>, primary: SocketAddr, cfg: FollowerConfig) -> Follower {
        svc.set_leading(false);
        svc.set_primary_hint(&primary.to_string());
        let signal = Arc::new(StopSignal {
            stop: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            socks: [Mutex::new(None), Mutex::new(None)],
        });
        let last_applied = Arc::new(AtomicU64::new(0));
        // The current parent, shared between the loops: an election
        // re-points it, and the repair loop follows along.
        let primary = Arc::new(Mutex::new(primary));
        let stream_thread = {
            let svc = Arc::clone(&svc);
            let signal = Arc::clone(&signal);
            let last = Arc::clone(&last_applied);
            let primary = Arc::clone(&primary);
            let cfg = cfg.clone();
            std::thread::spawn(move || stream_loop(&svc, &primary, &cfg, &signal, &last))
        };
        let repair_thread = {
            let signal = Arc::clone(&signal);
            let last = Arc::clone(&last_applied);
            std::thread::spawn(move || repair_loop(&svc, &primary, &cfg, &signal, &last))
        };
        Follower {
            signal,
            threads: vec![stream_thread, repair_thread],
            last_applied,
        }
    }

    /// Highest replicated sequence number applied via the stream.
    pub fn last_applied_seq(&self) -> u64 {
        self.last_applied.load(Relaxed)
    }

    /// Stop both loops and join them. Idempotent.
    pub fn stop(&mut self) {
        self.signal.raise();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop();
    }
}

/// True iff the primary's advertised keyspace parameters are compatible
/// with the local service's. The *shard count* is deliberately not
/// compared: it is a live property (the primary can reshard at any
/// time), the replicated batch stream is shard-agnostic (ops carry keys
/// and are re-routed by whichever generation the follower serves), and
/// the anti-entropy loop adopts a changed count by resharding the local
/// service before reconciling. The routing seed and base IBLT geometry,
/// by contrast, are fixed at bind time on both ends — a mismatch there
/// never heals.
fn hello_compatible(svc: &PeelService, primary: &crate::wire::HelloInfo) -> bool {
    let local = svc.hello();
    local.router_seed == primary.router_seed && local.base_config == primary.base_config
}

/// Adopt the primary's shard count if it differs from the local one:
/// reshard the local service through the same begin/verify/commit
/// machinery the primary ran. Returns false if adoption was needed and
/// failed (the caller should retry next round).
fn adopt_generation(svc: &PeelService, primary_shards: u32) -> bool {
    if svc.shards() == primary_shards {
        return true;
    }
    match svc.reshard(primary_shards) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("follower: cannot adopt primary's {primary_shards}-shard generation: {e}");
            false
        }
    }
}

/// SplitMix64 step for backoff jitter — no shared RNG state, seeded per
/// loop from the node id so meshes don't thundering-herd a recovering
/// primary.
fn jitter_step(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential backoff with jitter: `base · 2^failures`, capped, plus up
/// to 50% random extra so simultaneous failers spread out.
fn backoff_delay(cfg: &FollowerConfig, failures: u32, rng: &mut u64) -> Duration {
    let base = cfg
        .reconnect_backoff
        .saturating_mul(1u32 << failures.min(5))
        .min(cfg.max_reconnect_backoff);
    let half_ms = (base.as_millis() as u64 / 2).max(1);
    base + Duration::from_millis(jitter_step(rng) % half_ms)
}

/// Probe the configured peers, run [`elect`] over everything reachable
/// (self included, always candidate 0), and act on the outcome: either
/// this node starts leading behind a fresh fence, or it re-parents onto
/// the winner. Returns the new parent when one was chosen.
fn run_election(svc: &PeelService, cfg: &FollowerConfig) -> Option<SocketAddr> {
    let own = svc.replica_status();
    let mut candidates = vec![Candidate {
        node_id: own.node_id,
        last_applied: own.last_applied,
        epoch: own.epoch,
        leading: own.leading,
    }];
    let mut addrs: Vec<Option<SocketAddr>> = vec![None];
    for peer in &cfg.peers {
        let status =
            Client::connect_timeout(peer, PROBE_TIMEOUT).and_then(|mut c| c.replica_status());
        if let Ok(s) = status {
            candidates.push(Candidate {
                node_id: s.node_id,
                last_applied: s.last_applied,
                epoch: s.epoch,
                leading: s.leading,
            });
            addrs.push(Some(*peer));
        }
    }
    let winner = elect(&candidates)?;
    let max_epoch = candidates.iter().map(|c| c.epoch).max().unwrap_or(0);
    match addrs[winner] {
        None => {
            // This node wins: fence everything the electorate has seen
            // and take over. Deposed ex-primaries die on the first ack
            // they receive at the new epoch.
            svc.fence_epoch(max_epoch + 1);
            svc.set_leading(true);
            svc.set_primary_hint(&cfg.advertise);
            eprintln!(
                "follower: node {} elected primary at epoch {}",
                own.node_id,
                max_epoch + 1
            );
            None
        }
        Some(addr) => {
            // A peer wins (or already leads): adopt its fence level and
            // re-parent. The sequence cursor is kept — the winner's
            // stream numbering is continuous enough to resume from, and
            // anti-entropy heals any skew exactly.
            svc.fence_epoch(candidates[winner].epoch);
            svc.set_primary_hint(&addr.to_string());
            eprintln!("follower: node {} re-parenting onto {addr}", own.node_id);
            Some(addr)
        }
    }
}

fn stream_loop(
    svc: &PeelService,
    primary: &Mutex<SocketAddr>,
    cfg: &FollowerConfig,
    signal: &StopSignal,
    last_applied: &AtomicU64,
) {
    let mut failures = 0u32;
    let mut rng = svc.node_id() ^ 0x5ee0_5ee0_5ee0_5ee0;
    while !signal.stopped() {
        // A leader streams *out* through its server; this inbound loop
        // idles until something (a higher-epoch hello or ack) deposes it.
        if svc.is_leading() {
            failures = 0;
            if signal.sleep(cfg.max_reconnect_backoff) {
                return;
            }
            continue;
        }
        let parent = *plock(primary);
        let attempt = (|| -> Result<(), WireError> {
            let mut client = Client::connect(parent)?;
            let hello = client.hello()?;
            if !hello_compatible(svc, &hello) {
                return Err(WireError::Remote(format!(
                    "primary sharding {:?} is incompatible with this follower",
                    hello
                )));
            }
            // A primary at a higher epoch is legitimate (it won an
            // election we didn't see); adopt its fence before streaming.
            svc.fence_epoch(hello.epoch);
            let mut transport = client.subscribe(last_applied.load(Relaxed))?;
            signal.register(SLOT_STREAM, transport.peer().ok());
            failures = 0;
            let r = apply_replication_stream(&mut transport, svc, &signal.stop, last_applied);
            signal.register(SLOT_STREAM, None);
            r.map(|_| ())
        })();
        if signal.stopped() {
            return;
        }
        if let Err(e) = attempt {
            // Incompatible primaries never become compatible; without
            // peers to fail over to, stop trying rather than spin.
            if matches!(e, WireError::Remote(_)) && cfg.peers.is_empty() {
                eprintln!("follower: giving up on replication stream: {e}");
                return;
            }
        }
        failures = failures.saturating_add(1);
        if failures >= cfg.failover_threshold && !cfg.peers.is_empty() {
            if let Some(new_parent) = run_election(svc, cfg) {
                *plock(primary) = new_parent;
            }
            failures = 0;
            // Leader or re-parented: next iteration acts on the new role
            // with no extra backoff — failover latency is the point.
            continue;
        }
        // Connection ended or failed: back off, then resubscribe from
        // the last applied sequence number.
        if signal.sleep(backoff_delay(cfg, failures, &mut rng)) {
            return;
        }
    }
}

fn repair_loop(
    svc: &Arc<PeelService>,
    primary: &Mutex<SocketAddr>,
    cfg: &FollowerConfig,
    signal: &StopSignal,
    last_applied: &AtomicU64,
) {
    let mut conn: Option<(SocketAddr, Client)> = None;
    // Exponential backoff for failed generation adoptions: each failed
    // local reshard is a full snapshot + decode pass, so on repeated
    // failure (e.g. local contents past the decode budget) retry every
    // 2, 4, … 32 rounds instead of burning a pass per tick.
    let mut adopt_failures = 0u32;
    let mut adopt_skip = 0u32;
    loop {
        if signal.sleep(cfg.anti_entropy_interval) {
            return;
        }
        // A leader is the reconciliation *target*, not a repairer.
        if svc.is_leading() {
            if conn.take().is_some() {
                signal.register(SLOT_REPAIR, None);
            }
            continue;
        }
        let parent = *plock(primary);
        // An election moved the parent: repairs against the old one
        // would re-diverge us from the new stream source.
        if conn.as_ref().is_some_and(|(addr, _)| *addr != parent) {
            conn = None;
            signal.register(SLOT_REPAIR, None);
        }
        if conn.is_none() {
            match Client::connect(parent) {
                Ok(mut c) => match c.set_io_timeout(cfg.io_timeout).and_then(|()| c.hello()) {
                    // Same refusal as the stream loop: repairs computed
                    // against an incompatible sharding would insert
                    // garbage forever instead of converging.
                    Ok(h) if hello_compatible(svc, &h) => {
                        signal.register(SLOT_REPAIR, c.raw_stream().ok());
                        conn = Some((parent, c));
                    }
                    Ok(_) => {
                        eprintln!("follower: anti-entropy: incompatible primary {parent}");
                        continue;
                    }
                    Err(_) => continue,
                },
                Err(_) => continue,
            }
        }
        let Some((addr, mut client)) = conn.take() else {
            continue;
        };
        // The primary's shard count is live: re-fetch the handshake each
        // round and reshard the local service to match before digesting
        // (per-generation anti-entropy — digests built at the wrong
        // count would not be subtraction-compatible).
        match client.refresh_hello() {
            Ok(h) if svc.shards() != h.shards => {
                // Anti-entropy at a mismatched count would not be
                // subtraction-compatible (and healing across routings
                // could delete keys that merely moved), so repairs wait
                // until adoption succeeds.
                conn = Some((addr, client));
                if adopt_skip > 0 {
                    adopt_skip -= 1;
                } else if adopt_generation(svc, h.shards) {
                    adopt_failures = 0;
                } else {
                    adopt_failures += 1;
                    adopt_skip = 1u32 << adopt_failures.min(5);
                }
                continue;
            }
            Ok(h) => {
                adopt_failures = 0;
                adopt_skip = 0;
                svc.fence_epoch(h.epoch);
            }
            Err(e) => {
                log_peer_timeout("anti-entropy handshake", &e);
                signal.register(SLOT_REPAIR, None);
                continue;
            }
        }
        let seq_before = last_applied.load(Relaxed);
        match collect_repairs(svc, &mut client) {
            Ok(diffs) => {
                // Every diff is tagged with the primary's replication
                // sequence number at snapshot time (`as_of_seq`), which
                // bounds what the diff can reflect. If our stream cursor
                // has already reached that bound, nothing in the diff is
                // still in flight — apply unconditionally. Only when the
                // stream is *actively advancing* (so the missing batches
                // really are about to arrive) and still short of the
                // bound do we defer, and the next round re-derives an
                // exact bound rather than counting heuristic deferrals.
                let as_of = diffs.iter().map(|d| d.as_of_seq).max().unwrap_or(0);
                let caught_up = last_applied.load(Relaxed) >= as_of;
                let advanced = last_applied.load(Relaxed) != seq_before;
                if caught_up || !advanced {
                    let healed = apply_repairs(svc, &diffs);
                    let m = svc.metrics_handle();
                    m.anti_entropy_rounds.fetch_add(1, Relaxed);
                    m.anti_entropy_keys.fetch_add(healed, Relaxed);
                }
                conn = Some((addr, client));
            }
            Err(e) => {
                // Drop the connection; next tick reconnects.
                log_peer_timeout("anti-entropy round", &e);
                signal.register(SLOT_REPAIR, None);
            }
        }
    }
}

/// Surface a socket-deadline expiry as its service-level meaning — a
/// half-dead peer — rather than a generic transport error. Other
/// errors stay quiet here; the repair loop retries them next tick.
fn log_peer_timeout(what: &str, e: &WireError) {
    if matches!(e, WireError::TimedOut) {
        eprintln!(
            "follower: {what}: {}",
            crate::service::ServiceError::PeerTimedOut
        );
    }
}

/// The reconcile half of an anti-entropy pass: digest every local shard
/// against the primary and return the decoded per-shard differences
/// without applying anything.
pub fn collect_repairs(
    svc: &PeelService,
    client: &mut Client,
) -> Result<Vec<crate::wire::ShardDiff>, WireError> {
    (0..svc.shards())
        .map(|shard| {
            let (_epoch, snap) = svc
                .snapshot_shard(shard)
                .expect("shard index from own config");
            client.reconcile_shard(shard, &snap)
        })
        .collect()
}

/// The apply half: `only_local` = keys the *primary* has that we lack
/// (insert them); `only_remote` = keys only we have (delete them).
/// Repairs are applied even when a round decoded incompletely — peeled
/// keys are always genuine, so partial repair still shrinks the
/// divergence for the next round. Returns the number of keys healed.
pub fn apply_repairs(svc: &PeelService, diffs: &[crate::wire::ShardDiff]) -> u64 {
    let mut healed = 0u64;
    for diff in diffs {
        healed += (diff.only_local.len() + diff.only_remote.len()) as u64;
        if !diff.only_local.is_empty() {
            svc.insert(&diff.only_local);
        }
        if !diff.only_remote.is_empty() {
            svc.delete(&diff.only_remote);
        }
    }
    svc.flush();
    healed
}

/// One full anti-entropy pass: reconcile every local shard against the
/// primary and apply the decoded symmetric difference locally. Returns
/// the number of keys healed.
pub fn anti_entropy_round(svc: &PeelService, client: &mut Client) -> Result<u64, WireError> {
    let span = tracing::span("anti_entropy", &[("shards", svc.shards().into())]);
    let _entered = span.enter();
    let diffs = collect_repairs(svc, client)?;
    let healed = apply_repairs(svc, &diffs);
    if tracing::enabled() {
        tracing::event("anti_entropy_done", &[("healed", healed.into())]);
    }
    Ok(healed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(node_id: u64, last_applied: u64, epoch: u64, leading: bool) -> Candidate {
        Candidate {
            node_id,
            last_applied,
            epoch,
            leading,
        }
    }

    #[test]
    fn elect_prefers_most_caught_up_then_lowest_id() {
        let c = [cand(3, 10, 1, false), cand(1, 9, 1, false)];
        assert_eq!(elect(&c), Some(0));
        let tied = [cand(3, 10, 1, false), cand(1, 10, 1, false)];
        assert_eq!(elect(&tied), Some(1));
        assert_eq!(elect(&[]), None);
    }

    #[test]
    fn elect_joins_an_existing_leader_at_the_top_epoch() {
        // A node already leading at the max epoch wins even when another
        // candidate is further ahead on the old stream.
        let c = [cand(0, 99, 1, false), cand(7, 10, 2, true)];
        assert_eq!(elect(&c), Some(1));
        // ... but a *stale*-epoch leader (a deposed ex-primary that came
        // back) does not.
        let c = [cand(0, 99, 3, false), cand(7, 100, 2, true)];
        assert_eq!(elect(&c), Some(0));
    }

    #[test]
    fn elect_is_deterministic_across_probe_orders() {
        let a = [
            cand(2, 5, 1, false),
            cand(4, 5, 1, false),
            cand(1, 4, 1, false),
        ];
        let b = [
            cand(4, 5, 1, false),
            cand(1, 4, 1, false),
            cand(2, 5, 1, false),
        ];
        let wa = a[elect(&a).unwrap()];
        let wb = b[elect(&b).unwrap()];
        assert_eq!(wa, wb);
        assert_eq!(wa.node_id, 2);
    }
}

//! The follower driver: keeps a local [`PeelService`] converged with a
//! primary server.
//!
//! Two background threads per follower:
//!
//! * **Stream thread** (fast path): connects to the primary, sends
//!   `Subscribe`, and applies the replicated batch stream through
//!   [`apply_replication_stream`]. On any connection failure it backs
//!   off and reconnects, resuming from the highest applied sequence
//!   number so nothing is double-applied.
//! * **Anti-entropy thread** (repair path): every
//!   [`FollowerConfig::anti_entropy_interval`], snapshots each local
//!   shard, sends it to the primary as a `Reconcile` digest, and applies
//!   the decoded symmetric difference — inserting keys only the primary
//!   has, deleting keys only this follower has. This provably converges
//!   the follower to the primary no matter what the stream dropped:
//!   each round's repair is exactly the per-shard symmetric difference
//!   the IBLT subtraction peels out, and repairs are applied even when a
//!   round decodes incompletely (peeled keys are always genuine), so
//!   successive rounds shrink any divergence to zero.
//!
//! The driver refuses a primary whose fixed `Hello` parameters (router
//! seed, base IBLT config) don't match the local service — shard digests
//! would not be subtraction-compatible. The shard *count* is live: when
//! the primary reshards, the anti-entropy loop notices the changed
//! handshake and reshards the local service to the same generation
//! before reconciling (the batch stream needs no adjustment — replicated
//! ops carry keys and are re-routed by whichever generation the
//! follower serves).

use std::net::{Shutdown as SockShutdown, SocketAddr, TcpStream};
// ordering: the follower's bare atomics are Relaxed. `stop` publishes no
// data (raise() follows the store with the signal-lock acquire/release
// that wakes sleepers, and every loop re-polls it), and `last_applied` is
// a resume cursor: its only cross-thread reader is the repair loop's
// progress probe, which tolerates staleness by design — it merely defers
// a repair round. Checked by the loom models in tests/loom_lock.rs.
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::sync::{AtomicBool, AtomicU64, Condvar, Mutex};

use crate::client::Client;
use crate::lock::{plock, pwait_timeout};
use crate::replication::apply_replication_stream;
use crate::service::PeelService;
use crate::wire::WireError;

/// Tunables for a [`Follower`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowerConfig {
    /// How often the anti-entropy loop reconciles against the primary.
    pub anti_entropy_interval: Duration,
    /// Delay between reconnection attempts after a connection failure.
    pub reconnect_backoff: Duration,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            anti_entropy_interval: Duration::from_millis(200),
            reconnect_backoff: Duration::from_millis(100),
        }
    }
}

struct StopSignal {
    stop: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
    /// Socket clones for the stream and anti-entropy connections, so
    /// `stop` can unblock threads parked in blocking reads.
    socks: [Mutex<Option<TcpStream>>; 2],
}

impl StopSignal {
    fn stopped(&self) -> bool {
        self.stop.load(Relaxed)
    }

    /// Sleep up to `dur`, returning early (true) if stop was raised.
    fn sleep(&self, dur: Duration) -> bool {
        let guard = plock(&self.lock);
        if self.stopped() {
            return true;
        }
        let _ = pwait_timeout(&self.cv, guard, dur);
        self.stopped()
    }

    fn register(&self, slot: usize, sock: Option<TcpStream>) {
        *plock(&self.socks[slot]) = sock;
    }

    fn raise(&self) {
        self.stop.store(true, Relaxed);
        let _guard = plock(&self.lock);
        self.cv.notify_all();
        drop(_guard);
        for slot in &self.socks {
            if let Some(s) = plock(slot).take() {
                let _ = s.shutdown(SockShutdown::Both);
            }
        }
    }
}

const SLOT_STREAM: usize = 0;
const SLOT_REPAIR: usize = 1;

/// A running primary→follower replication driver. Stops (and joins its
/// threads) on [`Follower::stop`] or drop.
pub struct Follower {
    signal: Arc<StopSignal>,
    threads: Vec<JoinHandle<()>>,
    last_applied: Arc<AtomicU64>,
}

impl Follower {
    /// Start replicating `primary` into `svc`. Connections are
    /// established (and re-established) in the background, so the
    /// primary does not need to be up yet.
    pub fn start(svc: Arc<PeelService>, primary: SocketAddr, cfg: FollowerConfig) -> Follower {
        let signal = Arc::new(StopSignal {
            stop: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            socks: [Mutex::new(None), Mutex::new(None)],
        });
        let last_applied = Arc::new(AtomicU64::new(0));
        let stream_thread = {
            let svc = Arc::clone(&svc);
            let signal = Arc::clone(&signal);
            let last = Arc::clone(&last_applied);
            std::thread::spawn(move || stream_loop(&svc, primary, &cfg, &signal, &last))
        };
        let repair_thread = {
            let signal = Arc::clone(&signal);
            let last = Arc::clone(&last_applied);
            std::thread::spawn(move || repair_loop(&svc, primary, &cfg, &signal, &last))
        };
        Follower {
            signal,
            threads: vec![stream_thread, repair_thread],
            last_applied,
        }
    }

    /// Highest replicated sequence number applied via the stream.
    pub fn last_applied_seq(&self) -> u64 {
        self.last_applied.load(Relaxed)
    }

    /// Stop both loops and join them. Idempotent.
    pub fn stop(&mut self) {
        self.signal.raise();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop();
    }
}

/// True iff the primary's advertised keyspace parameters are compatible
/// with the local service's. The *shard count* is deliberately not
/// compared: it is a live property (the primary can reshard at any
/// time), the replicated batch stream is shard-agnostic (ops carry keys
/// and are re-routed by whichever generation the follower serves), and
/// the anti-entropy loop adopts a changed count by resharding the local
/// service before reconciling. The routing seed and base IBLT geometry,
/// by contrast, are fixed at bind time on both ends — a mismatch there
/// never heals.
fn hello_compatible(svc: &PeelService, primary: &crate::wire::HelloInfo) -> bool {
    let local = svc.hello();
    local.router_seed == primary.router_seed && local.base_config == primary.base_config
}

/// Adopt the primary's shard count if it differs from the local one:
/// reshard the local service through the same begin/verify/commit
/// machinery the primary ran. Returns false if adoption was needed and
/// failed (the caller should retry next round).
fn adopt_generation(svc: &PeelService, primary_shards: u32) -> bool {
    if svc.shards() == primary_shards {
        return true;
    }
    match svc.reshard(primary_shards) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("follower: cannot adopt primary's {primary_shards}-shard generation: {e}");
            false
        }
    }
}

fn stream_loop(
    svc: &PeelService,
    primary: SocketAddr,
    cfg: &FollowerConfig,
    signal: &StopSignal,
    last_applied: &AtomicU64,
) {
    while !signal.stopped() {
        let attempt = (|| -> Result<(), WireError> {
            let mut client = Client::connect(primary)?;
            let hello = client.hello()?;
            if !hello_compatible(svc, &hello) {
                return Err(WireError::Remote(format!(
                    "primary sharding {:?} is incompatible with this follower",
                    hello
                )));
            }
            let mut transport = client.subscribe(last_applied.load(Relaxed))?;
            signal.register(SLOT_STREAM, transport.peer().ok());
            let r = apply_replication_stream(&mut transport, svc, &signal.stop, last_applied);
            signal.register(SLOT_STREAM, None);
            r.map(|_| ())
        })();
        if signal.stopped() {
            return;
        }
        if let Err(e) = attempt {
            // Incompatible primaries never become compatible; stop
            // trying rather than spin forever.
            if matches!(e, WireError::Remote(_)) {
                eprintln!("follower: giving up on replication stream: {e}");
                return;
            }
        }
        // Connection ended or failed: back off, then resubscribe from
        // the last applied sequence number.
        if signal.sleep(cfg.reconnect_backoff) {
            return;
        }
    }
}

/// Consecutive rounds the repair loop may defer to an actively
/// advancing stream before repairing anyway. Deferral avoids the
/// duplicate churn of repairing keys the stream is about to deliver;
/// the bound keeps sustained primary traffic from starving repair.
const MAX_REPAIR_DEFERRALS: u32 = 3;

fn repair_loop(
    svc: &Arc<PeelService>,
    primary: SocketAddr,
    cfg: &FollowerConfig,
    signal: &StopSignal,
    last_applied: &AtomicU64,
) {
    let mut conn: Option<Client> = None;
    let mut deferrals = 0u32;
    // Exponential backoff for failed generation adoptions: each failed
    // local reshard is a full snapshot + decode pass, so on repeated
    // failure (e.g. local contents past the decode budget) retry every
    // 2, 4, … 32 rounds instead of burning a pass per tick.
    let mut adopt_failures = 0u32;
    let mut adopt_skip = 0u32;
    loop {
        if signal.sleep(cfg.anti_entropy_interval) {
            return;
        }
        if conn.is_none() {
            match Client::connect(primary) {
                Ok(mut c) => match c.hello() {
                    // Same refusal as the stream loop: repairs computed
                    // against an incompatible sharding would insert
                    // garbage forever instead of converging.
                    Ok(h) if hello_compatible(svc, &h) => {
                        signal.register(SLOT_REPAIR, c.raw_stream().ok());
                        conn = Some(c);
                    }
                    Ok(_) => {
                        eprintln!("follower: giving up on anti-entropy: incompatible primary");
                        return;
                    }
                    Err(_) => continue,
                },
                Err(_) => continue,
            }
        }
        let Some(mut client) = conn.take() else {
            continue;
        };
        // The primary's shard count is live: re-fetch the handshake each
        // round and reshard the local service to match before digesting
        // (per-generation anti-entropy — digests built at the wrong
        // count would not be subtraction-compatible).
        match client.refresh_hello() {
            Ok(h) if svc.shards() != h.shards => {
                // Anti-entropy at a mismatched count would not be
                // subtraction-compatible (and healing across routings
                // could delete keys that merely moved), so repairs wait
                // until adoption succeeds.
                conn = Some(client);
                if adopt_skip > 0 {
                    adopt_skip -= 1;
                } else if adopt_generation(svc, h.shards) {
                    adopt_failures = 0;
                } else {
                    adopt_failures += 1;
                    adopt_skip = 1u32 << adopt_failures.min(5);
                }
                continue;
            }
            Ok(_) => {
                adopt_failures = 0;
                adopt_skip = 0;
            }
            Err(_) => {
                signal.register(SLOT_REPAIR, None);
                continue;
            }
        }
        let seq_before = last_applied.load(Relaxed);
        match collect_repairs(svc, &mut client) {
            Ok(diffs) => {
                // If the stream applied batches while we reconciled, the
                // diffs are a moving target: much of `only_local` is
                // already in flight, and applying it would just create
                // duplicate copies for later rounds to delete. Defer —
                // but boundedly, so repair still happens under
                // continuous primary traffic.
                let advanced = last_applied.load(Relaxed) != seq_before;
                if advanced && deferrals < MAX_REPAIR_DEFERRALS {
                    deferrals += 1;
                } else {
                    deferrals = 0;
                    let healed = apply_repairs(svc, &diffs);
                    let m = svc.metrics_handle();
                    m.anti_entropy_rounds.fetch_add(1, Relaxed);
                    m.anti_entropy_keys.fetch_add(healed, Relaxed);
                }
                conn = Some(client);
            }
            Err(_) => {
                // Drop the connection; next tick reconnects.
                signal.register(SLOT_REPAIR, None);
            }
        }
    }
}

/// The reconcile half of an anti-entropy pass: digest every local shard
/// against the primary and return the decoded per-shard differences
/// without applying anything.
pub fn collect_repairs(
    svc: &PeelService,
    client: &mut Client,
) -> Result<Vec<crate::wire::ShardDiff>, WireError> {
    (0..svc.shards())
        .map(|shard| {
            let (_epoch, snap) = svc
                .snapshot_shard(shard)
                .expect("shard index from own config");
            client.reconcile_shard(shard, &snap)
        })
        .collect()
}

/// The apply half: `only_local` = keys the *primary* has that we lack
/// (insert them); `only_remote` = keys only we have (delete them).
/// Repairs are applied even when a round decoded incompletely — peeled
/// keys are always genuine, so partial repair still shrinks the
/// divergence for the next round. Returns the number of keys healed.
pub fn apply_repairs(svc: &PeelService, diffs: &[crate::wire::ShardDiff]) -> u64 {
    let mut healed = 0u64;
    for diff in diffs {
        healed += (diff.only_local.len() + diff.only_remote.len()) as u64;
        if !diff.only_local.is_empty() {
            svc.insert(&diff.only_local);
        }
        if !diff.only_remote.is_empty() {
            svc.delete(&diff.only_remote);
        }
    }
    svc.flush();
    healed
}

/// One full anti-entropy pass: reconcile every local shard against the
/// primary and apply the decoded symmetric difference locally. Returns
/// the number of keys healed.
pub fn anti_entropy_round(svc: &PeelService, client: &mut Client) -> Result<u64, WireError> {
    let span = tracing::span("anti_entropy", &[("shards", svc.shards().into())]);
    let _entered = span.enter();
    let diffs = collect_repairs(svc, client)?;
    let healed = apply_repairs(svc, &diffs);
    if tracing::enabled() {
        tracing::event("anti_entropy_done", &[("healed", healed.into())]);
    }
    Ok(healed)
}

//! Blocking TCP server over `std::net` (no async runtime — crates.io is
//! unavailable; see ROADMAP for the tokio follow-on).
//!
//! One accept thread plus one handler thread per connection. Handlers
//! translate wire [`Request`]s into [`PeelService`] calls; every
//! service-level failure becomes a protocol `Error` response, never a
//! dropped connection. A `Shutdown` request stops the accept loop, closes
//! the open connections, and unblocks [`Server::wait`].

use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::service::{PeelService, ServiceConfig};
use crate::wire::{decode_request, encode_response, read_frame, write_frame, Request, Response};

struct Shared {
    service: PeelService,
    stopping: AtomicBool,
    stop_lock: Mutex<bool>,
    stop_cv: Condvar,
    /// One stream clone per *live* connection (keyed by connection id;
    /// handlers remove their entry on exit so closed sockets don't leak
    /// fds), so shutdown can unblock handler threads parked in
    /// `read_frame`.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

impl Shared {
    fn signal_stop(&self) {
        self.stopping.store(true, SeqCst);
        *self.stop_lock.lock().unwrap() = true;
        self.stop_cv.notify_all();
        for (_, c) in self.conns.lock().unwrap().drain() {
            let _ = c.shutdown(SockShutdown::Both);
        }
    }
}

/// A listening reconciliation server.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), start
    /// the service worker pool, and begin accepting connections.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: PeelService::start(cfg),
            stopping: AtomicBool::new(false),
            stop_lock: Mutex::new(false),
            stop_cv: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
        });
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || accept_loop(&listener, &shared, &handlers))
        };
        Ok(Server {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service (for in-process inspection in tests and
    /// tools).
    pub fn service(&self) -> &PeelService {
        &self.shared.service
    }

    /// Number of currently live client connections (closed connections
    /// are removed by their handler on exit).
    pub fn live_connections(&self) -> usize {
        self.shared.conns.lock().unwrap().len()
    }

    /// Block until a client sends `Shutdown` (or [`Server::shutdown`] is
    /// called from another thread via a clone of the shared state).
    pub fn wait(&self) {
        let mut stopped = self.shared.stop_lock.lock().unwrap();
        while !*stopped {
            stopped = self.shared.stop_cv.wait(stopped).unwrap();
        }
    }

    /// Stop accepting, close open connections, join all threads, and shut
    /// the service down (flushing pending batches). Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.signal_stop();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handlers: Vec<_> = self.handlers.lock().unwrap().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
        self.shared.service.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if shared.stopping.load(SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_id = next_id;
        next_id += 1;
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(conn_id, clone);
        }
        let shared_for_handler = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            handle_connection(stream, &shared_for_handler);
            shared_for_handler.conns.lock().unwrap().remove(&conn_id);
        });
        // Reap finished handlers so a long-running server doesn't grow a
        // JoinHandle per past connection.
        let mut slots = handlers.lock().unwrap();
        let mut live = Vec::with_capacity(slots.len() + 1);
        for h in slots.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        live.push(handle);
        *slots = live;
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean close, transport error, or shutdown-induced reset:
            // the connection is done either way.
            Ok(None) | Err(_) => return,
        };
        let (resp, stop_after) = match decode_request(&payload) {
            Err(e) => (Response::Error(format!("bad request: {e}")), false),
            Ok(req) => respond(&shared.service, req),
        };
        if write_frame(&mut writer, &encode_response(&resp)).is_err() {
            return;
        }
        if stop_after {
            shared.signal_stop();
            return;
        }
    }
}

/// Map one request to one response; the bool asks the server to stop.
fn respond(service: &PeelService, req: Request) -> (Response, bool) {
    let resp = match req {
        Request::Hello => Response::Hello(service.hello()),
        Request::Insert(keys) => Response::Ok {
            accepted: service.insert(&keys),
        },
        Request::Delete(keys) => Response::Ok {
            accepted: service.delete(&keys),
        },
        Request::Flush => {
            service.flush();
            Response::Ok { accepted: 0 }
        }
        Request::Digest { shard } => match service.snapshot_shard(shard) {
            Ok((epoch, iblt)) => Response::Digest { epoch, iblt },
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Reconcile { shard, digest } => match service.reconcile_shard(shard, &digest) {
            Ok(diff) => Response::Diff(diff),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Stats => Response::Stats(service.metrics()),
        Request::Shutdown => return (Response::Ok { accepted: 0 }, true),
    };
    (resp, false)
}

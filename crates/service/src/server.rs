//! TCP servers over `std::net` (no async runtime — crates.io is
//! unavailable; see ROADMAP for the tokio follow-on).
//!
//! Two implementations share one dispatch ([`handle_request`]):
//!
//! - [`Server`] — the default: a single-threaded readiness loop (see
//!   [`crate::reactor`]) multiplexing every connection over the
//!   vendored mio-style poller. Connections are capped, requests
//!   pipeline, idle sockets are reaped, and `shutdown()` wakes the
//!   loop through the poller's waker, so it returns promptly even when
//!   no connection ever arrives.
//! - [`BlockingServer`] — the original one-thread-per-connection
//!   design, retained for A/B benchmarking (`peel-server --blocking`)
//!   and as the simplest possible reference implementation. Its accept
//!   loop backs off on persistent accept errors instead of spinning.
//!
//! Both translate wire [`Request`]s into [`PeelService`] calls; every
//! service-level failure becomes a protocol `Error` response, never a
//! dropped connection. A `Subscribe` request converts its connection
//! into a replication stream (reactor: a [`crate::replication::WindowedSender`]
//! pumped by the loop; blocking: the handler thread becomes the
//! sender). A `Shutdown` request stops the server and unblocks
//! [`Server::wait`].
//!
//! Shutdown paths use poison-tolerant locking (`parking_lot` for plain
//! registries, [`crate::lock`] recovery for the std condvar pair) so a
//! panicking handler can never cascade into a poisoned-shutdown panic.

use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
// ordering: the stopping flag is Relaxed — it publishes no data of its own
// (the stop_lock mutex write in signal_stop carries the wait()/shutdown
// happens-before), and its readers (the accept/reactor loops) re-check on
// every wakeup, so a stale read costs one extra accepted connection, not
// correctness. It was SeqCst before the PR-6 ordering audit; nothing needed
// the total order. Connection counters are Relaxed monotonic statistics.
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::sync::{AtomicBool, Condvar, Mutex as StdMutex};

use crate::lock::{plock, pwait};
use crate::reactor::{self, AcceptPacer, ReactorConfig};
use crate::replication::{stream_to_follower, StreamConfig, StreamEnd};
use crate::service::{PeelService, ServiceConfig};
use crate::transport::FramedTcp;
use crate::wire::{decode_request, encode_response, read_frame, write_frame, Request, Response};

pub(crate) struct Shared {
    pub(crate) service: Arc<PeelService>,
    pub(crate) stopping: AtomicBool,
    // The stop flag + condvar stay on std primitives (the parking_lot
    // shim has no condvar); waits recover from poisoning via
    // `crate::lock`.
    pub(crate) stop_lock: StdMutex<bool>,
    pub(crate) stop_cv: Condvar,
    /// One stream clone per *live* connection (keyed by connection id;
    /// handlers remove their entry on exit so closed sockets don't leak
    /// fds), so shutdown can unblock handler threads parked in
    /// `read_frame`. Used by [`BlockingServer`] only; the reactor owns
    /// its connections directly.
    pub(crate) conns: Mutex<HashMap<u64, TcpStream>>,
    /// The reactor's waker, when this `Shared` fronts a reactor server:
    /// `signal_stop` rings it so the loop observes `stopping` without
    /// waiting for socket traffic — the fix for the shutdown stall.
    pub(crate) waker: Mutex<Option<Arc<mio::Waker>>>,
}

impl Shared {
    fn new(service: Arc<PeelService>) -> Shared {
        Shared {
            service,
            stopping: AtomicBool::new(false),
            stop_lock: StdMutex::new(false),
            stop_cv: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            waker: Mutex::new(None),
        }
    }

    pub(crate) fn signal_stop(&self) {
        self.stopping.store(true, Relaxed);
        *plock(&self.stop_lock) = true;
        self.stop_cv.notify_all();
        // Wake replication senders parked on their subscriptions before
        // tearing the sockets down under them.
        self.service.replication().close();
        // Ring the reactor so it sees `stopping` promptly even with no
        // inbound traffic.
        if let Some(w) = self.waker.lock().as_ref() {
            let _ = w.wake();
        }
        for (_, c) in self.conns.lock().drain() {
            let _ = c.shutdown(SockShutdown::Both);
        }
    }
}

/// A listening reconciliation server backed by the readiness loop in
/// [`crate::reactor`]: every connection is served from one thread.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    reactor_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), start
    /// the service worker pool, and begin accepting connections.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServiceConfig) -> std::io::Result<Server> {
        Self::bind_with(addr, Arc::new(PeelService::start(cfg)))
    }

    /// Serve an existing service — the follower deployment shape, where
    /// the same [`PeelService`] is shared between this server (read
    /// traffic) and a [`crate::follower::Follower`] driver (replication).
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        service: Arc<PeelService>,
    ) -> std::io::Result<Server> {
        Self::bind_with_cfg(addr, service, ReactorConfig::default())
    }

    /// [`Server::bind_with`] plus reactor tuning (connection cap, idle
    /// timeout, accept backoff, write highwater).
    pub fn bind_with_cfg<A: ToSocketAddrs>(
        addr: A,
        service: Arc<PeelService>,
        rcfg: ReactorConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poll = mio::Poll::new()?;
        // Waker before thread spawn: a shutdown() issued before the
        // loop is ever scheduled must still wake it.
        let waker = Arc::new(mio::Waker::new(poll.registry(), reactor::WAKER)?);
        let shared = Arc::new(Shared::new(service));
        *shared.waker.lock() = Some(Arc::clone(&waker));
        // New replication batches ring the same waker, so the loop
        // pumps followers without a sender thread each.
        let notify = Arc::clone(&waker);
        shared.service.replication().add_notifier(Arc::new(move || {
            let _ = notify.wake();
        }));
        let reactor_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reactor::run(listener, shared, poll, rcfg))
        };
        Ok(Server {
            shared,
            addr,
            reactor_thread: Some(reactor_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service (for in-process inspection in tests and
    /// tools).
    pub fn service(&self) -> &PeelService {
        &self.shared.service
    }

    /// A shareable handle to the underlying service.
    pub fn service_arc(&self) -> Arc<PeelService> {
        Arc::clone(&self.shared.service)
    }

    /// Number of currently live client connections (the
    /// `peel_connections_live` gauge).
    pub fn live_connections(&self) -> usize {
        self.shared
            .service
            .metrics_handle()
            .conns_live
            .load(Relaxed) as usize
    }

    /// Block until a client sends `Shutdown` (or [`Server::shutdown`] is
    /// called from another thread via a clone of the shared state).
    pub fn wait(&self) {
        let mut stopped = plock(&self.shared.stop_lock);
        while !*stopped {
            stopped = pwait(&self.shared.stop_cv, stopped);
        }
    }

    /// Stop accepting, flush-and-close open connections, join the loop
    /// thread, and shut the service down (flushing pending batches).
    /// Idempotent, tolerant of poisoned locks, and prompt: the waker
    /// interrupts the loop's poll, so no inbound connection is needed.
    pub fn shutdown(&mut self) {
        self.shared.signal_stop();
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
        self.shared.service.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The original one-thread-per-connection server: one accept thread
/// plus one handler thread per connection. Retained for A/B
/// benchmarking against the reactor and as the reference
/// implementation; new deployments should prefer [`Server`].
pub struct BlockingServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl BlockingServer {
    /// Bind `addr`, start the service worker pool, and begin accepting.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServiceConfig) -> std::io::Result<BlockingServer> {
        Self::bind_with(addr, Arc::new(PeelService::start(cfg)))
    }

    /// Serve an existing service.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        service: Arc<PeelService>,
    ) -> std::io::Result<BlockingServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(service));
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::spawn(move || accept_loop(&listener, &shared, &handlers))
        };
        Ok(BlockingServer {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service.
    pub fn service(&self) -> &PeelService {
        &self.shared.service
    }

    /// A shareable handle to the underlying service.
    pub fn service_arc(&self) -> Arc<PeelService> {
        Arc::clone(&self.shared.service)
    }

    /// Number of currently live client connections.
    pub fn live_connections(&self) -> usize {
        self.shared.conns.lock().len()
    }

    /// Block until a client sends `Shutdown` or [`BlockingServer::shutdown`]
    /// runs.
    pub fn wait(&self) {
        let mut stopped = plock(&self.shared.stop_lock);
        while !*stopped {
            stopped = pwait(&self.shared.stop_cv, stopped);
        }
    }

    /// Stop accepting, close open connections, join all threads, and
    /// shut the service down. Idempotent and poison-tolerant.
    pub fn shutdown(&mut self) {
        self.shared.signal_stop();
        // Unblock the accept loop with a throwaway connection (the
        // blocking listener has no waker; the reactor server does).
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handlers: Vec<_> = self.handlers.lock().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
        self.shared.service.shutdown();
    }
}

impl Drop for BlockingServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id = 0u64;
    let mut pacer = AcceptPacer::new(Duration::from_millis(10), Duration::from_secs(1));
    loop {
        let stream = listener.accept();
        if shared.stopping.load(Relaxed) {
            break;
        }
        let stream = match stream {
            Ok((s, _peer)) => {
                pacer.on_success();
                s
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                // Transient, per-connection: not an accept-path
                // failure.
                continue;
            }
            Err(_) => {
                // Persistent accept failure (EMFILE/ENFILE and
                // friends): back off instead of spinning hot — the old
                // silent `continue` here retried instantly, pinning a
                // core exactly when the process was already in
                // trouble. Sleep in stop-aware slices so shutdown
                // stays prompt during the backoff.
                shared
                    .service
                    .metrics_handle()
                    .accept_errors
                    .fetch_add(1, Relaxed);
                let deadline = Instant::now() + pacer.on_error(Instant::now());
                while !shared.stopping.load(Relaxed) {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
                }
                continue;
            }
        };
        // The replication stream is ack-paced frame-by-frame; without
        // nodelay, Nagle + delayed ACKs turn every batch into a ~40 ms
        // stall.
        let _ = stream.set_nodelay(true);
        let conn_id = next_id;
        next_id += 1;
        let metrics = shared.service.metrics_handle();
        metrics.conns_accepted.fetch_add(1, Relaxed);
        metrics.conns_live.fetch_add(1, Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(conn_id, clone);
        }
        let shared_for_handler = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            handle_connection(stream, &shared_for_handler);
            shared_for_handler.conns.lock().remove(&conn_id);
            shared_for_handler
                .service
                .metrics_handle()
                .conns_live
                .fetch_sub(1, Relaxed);
        });
        // Reap finished handlers so a long-running server doesn't grow a
        // JoinHandle per past connection.
        let mut slots = handlers.lock();
        let mut live = Vec::with_capacity(slots.len() + 1);
        for h in slots.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        live.push(handle);
        *slots = live;
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean close, transport error, or shutdown-induced reset:
            // the connection is done either way.
            Ok(None) | Err(_) => return,
        };
        let req = match decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                let resp = Response::Error(format!("bad request: {e}"));
                if write_frame(&mut writer, &encode_response(&resp)).is_err() {
                    return;
                }
                continue;
            }
        };
        // Subscribe converts this connection into a replication stream:
        // ack the subscription, then this thread is the follower's
        // sender until it disconnects or the hub closes.
        if let Request::Subscribe { last_seq } = req {
            let ok = Response::Ok { accepted: 0 };
            if write_frame(&mut writer, &encode_response(&ok)).is_err() {
                return;
            }
            let sub = shared.service.replication().subscribe();
            let mut transport = FramedTcp::from_parts(reader, writer);
            let cfg = StreamConfig {
                window: shared.service.config().repl_window.max(1),
                ..StreamConfig::default()
            };
            if let Ok(StreamEnd::Fenced(epoch)) =
                stream_to_follower(&mut transport, &sub, last_seq, &cfg)
            {
                // A follower acked at a higher epoch: this node has been
                // deposed. Adopt the fence and step down; the follower
                // driver (when one is attached) re-parents from here.
                shared.service.fence_epoch(epoch);
                shared.service.set_leading(false);
            }
            return;
        }
        // Per-request observability: a span carrying the frame type (and
        // shard, when the frame names one) around the dispatch, and the
        // dispatch latency recorded into the per-class histogram. The
        // span is free when no subscriber is installed; the histogram
        // records always.
        let class = req.class_index();
        let span = match req.shard_hint() {
            Some(shard) => tracing::span(
                "request",
                &[("kind", req.kind().into()), ("shard", shard.into())],
            ),
            None => tracing::span("request", &[("kind", req.kind().into())]),
        };
        let started = std::time::Instant::now();
        let (resp, stop_after) = span.in_scope(|| handle_request(&shared.service, req));
        drop(span);
        shared
            .service
            .metrics_handle()
            .record_request(class, started.elapsed().as_nanos() as u64);
        if write_frame(&mut writer, &encode_response(&resp)).is_err() {
            return;
        }
        if stop_after {
            shared.signal_stop();
            return;
        }
    }
}

/// Map one request to one response; the bool asks the server to stop.
///
/// Public so alternative request sources — the deterministic
/// fault-injection harness in `tests/resharding_faults.rs` feeds mangled
/// frame sequences through it — exercise exactly the dispatch the TCP
/// handler runs. (`Subscribe` is special-cased by the connection handler
/// before it gets here; see `handle_connection`.)
pub fn handle_request(service: &PeelService, req: Request) -> (Response, bool) {
    let resp = match req {
        Request::Hello => Response::Hello(service.hello()),
        Request::Insert(keys) => Response::Ok {
            accepted: service.insert(&keys),
        },
        Request::Delete(keys) => Response::Ok {
            accepted: service.delete(&keys),
        },
        Request::Flush => {
            service.flush();
            Response::Ok { accepted: 0 }
        }
        Request::Digest { shard } => match service.snapshot_shard(shard) {
            Ok((epoch, iblt)) => Response::Digest { epoch, iblt },
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Reconcile { shard, digest } => match service.reconcile_shard(shard, &digest) {
            Ok(diff) => Response::Diff(diff),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Stats => Response::Stats(Box::new(service.metrics())),
        Request::MetricsText => Response::MetricsText(crate::prom::render(&service.metrics())),
        Request::DebugDump => Response::DebugDump(
            crate::recorder::global()
                .map(|r| r.dump())
                .unwrap_or_default(),
        ),
        // The reshard coordinator: the four v4 control frames drive the
        // service's migration state machine. Begin runs the snapshot +
        // re-key synchronously (dual-apply is on by the time it
        // returns); Digest verifies one new shard and returns it
        // sparse-encoded; Commit verifies the rest and cuts over.
        Request::ReshardBegin { to_shards } => match service.reshard_begin(to_shards) {
            Ok(status) => Response::Reshard(status),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::ReshardDigest { shard } => match service.reshard_verify(shard) {
            // Freshly split shards are lightly loaded, so the sparse
            // encoding usually wins — but a near-full table flips that
            // (and only the dense form is covered by the start-time
            // frame-cap assert), so pick per table.
            Ok((epoch, iblt)) => {
                if crate::wire::sparse_is_smaller(&iblt) {
                    Response::DigestSparse { epoch, iblt }
                } else {
                    Response::Digest { epoch, iblt }
                }
            }
            Err(e) => Response::Error(e.to_string()),
        },
        Request::ReshardCommit => match service.reshard_commit() {
            Ok(status) => Response::Reshard(status),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::ReshardAbort => match service.reshard_abort() {
            Ok(status) => Response::Reshard(status),
            Err(e) => Response::Error(e.to_string()),
        },
        Request::ReplicaStatus => Response::ReplicaStatus(service.replica_status()),
        Request::ReadDigest { shard, max_lag } => {
            let lag = service.replica_lag();
            if lag > max_lag {
                Response::ReadStale {
                    lag,
                    redirect: service.primary_hint(),
                }
            } else {
                match service.snapshot_shard(shard) {
                    Ok((epoch, iblt)) => Response::Digest { epoch, iblt },
                    Err(e) => Response::Error(e.to_string()),
                }
            }
        }
        Request::Shutdown => return (Response::Ok { accepted: 0 }, true),
        // Subscribe is intercepted in `handle_connection`; a stray ack
        // outside a subscribed stream is a client bug.
        Request::Subscribe { .. } | Request::ReplicateAck { .. } => {
            Response::Error("replication frame outside a subscribed stream".into())
        }
    };
    (resp, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peel_iblt::IbltConfig;

    fn tiny_cfg() -> ServiceConfig {
        ServiceConfig {
            shards: 2,
            shard_iblt: IbltConfig::for_load(4, 64, 0.5, 1),
            batch_size: 16,
            queue_depth: 4,
            workers: 1,
            ..ServiceConfig::default()
        }
    }

    /// Regression test for the poisoned-shutdown cascade: a thread that
    /// panics while holding the server's std stop lock used to make
    /// every later `wait`/`shutdown` panic on `.lock().unwrap()`.
    #[test]
    fn shutdown_survives_poisoned_locks() {
        let mut server = Server::bind("127.0.0.1:0", tiny_cfg()).unwrap();
        let shared = Arc::clone(&server.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.stop_lock.lock().unwrap();
            panic!("poison the stop lock while holding it");
        })
        .join();
        assert!(server.shared.stop_lock.is_poisoned());
        // Both the condvar path and the teardown path must still work.
        server.shutdown();
        server.wait();
    }

    #[test]
    fn shutdown_survives_a_panicked_subscriber_thread() {
        let mut server = Server::bind("127.0.0.1:0", tiny_cfg()).unwrap();
        let service = server.service_arc();
        // A replication consumer that dies mid-stream must not wedge or
        // poison anything the server needs to stop.
        let sub_thread = std::thread::spawn(move || {
            let sub = service.replication().subscribe();
            let _ = sub.recv();
            panic!("consumer dies while subscribed");
        });
        // Publish only once the subscription is registered, or the
        // consumer would block forever on a stream that misses it.
        while server.service().replication().followers() == 0 {
            std::thread::yield_now();
        }
        server.service().insert(&[1, 2, 3]);
        server.service().flush();
        let _ = sub_thread.join();
        server.shutdown();
    }
}

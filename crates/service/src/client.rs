//! Blocking client library for the reconciliation service.
//!
//! [`Client`] wraps one TCP connection with typed request/response calls;
//! [`Client::reconcile`] is the high-level entry point: it learns the
//! server's sharding from the `Hello` handshake, digests the caller's key
//! set per shard, reconciles every shard, and merges the result into a
//! single [`ServiceDiff`].

use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use peel_iblt::Iblt;

use crate::metrics::{MetricsSnapshot, ReshardStats};
use crate::recorder::FlightRecord;
use crate::router::build_shard_digests;
use crate::transport::FramedTcp;
use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, HelloInfo, ReplicaStatus, Request,
    Response, ShardDiff, WireError,
};

/// What a converged-read request came back with: the digest, or a
/// staleness refusal naming where to go instead.
#[derive(Debug, Clone)]
pub enum ReadOutcome {
    /// The replica was converged enough; here is the shard digest.
    Digest {
        /// Shard epoch at snapshot time.
        epoch: u64,
        /// Frozen shard table.
        iblt: Iblt,
    },
    /// The replica is lagging past the caller's bound.
    Stale {
        /// The replica's current lag, in batches.
        lag: u64,
        /// The current primary's advertised address (may be empty).
        redirect: String,
    },
}

/// The merged outcome of reconciling every shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceDiff {
    /// Keys the server has that the client does not (sorted).
    pub only_server: Vec<u64>,
    /// Keys the client has that the server does not (sorted).
    pub only_client: Vec<u64>,
    /// True iff every shard decoded completely.
    pub complete: bool,
    /// The per-shard results (epochs, subround counts, raw key lists).
    pub shards: Vec<ShardDiff>,
}

impl ServiceDiff {
    /// Largest subround count over all shards (the recovery's critical
    /// path if shards were reconciled in parallel).
    pub fn max_subrounds(&self) -> u32 {
        self.shards.iter().map(|d| d.subrounds).max().unwrap_or(0)
    }
}

/// A blocking connection to a reconciliation server.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    hello: Option<HelloInfo>,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connect, retrying for up to `timeout` while the server comes up
    /// (useful when the server is a freshly spawned separate process).
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> Result<Client, WireError> {
        let deadline = Instant::now() + timeout;
        loop {
            match TcpStream::connect(addr.clone()) {
                Ok(stream) => return Self::from_stream(stream),
                Err(e) if Instant::now() >= deadline => return Err(WireError::Io(e)),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Connect with a bounded TCP connect timeout — the mesh building
    /// block: election probes and read routing must not hang on a dead
    /// peer for the OS default. The same bound is installed as the
    /// socket read/write deadline, so a peer that *accepts* and then
    /// wedges (half-dead process, black-holed network) cannot hang the
    /// caller either; such calls fail with [`WireError::TimedOut`].
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Client, WireError> {
        let stream = TcpStream::connect_timeout(addr, timeout).map_err(WireError::Io)?;
        let mut client = Self::from_stream(stream)?;
        client.set_io_timeout(Some(timeout))?;
        Ok(client)
    }

    /// Bound every subsequent socket read and write on this connection
    /// (`None` restores blocking-forever). An expired deadline surfaces
    /// as [`WireError::TimedOut`]; the connection is not usable
    /// afterwards (a frame may be half-sent or half-read).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), WireError> {
        // Reader and writer are clones of one socket, so the options
        // land on the shared descriptor; set both directions.
        self.reader
            .set_read_timeout(timeout)
            .map_err(WireError::Io)?;
        self.reader
            .set_write_timeout(timeout)
            .map_err(WireError::Io)?;
        Ok(())
    }

    fn from_stream(stream: TcpStream) -> Result<Client, WireError> {
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            hello: None,
        })
    }

    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.writer, &encode_request(req))?;
        let payload = read_frame(&mut self.reader)?.ok_or(WireError::UnexpectedEof)?;
        match decode_response(&payload)? {
            Response::Error(msg) => Err(WireError::Remote(msg)),
            resp => Ok(resp),
        }
    }

    /// Fetch (and cache) the server's sharding parameters.
    pub fn hello(&mut self) -> Result<HelloInfo, WireError> {
        if let Some(h) = self.hello {
            return Ok(h);
        }
        self.refresh_hello()
    }

    /// Re-fetch the server's sharding parameters, bypassing the cache —
    /// the shard count is live (a reshard changes it), so long-lived
    /// clients like the follower's anti-entropy loop poll this.
    pub fn refresh_hello(&mut self) -> Result<HelloInfo, WireError> {
        match self.call(&Request::Hello)? {
            Response::Hello(h) => {
                self.hello = Some(h);
                Ok(h)
            }
            _ => Err(WireError::UnexpectedResponse("expected Hello")),
        }
    }

    /// Insert keys; returns how many the server accepted.
    pub fn insert(&mut self, keys: &[u64]) -> Result<u64, WireError> {
        match self.call(&Request::Insert(keys.to_vec()))? {
            Response::Ok { accepted } => Ok(accepted),
            _ => Err(WireError::UnexpectedResponse("expected Ok")),
        }
    }

    /// Delete keys; returns how many the server accepted.
    pub fn delete(&mut self, keys: &[u64]) -> Result<u64, WireError> {
        match self.call(&Request::Delete(keys.to_vec()))? {
            Response::Ok { accepted } => Ok(accepted),
            _ => Err(WireError::UnexpectedResponse("expected Ok")),
        }
    }

    /// Block until everything submitted so far is applied server-side.
    pub fn flush(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Flush)? {
            Response::Ok { .. } => Ok(()),
            _ => Err(WireError::UnexpectedResponse("expected Ok")),
        }
    }

    /// Fetch a snapshot digest of one server shard.
    pub fn digest(&mut self, shard: u32) -> Result<(u64, Iblt), WireError> {
        match self.call(&Request::Digest { shard })? {
            Response::Digest { epoch, iblt } => Ok((epoch, iblt)),
            _ => Err(WireError::UnexpectedResponse("expected Digest")),
        }
    }

    /// Reconcile one shard against a locally built digest.
    pub fn reconcile_shard(&mut self, shard: u32, digest: &Iblt) -> Result<ShardDiff, WireError> {
        match self.call(&Request::Reconcile {
            shard,
            digest: digest.clone(),
        })? {
            Response::Diff(d) => Ok(d),
            _ => Err(WireError::UnexpectedResponse("expected Diff")),
        }
    }

    /// Reconcile the caller's entire key set against the server: digest
    /// the keys per shard (using the handshake parameters) and merge the
    /// per-shard differences.
    pub fn reconcile(&mut self, keys: &[u64]) -> Result<ServiceDiff, WireError> {
        let hello = self.hello()?;
        let digests = build_shard_digests(keys, hello.shards, hello.router_seed, hello.base_config);
        let mut out = ServiceDiff {
            complete: true,
            ..ServiceDiff::default()
        };
        for (i, digest) in digests.iter().enumerate() {
            let d = self.reconcile_shard(i as u32, digest)?;
            out.complete &= d.complete;
            out.only_server.extend_from_slice(&d.only_local);
            out.only_client.extend_from_slice(&d.only_remote);
            out.shards.push(d);
        }
        out.only_server.sort_unstable();
        out.only_client.sort_unstable();
        Ok(out)
    }

    /// Fetch service metrics.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, WireError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            _ => Err(WireError::UnexpectedResponse("expected Stats")),
        }
    }

    /// Fetch the server's metrics rendered in the Prometheus text
    /// exposition format (protocol v5; older servers answer with a tag
    /// error, surfaced as [`WireError::Remote`]).
    pub fn metrics_text(&mut self) -> Result<String, WireError> {
        let hello = self.refresh_hello()?;
        if hello.version < 5 {
            return Err(WireError::Remote(format!(
                "server speaks protocol v{}; text metrics need v5",
                hello.version
            )));
        }
        match self.call(&Request::MetricsText)? {
            Response::MetricsText(s) => Ok(s),
            _ => Err(WireError::UnexpectedResponse("expected MetricsText")),
        }
    }

    /// Dump the server's flight recorder — the most recent structured
    /// trace events, oldest first (protocol v5). Empty when no recorder
    /// is installed on the server.
    pub fn debug_dump(&mut self) -> Result<Vec<FlightRecord>, WireError> {
        let hello = self.refresh_hello()?;
        if hello.version < 5 {
            return Err(WireError::Remote(format!(
                "server speaks protocol v{}; flight-recorder dumps need v5",
                hello.version
            )));
        }
        match self.call(&Request::DebugDump)? {
            Response::DebugDump(records) => Ok(records),
            _ => Err(WireError::UnexpectedResponse("expected DebugDump")),
        }
    }

    /// Begin a live reshard to `to_shards` shards (protocol v4; servers
    /// older than that answer with a tag error, surfaced as
    /// [`WireError::Remote`]). When this returns, the server has
    /// re-keyed its contents into the new generation and is
    /// dual-applying; commit or abort to finish.
    pub fn reshard_begin(&mut self, to_shards: u32) -> Result<ReshardStats, WireError> {
        self.reshard_call(&Request::ReshardBegin { to_shards })
    }

    /// Verify one new-generation shard and fetch its digest. The server
    /// picks the smaller encoding per table — sparse skip-empty-cells
    /// for lightly loaded (freshly split) shards, dense otherwise — so
    /// both digest response kinds are accepted here.
    pub fn reshard_digest(&mut self, shard: u32) -> Result<(u64, Iblt), WireError> {
        match self.call(&Request::ReshardDigest { shard })? {
            Response::DigestSparse { epoch, iblt } | Response::Digest { epoch, iblt } => {
                Ok((epoch, iblt))
            }
            _ => Err(WireError::UnexpectedResponse("expected a digest")),
        }
    }

    /// Cut the server over to the new generation. Invalidates the cached
    /// `Hello` (the shard count just changed).
    pub fn reshard_commit(&mut self) -> Result<ReshardStats, WireError> {
        self.reshard_call(&Request::ReshardCommit)
    }

    /// Abort the in-flight migration; the server keeps serving the old
    /// generation with nothing lost.
    pub fn reshard_abort(&mut self) -> Result<ReshardStats, WireError> {
        self.reshard_call(&Request::ReshardAbort)
    }

    /// The whole reshard, synchronously: version check, begin, commit —
    /// aborting the migration if the commit fails so the server is never
    /// left stuck mid-reshard by this driver.
    pub fn reshard(&mut self, to_shards: u32) -> Result<ReshardStats, WireError> {
        let hello = self.refresh_hello()?;
        if hello.version < 4 {
            return Err(WireError::Remote(format!(
                "server speaks protocol v{}; live resharding needs v4",
                hello.version
            )));
        }
        self.reshard_begin(to_shards)?;
        match self.reshard_commit() {
            Ok(status) => Ok(status),
            Err(e) => {
                let _ = self.reshard_abort();
                Err(e)
            }
        }
    }

    fn reshard_call(&mut self, req: &Request) -> Result<ReshardStats, WireError> {
        let resp = self.call(req)?;
        // Any reshard control frame can change (or reveal a changed)
        // shard count; drop the cached handshake either way.
        self.hello = None;
        match resp {
            Response::Reshard(status) => Ok(status),
            _ => Err(WireError::UnexpectedResponse("expected Reshard")),
        }
    }

    /// Fetch the server's replica-mesh status: identity, epoch, role,
    /// stream progress, convergence (protocol v6).
    pub fn replica_status(&mut self) -> Result<ReplicaStatus, WireError> {
        match self.call(&Request::ReplicaStatus)? {
            Response::ReplicaStatus(s) => Ok(s),
            _ => Err(WireError::UnexpectedResponse("expected ReplicaStatus")),
        }
    }

    /// A converged read: fetch a shard digest only if the replica's lag
    /// is within `max_lag` batches; otherwise the server answers
    /// `ReadStale` with a redirect, surfaced as [`ReadOutcome::Stale`]
    /// (protocol v6).
    pub fn read_digest(&mut self, shard: u32, max_lag: u64) -> Result<ReadOutcome, WireError> {
        match self.call(&Request::ReadDigest { shard, max_lag })? {
            Response::Digest { epoch, iblt } => Ok(ReadOutcome::Digest { epoch, iblt }),
            Response::ReadStale { lag, redirect } => Ok(ReadOutcome::Stale { lag, redirect }),
            _ => Err(WireError::UnexpectedResponse(
                "expected Digest or ReadStale",
            )),
        }
    }

    /// Ask the server process to shut down cleanly.
    pub fn shutdown_server(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Shutdown)? {
            Response::Ok { .. } => Ok(()),
            _ => Err(WireError::UnexpectedResponse("expected Ok")),
        }
    }

    /// Convert this connection into a replication subscription: after
    /// the server acknowledges, it streams `Replicate` frames for every
    /// batch sealed after `last_seq`. Returns the framed transport to
    /// drive with [`crate::replication::apply_replication_stream`].
    pub fn subscribe(mut self, last_seq: u64) -> Result<FramedTcp, WireError> {
        match self.call(&Request::Subscribe { last_seq })? {
            Response::Ok { .. } => Ok(FramedTcp::from_parts(self.reader, self.writer)),
            _ => Err(WireError::UnexpectedResponse("expected Ok")),
        }
    }

    /// A clone of the underlying socket, for out-of-band shutdown of a
    /// call blocked in another thread.
    pub fn raw_stream(&self) -> std::io::Result<TcpStream> {
        self.reader.try_clone()
    }
}

/// Route a converged read across a replica mesh: try `replicas` in the
/// caller's order (nearest first), taking the first digest whose replica
/// is within `max_lag` batches of its stream. A `ReadStale` refusal with
/// a parseable redirect gets one extra hop to the named primary; dead or
/// erroring replicas are skipped. `Err` only when every path failed.
pub fn read_from_mesh(
    replicas: &[SocketAddr],
    shard: u32,
    max_lag: u64,
    timeout: Duration,
) -> Result<(u64, Iblt), WireError> {
    let mut last_err = WireError::UnexpectedResponse("no replicas to read from");
    for addr in replicas {
        let outcome =
            Client::connect_timeout(addr, timeout).and_then(|mut c| c.read_digest(shard, max_lag));
        match outcome {
            Ok(ReadOutcome::Digest { epoch, iblt }) => return Ok((epoch, iblt)),
            Ok(ReadOutcome::Stale { lag, redirect }) => {
                // One redirect hop: the primary never lags itself, so ask
                // it with the same bound rather than give up on this
                // replica's answer.
                if let Ok(primary) = redirect.parse::<SocketAddr>() {
                    if !replicas.contains(&primary) {
                        if let Ok(ReadOutcome::Digest { epoch, iblt }) =
                            Client::connect_timeout(&primary, timeout)
                                .and_then(|mut c| c.read_digest(shard, max_lag))
                        {
                            return Ok((epoch, iblt));
                        }
                    }
                }
                last_err = WireError::Remote(format!(
                    "replica {addr} is {lag} batches stale (bound {max_lag})"
                ));
            }
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

//! The reconciliation server binary.
//!
//! ```sh
//! # Primary (reactor server: all connections on one readiness loop;
//! # --max-conns caps live sockets, --idle-timeout-ms reaps idle ones,
//! # --blocking swaps in the original thread-per-connection server):
//! peel-server [--addr 127.0.0.1:7744] [--shards 4] [--diff-budget 2048]
//!             [--batch-size 1024] [--queue-depth 64] [--workers N]
//!             [--repl-queue-depth 256] [--max-conns 4096]
//!             [--idle-timeout-ms 60000] [--blocking]
//!
//! # Follower (adopts the primary's sharding from its Hello handshake,
//! # streams its sealed batches, and repairs divergence by anti-entropy):
//! peel-server --addr 127.0.0.1:7745 --follow 127.0.0.1:7744
//!             [--anti-entropy-ms 200]
//!
//! # Mesh replica (same, plus failover: --node-id is the election
//! # tie-breaker, --mesh lists the *other* replicas to probe when the
//! # primary dies, --advertise is where stale reads are redirected if
//! # this node wins):
//! peel-server --addr 127.0.0.1:7745 --follow 127.0.0.1:7744 \
//!             --node-id 1 --mesh 127.0.0.1:7746,127.0.0.1:7747 \
//!             --advertise 127.0.0.1:7745
//! ```
//!
//! Binds, prints `listening on <addr>`, and serves until a client sends
//! `Shutdown` (see `examples/replicated_service.rs` for a full
//! primary + follower + client flow). On exit it prints the final
//! service metrics, including the replication counters.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use peel_service::client::Client;
use peel_service::follower::{Follower, FollowerConfig};
use peel_service::reactor::ReactorConfig;
use peel_service::server::{BlockingServer, Server};
use peel_service::service::{PeelService, ServiceConfig};

/// The two server implementations behind one set of CLI knobs: the
/// reactor (default) and the original thread-per-connection server
/// (`--blocking`, kept for A/B benchmarking).
enum AnyServer {
    Reactor(Server),
    Blocking(BlockingServer),
}

impl AnyServer {
    fn local_addr(&self) -> SocketAddr {
        match self {
            AnyServer::Reactor(s) => s.local_addr(),
            AnyServer::Blocking(s) => s.local_addr(),
        }
    }

    fn service(&self) -> &PeelService {
        match self {
            AnyServer::Reactor(s) => s.service(),
            AnyServer::Blocking(s) => s.service(),
        }
    }

    fn wait(&self) {
        match self {
            AnyServer::Reactor(s) => s.wait(),
            AnyServer::Blocking(s) => s.wait(),
        }
    }

    fn shutdown(&mut self) {
        match self {
            AnyServer::Reactor(s) => s.shutdown(),
            AnyServer::Blocking(s) => s.shutdown(),
        }
    }
}

/// Capacity of the in-process flight recorder (recent structured trace
/// events, dumped by `DebugDump` frames and the panic hook).
const FLIGHT_RECORDER_CAPACITY: usize = 4096;

/// Serve the Prometheus text exposition on a plain-HTTP listener: every
/// connection gets one `200 text/plain` response with the current
/// metrics render, whatever the request bytes say. That is all a scrape
/// loop needs, with no HTTP machinery in the dependency tree.
fn serve_metrics(listener: std::net::TcpListener, service: Arc<PeelService>) {
    for conn in listener.incoming() {
        let Ok(mut stream) = conn else { continue };
        // Drain (best-effort) the request head so the peer's write side
        // isn't reset before it finishes sending.
        let mut buf = [0u8; 1024];
        let _ = stream.read(&mut buf);
        let body = peel_service::prom::render(&service.metrics());
        let head = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let _ = stream
            .write_all(head.as_bytes())
            .and_then(|_| stream.write_all(body.as_bytes()));
    }
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") {
        eprintln!(
            "peel-server [--addr 127.0.0.1:7744] [--shards 4] [--diff-budget 2048]\n\
             \x20           [--batch-size 1024] [--queue-depth 64] [--workers N]\n\
             \x20           [--repl-queue-depth 256] [--repl-window 32]\n\
             \x20           [--max-conns 4096] [--idle-timeout-ms 60000] [--blocking]\n\
             \x20           [--metrics-addr ADDR]\n\
             \x20           [--follow PRIMARY_ADDR] [--anti-entropy-ms 200]\n\
             \x20           [--node-id N] [--mesh A1,A2,..] [--advertise ADDR]\n\
             Sharded IBLT set-reconciliation server; stops on a Shutdown request.\n\
             Connections are served by a single-threaded readiness loop capped at\n\
             --max-conns live sockets; idle ones are reaped after --idle-timeout-ms\n\
             (0 disables). --blocking selects the original thread-per-connection\n\
             server instead (no cap, no reaper; kept for A/B comparison).\n\
             With --follow it runs as a replication follower of PRIMARY_ADDR,\n\
             adopting the primary's sharding and healing divergence by\n\
             anti-entropy; --mesh additionally lists the other replicas so a\n\
             dead primary triggers an election (lowest --node-id among the\n\
             most caught-up wins; --advertise is this node's redirect target).\n\
             With --metrics-addr it additionally serves the Prometheus text\n\
             exposition over plain HTTP on ADDR."
        );
        return;
    }
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7744".into());
    let follow = arg_value(&args, "--follow");
    let metrics_addr = arg_value(&args, "--metrics-addr");

    // Flight recorder first, so every span/event from startup onward is
    // captured; the panic hook dumps its tail alongside the backtrace so
    // a crash report carries the moments leading up to it.
    let recorder = peel_service::recorder::install_global(FLIGHT_RECORDER_CAPACITY);
    let hook_recorder = Arc::clone(&recorder);
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        default_hook(info);
        let records = hook_recorder.dump();
        eprintln!("peel-server: flight recorder ({} events):", records.len());
        for rec in records.iter().rev().take(64).rev() {
            eprintln!("  {rec}");
        }
    }));

    // A follower must shard exactly like its primary, so its config
    // comes from the primary's Hello handshake, not from CLI knobs.
    let mut cfg = match &follow {
        Some(primary) => {
            let mut probe = match Client::connect_retry(primary.as_str(), Duration::from_secs(10)) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("peel-server: cannot reach primary {primary}: {e}");
                    std::process::exit(1);
                }
            };
            match probe.hello() {
                Ok(h) => ServiceConfig::from_hello(&h),
                Err(e) => {
                    eprintln!("peel-server: bad handshake from primary {primary}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            let shards: u32 = parse(&args, "--shards", 4);
            let diff_budget: usize = parse(&args, "--diff-budget", 2048);
            ServiceConfig::for_diff_budget(shards, diff_budget)
        }
    };
    cfg.batch_size = parse(&args, "--batch-size", cfg.batch_size);
    cfg.queue_depth = parse(&args, "--queue-depth", cfg.queue_depth);
    cfg.workers = parse(&args, "--workers", cfg.workers);
    cfg.repl_queue_depth = parse(&args, "--repl-queue-depth", cfg.repl_queue_depth);
    cfg.repl_window = parse(&args, "--repl-window", cfg.repl_window);
    cfg.node_id = parse(&args, "--node-id", cfg.node_id);

    let blocking = args.iter().any(|a| a == "--blocking");
    let idle_ms: u64 = parse(&args, "--idle-timeout-ms", 60_000);
    let rcfg = ReactorConfig {
        max_connections: parse(
            &args,
            "--max-conns",
            ReactorConfig::default().max_connections,
        ),
        idle_timeout: (idle_ms > 0).then(|| Duration::from_millis(idle_ms)),
        ..ReactorConfig::default()
    };

    let service = Arc::new(PeelService::start(cfg));
    let bound = if blocking {
        BlockingServer::bind_with(addr.as_str(), Arc::clone(&service)).map(AnyServer::Blocking)
    } else {
        Server::bind_with_cfg(addr.as_str(), Arc::clone(&service), rcfg.clone())
            .map(AnyServer::Reactor)
    };
    let mut server = match bound {
        Ok(s) => s,
        Err(e) => {
            eprintln!("peel-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "peel-server listening on {} ({} shards × {} cells, batch {}, queue {}, {} workers{}{})",
        server.local_addr(),
        cfg.shards,
        cfg.shard_iblt.total_cells(),
        cfg.batch_size,
        cfg.queue_depth,
        cfg.workers,
        if blocking {
            ", thread-per-connection".to_string()
        } else {
            format!(", reactor capped at {} conns", rcfg.max_connections)
        },
        match &follow {
            Some(p) => format!(", following {p}"),
            None => String::new(),
        },
    );

    if let Some(maddr) = metrics_addr {
        match std::net::TcpListener::bind(maddr.as_str()) {
            Ok(listener) => {
                println!(
                    "peel-server serving metrics on http://{}/metrics",
                    listener
                        .local_addr()
                        .map_or(maddr.clone(), |a| a.to_string()),
                );
                let svc = Arc::clone(&service);
                std::thread::spawn(move || serve_metrics(listener, svc));
            }
            Err(e) => {
                eprintln!("peel-server: cannot bind metrics address {maddr}: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut follower = follow.map(|primary| {
        use std::net::ToSocketAddrs;
        let primary_addr: SocketAddr = match primary
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
        {
            Some(a) => a,
            None => {
                eprintln!("peel-server: bad primary address {primary}");
                std::process::exit(1);
            }
        };
        let peers: Vec<SocketAddr> = arg_value(&args, "--mesh")
            .map(|list| {
                list.split(',')
                    .filter_map(|a| {
                        a.trim()
                            .to_socket_addrs()
                            .ok()
                            .and_then(|mut addrs| addrs.next())
                    })
                    .collect()
            })
            .unwrap_or_default();
        let fcfg = FollowerConfig {
            anti_entropy_interval: Duration::from_millis(parse(&args, "--anti-entropy-ms", 200)),
            peers,
            advertise: arg_value(&args, "--advertise").unwrap_or_default(),
            ..FollowerConfig::default()
        };
        Follower::start(Arc::clone(&service), primary_addr, fcfg)
    });

    server.wait();
    if let Some(f) = follower.as_mut() {
        f.stop();
    }
    server.shutdown();
    let m = server.service().metrics();
    println!(
        "peel-server: shut down after {} ops in {} batches (occupancy {:.1}), \
         {} stalls, {} recoveries ({} incomplete, {} subrounds, {:.3} ms decoding total)",
        m.ops_applied,
        m.batches_applied,
        m.mean_batch_occupancy(),
        m.queue_stalls,
        m.recoveries,
        m.recoveries_incomplete,
        m.recovery_subrounds,
        m.recovery_ns as f64 / 1e6,
    );
    let r = &m.replication;
    println!(
        "peel-server: replication: {} followers, seq {} published / {} acked (max lag {}), \
         {} streamed, {} dropped; follower side: {} applied, {} skipped, {} torn frames, \
         {} anti-entropy rounds healing {} keys",
        r.followers,
        r.published_seq,
        r.acked_min,
        r.max_lag,
        r.batches_streamed,
        r.batches_dropped,
        r.batches_applied,
        r.batches_skipped,
        r.decode_errors,
        r.anti_entropy_rounds,
        r.anti_entropy_keys,
    );
    let rs = &m.reshard;
    println!(
        "peel-server: resharding: generation {} at {} shards, {} reshards committed \
         ({} keys moved by the last one), {} aborted",
        rs.generation, rs.serving_shards, rs.completed, rs.keys_moved, rs.aborted,
    );
}

//! The reconciliation server binary.
//!
//! ```sh
//! peel-server [--addr 127.0.0.1:7744] [--shards 4] [--diff-budget 2048]
//!             [--batch-size 1024] [--queue-depth 64] [--workers N]
//! ```
//!
//! Binds, prints `listening on <addr>`, and serves until a client sends
//! `Shutdown` (see `examples/reconcile_service.rs` for a full client).
//! On exit it prints the final service metrics.

use peel_service::server::Server;
use peel_service::service::ServiceConfig;

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") {
        eprintln!(
            "peel-server [--addr 127.0.0.1:7744] [--shards 4] [--diff-budget 2048]\n\
             \x20           [--batch-size 1024] [--queue-depth 64] [--workers N]\n\
             Sharded IBLT set-reconciliation server; stops on a Shutdown request."
        );
        return;
    }
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7744".into());
    let shards: u32 = parse(&args, "--shards", 4);
    let diff_budget: usize = parse(&args, "--diff-budget", 2048);
    let mut cfg = ServiceConfig::for_diff_budget(shards, diff_budget);
    cfg.batch_size = parse(&args, "--batch-size", cfg.batch_size);
    cfg.queue_depth = parse(&args, "--queue-depth", cfg.queue_depth);
    cfg.workers = parse(&args, "--workers", cfg.workers);

    let mut server = match Server::bind(addr.as_str(), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("peel-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "peel-server listening on {} ({} shards × {} cells, batch {}, queue {}, {} workers)",
        server.local_addr(),
        cfg.shards,
        cfg.shard_iblt.total_cells(),
        cfg.batch_size,
        cfg.queue_depth,
        cfg.workers,
    );

    server.wait();
    server.shutdown();
    let m = server.service().metrics();
    println!(
        "peel-server: shut down after {} ops in {} batches (occupancy {:.1}), \
         {} stalls, {} recoveries ({} incomplete, {} subrounds total)",
        m.ops_applied,
        m.batches_applied,
        m.mean_batch_occupancy(),
        m.queue_stalls,
        m.recoveries,
        m.recoveries_incomplete,
        m.recovery_subrounds,
    );
}

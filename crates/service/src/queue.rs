//! Bounded batch queue: the backpressure point between connection
//! handlers (producers) and the ingest worker pool (consumers).
//!
//! `std::sync::{Mutex, Condvar}` rather than the `parking_lot` shim
//! because the shim deliberately omits condvars; the queue is cold
//! relative to the atomic IBLT updates it feeds, so the std primitives
//! are plenty. All locking goes through the poison-tolerant wrappers in
//! [`crate::lock`] so a panicking producer or worker cannot cascade
//! into queue-poisoning panics during shutdown.

use std::collections::VecDeque;
// ordering: the stalls counter is the queue's only bare atomic and it is a
// monotone diagnostics gauge — writers bump it while already holding the
// state mutex and readers tolerate staleness, so Relaxed carries no
// decision. All queue state transitions go through the mutex/condvars
// (checked by the loom model in tests/loom_queue.rs).
use std::sync::atomic::Ordering::Relaxed;

use crate::lock::{plock, pwait};
use crate::sync::{AtomicU64, Condvar, Mutex};

/// One signed key operation: insert (`dir = +1`) or delete (`dir = −1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// The key.
    pub key: u64,
    /// +1 for insert, −1 for delete.
    pub dir: i64,
}

/// A batch of operations, as drained by a worker.
pub type Batch = Vec<Op>;

struct State {
    /// Pending batches, each stamped with its enqueue time so the
    /// consumer can report how long it sat in the queue.
    batches: VecDeque<(Batch, std::time::Instant)>,
    /// Batches popped but not yet `task_done`d.
    in_flight: usize,
    closed: bool,
}

/// A bounded MPMC queue of batches with a drain ("idle") waiter.
pub struct BoundedQueue {
    state: Mutex<State>,
    not_full: Condvar,
    not_empty: Condvar,
    idle: Condvar,
    capacity: usize,
    stalls: AtomicU64,
}

impl BoundedQueue {
    /// Queue holding at most `capacity` pending batches (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                batches: VecDeque::new(),
                in_flight: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            idle: Condvar::new(),
            capacity,
            stalls: AtomicU64::new(0),
        }
    }

    /// Enqueue a batch, blocking while the queue is full (backpressure).
    /// Returns `false` — dropping the batch — iff the queue is closed.
    pub fn push(&self, batch: Batch) -> bool {
        let mut st = plock(&self.state);
        if st.batches.len() >= self.capacity {
            self.stalls.fetch_add(1, Relaxed);
            while st.batches.len() >= self.capacity && !st.closed {
                st = pwait(&self.not_full, st);
            }
        }
        if st.closed {
            return false;
        }
        st.batches.push_back((batch, std::time::Instant::now()));
        drop(st);
        self.not_empty.notify_one();
        true
    }

    /// Dequeue the next batch, blocking while empty. Returns `None` once
    /// the queue is closed *and* drained. The caller must follow every
    /// successful pop with [`Self::task_done`].
    pub fn pop(&self) -> Option<Batch> {
        self.pop_timed().map(|(b, _)| b)
    }

    /// [`Self::pop`], also reporting how long the batch waited in the
    /// queue (nanoseconds from `push` to this pop) — the ingest
    /// pipeline's queue-wait histogram records it.
    pub fn pop_timed(&self) -> Option<(Batch, u64)> {
        let mut st = plock(&self.state);
        loop {
            if let Some((b, at)) = st.batches.pop_front() {
                st.in_flight += 1;
                drop(st);
                self.not_full.notify_one();
                return Some((b, at.elapsed().as_nanos() as u64));
            }
            if st.closed {
                return None;
            }
            st = pwait(&self.not_empty, st);
        }
    }

    /// Mark a popped batch as fully applied.
    pub fn task_done(&self) {
        let mut st = plock(&self.state);
        st.in_flight -= 1;
        if st.in_flight == 0 && st.batches.is_empty() {
            drop(st);
            self.idle.notify_all();
        }
    }

    /// Block until the queue is empty and no batch is being applied.
    pub fn wait_idle(&self) {
        let mut st = plock(&self.state);
        while !(st.batches.is_empty() && st.in_flight == 0) {
            st = pwait(&self.idle, st);
        }
    }

    /// Close the queue: producers are rejected, consumers drain what is
    /// left and then see `None`.
    pub fn close(&self) {
        let mut st = plock(&self.state);
        st.closed = true;
        drop(st);
        self.not_full.notify_all();
        self.not_empty.notify_all();
        self.idle.notify_all();
    }

    /// True once [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        plock(&self.state).closed
    }

    /// Times a producer has blocked on a full queue.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Relaxed)
    }

    /// Pending batches (excluding in-flight).
    pub fn depth(&self) -> usize {
        plock(&self.state).batches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn batch(n: u64) -> Batch {
        vec![Op { key: n, dir: 1 }]
    }

    #[test]
    fn fifo_through_one_worker() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(b) = q.pop() {
                    seen.push(b[0].key);
                    q.task_done();
                }
                seen
            })
        };
        for i in 0..20 {
            assert!(q.push(batch(i)));
        }
        q.wait_idle();
        q.close();
        let seen = consumer.join().unwrap();
        assert_eq!(seen, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn full_queue_blocks_and_counts_stalls() {
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push(batch(0)));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(batch(1)))
        };
        // Give the producer time to block on the full queue.
        while q.stalls() == 0 {
            thread::yield_now();
        }
        assert_eq!(q.depth(), 1);
        // Draining unblocks it.
        q.pop().unwrap();
        q.task_done();
        assert!(producer.join().unwrap());
        assert_eq!(q.stalls(), 1);
    }

    #[test]
    fn close_rejects_producers_and_drains_consumers() {
        let q = BoundedQueue::new(4);
        assert!(q.push(batch(0)));
        q.close();
        assert!(!q.push(batch(1)), "push after close must be rejected");
        assert!(q.pop().is_some(), "close drains pending batches");
        q.task_done();
        assert!(q.pop().is_none());
    }

    #[test]
    fn wait_idle_waits_for_in_flight_batches() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(batch(0));
        let b = q.pop().unwrap();
        let waiter = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.wait_idle())
        };
        // The batch is in flight, so the waiter must not finish yet.
        thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished());
        drop(b);
        q.task_done();
        waiter.join().unwrap();
    }
}

//! Flight recorder: a fixed-capacity, lock-free ring buffer of recent
//! structured tracing events.
//!
//! The recorder implements the vendored `tracing::Subscriber`, so
//! installing it makes every span and event in the process leave a
//! timestamped record in the ring. When something goes wrong — a failed
//! reshard, an orphaned follower, a panic — the last N records are a
//! readable timeline of what the service was doing, dumped over the
//! wire (`DebugDump` frame) or from the `peel-server` panic hook.
//!
//! Lock-freedom: writers claim a global sequence number with one
//! `fetch_add` and own slot `seq % capacity`. Each slot is a seqlock —
//! an odd version means "write in progress", and every payload word is
//! its own relaxed atomic, so a torn read is *stale or discarded*,
//! never undefined behavior. Readers (the dump path) retry a slot a few
//! times and skip it if a writer keeps overlapping; recording never
//! waits on readers.
//!
//! Slots store only plain words. Names and field keys are `&'static
//! str`s, kept as raw (pointer, length) word pairs; the seqlock's
//! version check proves the pair was written together by one writer
//! before the dump reconstructs the `&str`.

// ordering: the ring is a per-slot seqlock. A writer marks its slot
// busy with an Acquire CAS to an odd version (later payload stores
// cannot move above it), publishes payload words with Relaxed stores,
// and releases with a Release store of the next even version (payload
// stores cannot move below it). A reader loads the version with
// Acquire, copies payload words with Relaxed loads, then re-checks the
// version after an Acquire fence (payload loads cannot move below the
// re-check); equal even versions prove an untorn copy. The head
// counter and span-ID counter are Relaxed — they only need uniqueness,
// not ordering.
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{fence, AtomicU64, AtomicUsize};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use tracing::{Field, Subscriber, Value};

/// Record kind: a span opening.
pub const KIND_SPAN: u8 = 0;
/// Record kind: a point-in-time event.
pub const KIND_EVENT: u8 = 1;

/// Fields kept per record; extras are dropped (call sites stay small).
const MAX_FIELDS: usize = 8;

/// How many times the dump path retries a slot that a writer keeps
/// re-writing before skipping it.
const READ_RETRIES: usize = 8;

/// One dumped record, in plain data (what the `DebugDump` wire frame
/// carries and the panic hook prints).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global sequence number (total order of recorded events).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// [`KIND_SPAN`] or [`KIND_EVENT`].
    pub kind: u8,
    /// The span this record belongs to (its own ID for span records,
    /// the enclosing span for events; 0 = none).
    pub span: u64,
    /// Parent span ID (span records only; 0 = root).
    pub parent: u64,
    /// Span or event name.
    pub name: String,
    /// Fields rendered as `k=v` pairs separated by spaces.
    pub fields: String,
}

impl std::fmt::Display for FlightRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.kind == KIND_SPAN {
            "span"
        } else {
            "event"
        };
        write!(
            f,
            "#{} +{}us {kind} {} span={} parent={}",
            self.seq, self.at_us, self.name, self.span, self.parent
        )?;
        if !self.fields.is_empty() {
            write!(f, " {}", self.fields)?;
        }
        Ok(())
    }
}

// A field value flattened to three words: tag, payload A, payload B.
const VAL_U64: u64 = 0;
const VAL_I64: u64 = 1;
const VAL_BOOL: u64 = 2;
const VAL_STR: u64 = 3;

/// One stored field: key (ptr, len) + value (tag, a, b).
#[derive(Default)]
struct FieldCells {
    key_ptr: AtomicUsize,
    key_len: AtomicUsize,
    tag: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// One ring slot: seqlock version + payload words.
#[derive(Default)]
struct Slot {
    /// Even = stable, odd = write in progress. Starts at 0; a slot is
    /// "never written" while `seq` is `u64::MAX`.
    version: AtomicU64,
    seq: AtomicU64,
    at_us: AtomicU64,
    /// kind in bits 0..8, field count in bits 8..16.
    meta: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    fields: [FieldCells; MAX_FIELDS],
}

/// The ring buffer. Create with [`FlightRecorder::new`], install as the
/// global tracing subscriber via [`install_global`], dump with
/// [`FlightRecorder::dump`].
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
    next_span: AtomicU64,
    start: Instant,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` records
    /// (`capacity` ≥ 1; values are clamped).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots: Box<[Slot]> = (0..capacity).map(|_| Slot::default()).collect();
        // Mark every slot "never written" so dumps skip them.
        for s in slots.iter() {
            s.seq.store(u64::MAX, Relaxed);
        }
        FlightRecorder {
            slots,
            head: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records written over the recorder's lifetime (≥ the number
    /// still in the ring).
    pub fn recorded(&self) -> u64 {
        self.head.load(Relaxed)
    }

    fn write(&self, kind: u8, span: u64, parent: u64, name: &'static str, fields: &[Field]) {
        let seq = self.head.fetch_add(1, Relaxed);
        let Some(slot) = self.slots.get((seq % self.slots.len() as u64) as usize) else {
            return;
        };
        let at_us = self.start.elapsed().as_micros() as u64;
        // Claim the slot: CAS even → odd. A concurrent writer that
        // wrapped all the way around holds it only for these few
        // stores, so spinning is bounded in practice.
        let mut v = slot.version.load(Relaxed);
        loop {
            if v % 2 == 1 {
                std::hint::spin_loop();
                v = slot.version.load(Relaxed);
                continue;
            }
            match slot.version.compare_exchange(v, v + 1, Acquire, Relaxed) {
                Ok(_) => break,
                Err(now) => v = now,
            }
        }
        slot.seq.store(seq, Relaxed);
        slot.at_us.store(at_us, Relaxed);
        let n = fields.len().min(MAX_FIELDS);
        slot.meta.store(kind as u64 | ((n as u64) << 8), Relaxed);
        slot.span.store(span, Relaxed);
        slot.parent.store(parent, Relaxed);
        slot.name_ptr.store(name.as_ptr() as usize, Relaxed);
        slot.name_len.store(name.len(), Relaxed);
        for (cell, (key, val)) in slot.fields.iter().zip(fields.iter()) {
            cell.key_ptr.store(key.as_ptr() as usize, Relaxed);
            cell.key_len.store(key.len(), Relaxed);
            let (tag, a, b) = match *val {
                Value::U64(x) => (VAL_U64, x, 0),
                Value::I64(x) => (VAL_I64, x as u64, 0),
                Value::Bool(x) => (VAL_BOOL, x as u64, 0),
                Value::Str(s) => (VAL_STR, s.as_ptr() as usize as u64, s.len() as u64),
            };
            cell.tag.store(tag, Relaxed);
            cell.a.store(a, Relaxed);
            cell.b.store(b, Relaxed);
        }
        slot.version.store(v + 2, Release);
    }

    /// Read one slot if it is stable; `None` if never written or a
    /// writer kept overlapping.
    fn read_slot(&self, i: usize) -> Option<FlightRecord> {
        let slot = self.slots.get(i)?;
        for _ in 0..READ_RETRIES {
            let v1 = slot.version.load(Acquire);
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let seq = slot.seq.load(Relaxed);
            let at_us = slot.at_us.load(Relaxed);
            let meta = slot.meta.load(Relaxed);
            let span = slot.span.load(Relaxed);
            let parent = slot.parent.load(Relaxed);
            let name_ptr = slot.name_ptr.load(Relaxed);
            let name_len = slot.name_len.load(Relaxed);
            let mut raw_fields = [(0usize, 0usize, 0u64, 0u64, 0u64); MAX_FIELDS];
            let n = ((meta >> 8) & 0xff) as usize;
            for (dst, cell) in raw_fields.iter_mut().zip(slot.fields.iter()).take(n) {
                *dst = (
                    cell.key_ptr.load(Relaxed),
                    cell.key_len.load(Relaxed),
                    cell.tag.load(Relaxed),
                    cell.a.load(Relaxed),
                    cell.b.load(Relaxed),
                );
            }
            fence(Acquire);
            if slot.version.load(Relaxed) != v1 {
                continue;
            }
            if seq == u64::MAX {
                return None;
            }
            // The copy is untorn: the (ptr, len) pairs below were
            // written together by one writer from live `&'static str`s.
            let name = load_static_str(name_ptr, name_len).to_string();
            let mut fields = String::new();
            for &(kp, kl, tag, a, b) in raw_fields.iter().take(n.min(MAX_FIELDS)) {
                if !fields.is_empty() {
                    fields.push(' ');
                }
                fields.push_str(load_static_str(kp, kl));
                fields.push('=');
                match tag {
                    VAL_I64 => fields.push_str(&(a as i64).to_string()),
                    VAL_BOOL => fields.push_str(if a != 0 { "true" } else { "false" }),
                    VAL_STR => fields.push_str(load_static_str(a as usize, b as usize)),
                    _ => fields.push_str(&a.to_string()),
                }
            }
            return Some(FlightRecord {
                seq,
                at_us,
                kind: (meta & 0xff) as u8,
                span,
                parent,
                name,
                fields,
            });
        }
        None
    }

    /// Snapshot the ring: every stable record, ascending by sequence
    /// number (oldest first). Concurrent recording may overwrite slots
    /// mid-dump; such slots are simply skipped or reflect the newer
    /// record.
    pub fn dump(&self) -> Vec<FlightRecord> {
        let mut out: Vec<FlightRecord> = (0..self.slots.len())
            .filter_map(|i| self.read_slot(i))
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }
}

/// Rebuild a `&'static str` from a (ptr, len) word pair that a seqlock
/// read proved untorn.
fn load_static_str(ptr: usize, len: usize) -> &'static str {
    if ptr == 0 {
        return "";
    }
    // SAFETY: the pair was stored together (seqlock-validated) from a
    // live `&'static str`, whose pointer and length remain valid for
    // the program's lifetime.
    unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr as *const u8, len)) }
}

impl Subscriber for FlightRecorder {
    fn new_span(&self, name: &'static str, parent: u64, fields: &[Field]) -> u64 {
        let id = self.next_span.fetch_add(1, Relaxed) + 1;
        self.write(KIND_SPAN, id, parent, name, fields);
        id
    }

    fn event(&self, span: u64, name: &'static str, fields: &[Field]) {
        self.write(KIND_EVENT, span, 0, name, fields);
    }
}

/// `Subscriber` forwarding to a shared recorder (what gets installed
/// globally, so dumps and the panic hook keep a handle).
struct SharedRecorder(Arc<FlightRecorder>);

impl Subscriber for SharedRecorder {
    fn new_span(&self, name: &'static str, parent: u64, fields: &[Field]) -> u64 {
        self.0.new_span(name, parent, fields)
    }

    fn event(&self, span: u64, name: &'static str, fields: &[Field]) {
        self.0.event(span, name, fields)
    }
}

static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();

/// Install a process-global flight recorder of `capacity` records as
/// the tracing subscriber and return a handle to it. Idempotent: later
/// calls return the first recorder (capacity unchanged).
pub fn install_global(capacity: usize) -> Arc<FlightRecorder> {
    let rec = GLOBAL
        .get_or_init(|| Arc::new(FlightRecorder::new(capacity)))
        .clone();
    if !tracing::enabled() {
        tracing::set_subscriber(Box::new(SharedRecorder(rec.clone())));
    }
    rec
}

/// The process-global recorder, if [`install_global`] has run.
pub fn global() -> Option<Arc<FlightRecorder>> {
    GLOBAL.get().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_the_ring() {
        let rec = FlightRecorder::new(16);
        let id = rec.new_span("request", 0, &[("kind", Value::Str("insert"))]);
        rec.event(
            id,
            "applied",
            &[("ops", Value::U64(32)), ("ok", Value::Bool(true))],
        );
        let dump = rec.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].kind, KIND_SPAN);
        assert_eq!(dump[0].name, "request");
        assert_eq!(dump[0].fields, "kind=insert");
        assert_eq!(dump[0].span, id);
        assert_eq!(dump[1].kind, KIND_EVENT);
        assert_eq!(dump[1].span, id);
        assert_eq!(dump[1].fields, "ops=32 ok=true");
        assert!(dump[0].seq < dump[1].seq);
    }

    #[test]
    fn ring_keeps_only_the_most_recent_records() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.event(0, "tick", &[("i", Value::U64(i))]);
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 4);
        assert_eq!(dump[0].fields, "i=6");
        assert_eq!(dump[3].fields, "i=9");
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn negative_and_empty_fields_render() {
        let rec = FlightRecorder::new(4);
        rec.event(0, "bare", &[]);
        rec.event(0, "delta", &[("d", Value::I64(-5))]);
        let dump = rec.dump();
        assert_eq!(dump[0].fields, "");
        assert_eq!(dump[1].fields, "d=-5");
    }

    #[test]
    fn extra_fields_are_truncated_not_lost() {
        let rec = FlightRecorder::new(4);
        let fields: Vec<(&'static str, Value)> = (0..12).map(|_| ("k", Value::U64(1))).collect();
        rec.event(0, "wide", &fields);
        let dump = rec.dump();
        assert_eq!(dump[0].fields.split(' ').count(), MAX_FIELDS);
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_dump() {
        let rec = Arc::new(FlightRecorder::new(32));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    rec.event(t, "w", &[("i", Value::U64(i)), ("t", Value::U64(t))]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let dump = rec.dump();
        assert!(dump.len() <= 32);
        for r in &dump {
            assert_eq!(r.name, "w");
            // Fields must parse back as the pair one writer stored.
            let mut parts = r.fields.split(' ');
            let i = parts.next().unwrap().strip_prefix("i=").unwrap();
            let t = parts.next().unwrap().strip_prefix("t=").unwrap();
            assert!(i.parse::<u64>().unwrap() < 500);
            assert!(t.parse::<u64>().unwrap() < 4);
        }
        assert_eq!(rec.recorded(), 2000);
    }
}

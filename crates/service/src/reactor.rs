//! Single-threaded readiness-loop server core.
//!
//! The default [`crate::server::Server`] runs every connection on one
//! thread: a vendored mio-style poller (epoll on Linux, poll(2)
//! fallback) multiplexes the listener, a wakeup token, and every client
//! socket. Each connection owns an incremental [`FrameDecoder`] that
//! reassembles the length-prefixed wire protocol as bytes arrive, so
//! clients can pipeline many requests without waiting for responses;
//! responses queue in a per-connection outbound buffer drained with
//! `WouldBlock`-aware writes. Replication subscribers ride the same
//! loop through [`WindowedSender`] — the hub's publish notifier fires
//! the poller's waker, so new batches are pushed without a dedicated
//! sender thread per follower.
//!
//! The loop fixes three failure modes of the thread-per-connection
//! design it replaces:
//!
//! - **fd/thread exhaustion** — connections are capped
//!   ([`ReactorConfig::max_connections`]); past the cap the server
//!   accepts, writes a protocol `Error` frame, and closes, instead of
//!   spawning until the process hits a limit.
//! - **accept-error spin** — persistent `accept` failures (`EMFILE`,
//!   `ENFILE`) back off exponentially via [`AcceptPacer`]: the listener
//!   is deregistered from the poller for the backoff window, so a
//!   level-triggered readable listener can't re-deliver the same error
//!   in a hot loop.
//! - **shutdown stall** — `shutdown()` rings the poller's waker, so the
//!   loop observes the stop flag even when no connection ever arrives;
//!   pending responses get a short grace flush before sockets close.
//!
//! Requests dispatch inline on the loop thread; heavy ingest still goes
//! through the service's batched worker pipeline, so the loop only pays
//! for framing and queue handoff. A deliberately synchronous request
//! (`Flush`) blocks the loop for its duration — acceptable for a
//! control frame, and documented in the README.
//!
//! This file is inside the panic-free zone (`cargo xtask lint`): no
//! unwraps, no panicking indexing — malformed input or a surprising
//! peer must never take down the loop that owns every connection.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
// ordering: all connection/accept counters here are Relaxed — they are
// monotonic statistics (plus one gauge) read by scrapes and tests that
// poll until a value settles; nothing orders other memory against them.
// The stopping flag is Relaxed for the same reason as in server.rs: the
// stop_lock mutex write in signal_stop carries the happens-before, and
// the loop re-checks on every wakeup.
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mio::unix::SourceFd;
use mio::{Events, Interest, Poll, Token};

use crate::replication::{SenderFrame, StreamConfig, WindowedSender};
use crate::server::{handle_request, Shared};
use crate::wire::{decode_request, encode_response, write_frame, FrameDecoder, Request, Response};

/// Poller token for the listening socket.
pub(crate) const LISTENER: Token = Token(0);
/// Poller token for the shutdown/publish waker.
pub(crate) const WAKER: Token = Token(1);
/// First token handed to an accepted connection.
const FIRST_CONN: usize = 2;

/// How long a stopping reactor keeps polling to flush queued responses
/// before closing sockets that still have bytes pending.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(250);

/// Per-read scratch size. One connection drains at most this much per
/// `read` call; the loop keeps reading until `WouldBlock`, so the size
/// only bounds syscall granularity, not throughput.
const READ_CHUNK: usize = 16 * 1024;

/// Once the consumed prefix of an outbound buffer passes this, the
/// buffer is compacted so a long-lived pipelining connection doesn't
/// grow without bound.
const OUT_COMPACT_AT: usize = 64 * 1024;

/// Tuning knobs for the readiness loop. `Default` matches what
/// `peel-server` ships with; tests shrink the numbers.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Live-connection cap. An accept past the cap is answered with a
    /// protocol `Error` frame and closed (counted in
    /// `peel_connections_refused_total`).
    pub max_connections: usize,
    /// Close connections with no traffic for this long (`None` turns
    /// the reaper off). Replication subscribers are exempt — an idle
    /// follower is normal between batches.
    pub idle_timeout: Option<Duration>,
    /// Initial accept-error backoff; doubles per consecutive failure.
    pub accept_backoff: Duration,
    /// Backoff ceiling.
    pub accept_backoff_max: Duration,
    /// Pause reading from a connection whose outbound buffer exceeds
    /// this many pending bytes, until the buffer drains — bounds the
    /// memory a fast pipeliner on a slow read path can pin.
    pub write_highwater: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 4096,
            idle_timeout: Some(Duration::from_secs(60)),
            accept_backoff: Duration::from_millis(10),
            accept_backoff_max: Duration::from_secs(1),
            write_highwater: 4 << 20,
        }
    }
}

/// Exponential backoff for persistent `accept` failures (`EMFILE`,
/// `ENFILE`, and anything else that isn't a transient per-connection
/// error). Shared by the reactor (which deregisters the listener for
/// the backoff window) and the blocking server (which sleeps it off in
/// stop-aware slices).
pub(crate) struct AcceptPacer {
    base: Duration,
    max: Duration,
    cur: Duration,
    until: Option<Instant>,
}

impl AcceptPacer {
    pub(crate) fn new(base: Duration, max: Duration) -> AcceptPacer {
        let base = base.max(Duration::from_millis(1));
        AcceptPacer {
            base,
            max: max.max(base),
            cur: base,
            until: None,
        }
    }

    /// Record an accept failure; returns the delay to impose before the
    /// next accept attempt. Consecutive failures double the delay up to
    /// the ceiling.
    pub(crate) fn on_error(&mut self, now: Instant) -> Duration {
        let delay = self.cur;
        self.until = Some(now + delay);
        self.cur = self.cur.saturating_mul(2).min(self.max);
        delay
    }

    /// A connection was accepted: the error condition cleared, so the
    /// next failure starts from the base delay again.
    pub(crate) fn on_success(&mut self) {
        self.cur = self.base;
        self.until = None;
    }

    /// When the current backoff window ends (`None` when not backing
    /// off).
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.until
    }

    /// True while accepts should stay paused.
    pub(crate) fn backing_off(&self, now: Instant) -> bool {
        match self.until {
            Some(t) => now < t,
            None => false,
        }
    }
}

/// One client connection's state: reassembly buffer in, byte queue out,
/// and (for subscribed followers) the windowed replication sender.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    last_activity: Instant,
    /// Stop reading; once `out` drains, close. Set on half-close (EOF
    /// with responses still queued), protocol poison, and shutdown.
    close_after_flush: bool,
    /// Present once the connection sent `Subscribe`; the loop pumps
    /// replication frames into `out` and routes inbound frames to the
    /// sender as acks.
    repl: Option<WindowedSender>,
    /// Reading is gated off while the outbound buffer is above the
    /// highwater mark (invariant: only while `out` is non-empty, so
    /// WRITABLE interest keeps the connection schedulable).
    reads_paused: bool,
    /// Interests currently registered with the poller, as
    /// (readable, writable) — reregistration happens only on change.
    registered: (bool, bool),
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len().saturating_sub(self.out_pos)
    }

    /// Queue one frame (length prefix + payload) for writing. An
    /// oversized payload poisons the connection instead of panicking.
    fn push_frame(&mut self, payload: &[u8]) {
        if write_frame(&mut self.out, payload).is_err() {
            self.close_after_flush = true;
        }
    }

    fn wants_read(&self) -> bool {
        !self.reads_paused && !self.close_after_flush
    }

    fn wants_write(&self) -> bool {
        self.pending_out() > 0
    }
}

/// What processing one connection event decided about the connection's
/// fate.
enum ConnFate {
    Keep,
    Close,
}

/// Run the readiness loop until [`Shared::signal_stop`] fires. The
/// listener must already be nonblocking; `poll` must already have the
/// waker registered under [`WAKER`] (done by `Server::bind_with`, so a
/// shutdown issued before this thread is scheduled still wakes it).
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>, poll: Poll, cfg: ReactorConfig) {
    let pacer = AcceptPacer::new(cfg.accept_backoff, cfg.accept_backoff_max);
    let mut reactor = Reactor {
        listener,
        shared,
        poll,
        cfg,
        conns: HashMap::new(),
        next_token: FIRST_CONN,
        pacer,
        listener_registered: false,
        stopping: false,
        grace_deadline: None,
    };
    reactor.run_loop();
}

struct Reactor {
    listener: TcpListener,
    shared: Arc<Shared>,
    poll: Poll,
    cfg: ReactorConfig,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    pacer: AcceptPacer,
    listener_registered: bool,
    stopping: bool,
    grace_deadline: Option<Instant>,
}

impl Reactor {
    fn run_loop(&mut self) {
        let fd = self.listener.as_raw_fd();
        if self
            .poll
            .registry()
            .register(&mut SourceFd(&fd), LISTENER, Interest::READABLE)
            .is_err()
        {
            // Without a pollable listener the loop can't serve; fall
            // into the stopped state so shutdown() still completes.
            self.shared.signal_stop();
        } else {
            self.listener_registered = true;
        }
        let mut events = Events::with_capacity(256);
        loop {
            let now = Instant::now();
            if !self.stopping && self.shared.stopping.load(Relaxed) {
                self.begin_shutdown(now);
            }
            if self.stopping && self.shutdown_complete(now) {
                break;
            }
            let timeout = self.next_timeout(now);
            if self.poll.poll(&mut events, timeout).is_err() {
                // Poller failure is unrecoverable for a readiness loop;
                // stop rather than spin on a broken fd.
                self.shared.signal_stop();
                self.begin_shutdown(Instant::now());
                break;
            }
            let now = Instant::now();
            let mut tokens: Vec<(usize, bool, bool)> = Vec::with_capacity(events.iter().count());
            let mut accept_ready = false;
            for ev in events.iter() {
                match ev.token() {
                    LISTENER => accept_ready = true,
                    WAKER => {
                        // Wakes mean "stop flag or new replication
                        // data"; both are handled below.
                    }
                    Token(t) => tokens.push((t, ev.is_readable(), ev.is_writable())),
                }
            }
            if !self.stopping && self.shared.stopping.load(Relaxed) {
                self.begin_shutdown(now);
            }
            if accept_ready && !self.stopping {
                self.accept_ready(now);
            }
            for (t, readable, writable) in tokens {
                self.conn_event(t, readable, writable, now);
            }
            self.after_wake(now);
        }
        self.close_all();
    }

    /// Timer-driven work plus replication pumping; runs after every
    /// poll round so waker-driven publishes and deadline expiries are
    /// handled even when no socket was ready.
    fn after_wake(&mut self, now: Instant) {
        // Backoff window over: resume accepting.
        if !self.stopping && !self.listener_registered && !self.pacer.backing_off(now) {
            let fd = self.listener.as_raw_fd();
            if self
                .poll
                .registry()
                .register(&mut SourceFd(&fd), LISTENER, Interest::READABLE)
                .is_ok()
            {
                self.listener_registered = true;
                // The listener may have become readable during the
                // pause; try an accept round rather than waiting for an
                // edge that (on the portable backend) already fired.
                self.accept_ready(now);
            }
        }
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for t in tokens {
            let fate = self.pump_conn(t, now);
            if matches!(fate, ConnFate::Close) {
                self.close_conn(t);
            }
        }
        if let Some(idle) = self.cfg.idle_timeout {
            if !self.stopping {
                self.reap_idle(now, idle);
            }
        }
    }

    /// Replication pump + flush + idle/interest upkeep for one
    /// connection.
    fn pump_conn(&mut self, t: usize, now: Instant) -> ConnFate {
        let Some(conn) = self.conns.get_mut(&t) else {
            return ConnFate::Keep;
        };
        if let Some(repl) = conn.repl.as_mut() {
            let out = &mut conn.out;
            let mut emit = |p: &[u8]| {
                let _ = write_frame(out, p);
            };
            if repl.deadline().is_some_and(|d| now >= d) && !repl.on_deadline(now, &mut emit) {
                // Ack-timeout retries exhausted: the follower is gone
                // or wedged; drop it so the hub can retire the stream.
                return ConnFate::Close;
            }
            let alive = repl.pump(now, &mut emit);
            if !alive {
                conn.close_after_flush = true;
            }
        }
        if conn.pending_out() > 0 {
            if let ConnFate::Close = flush_out(conn) {
                return ConnFate::Close;
            }
        }
        if conn.reads_paused && conn.pending_out() == 0 {
            conn.reads_paused = false;
        }
        if conn.close_after_flush && conn.pending_out() == 0 {
            return ConnFate::Close;
        }
        self.update_interest(t);
        ConnFate::Keep
    }

    /// Accept until `WouldBlock`, enforcing the connection cap and the
    /// error pacer.
    fn accept_ready(&mut self, now: Instant) {
        let metrics = self.shared.service.metrics_handle();
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.pacer.on_success();
                    if self.conns.len() >= self.cfg.max_connections {
                        metrics.conns_refused.fetch_add(1, Relaxed);
                        refuse(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Replication acks and pipelined small requests are
                    // latency-sensitive; without nodelay, Nagle +
                    // delayed ACKs add ~40 ms stalls.
                    let _ = stream.set_nodelay(true);
                    let t = self.next_token;
                    self.next_token = self.next_token.saturating_add(1);
                    let fd = stream.as_raw_fd();
                    if self
                        .poll
                        .registry()
                        .register(&mut SourceFd(&fd), Token(t), Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    metrics.conns_accepted.fetch_add(1, Relaxed);
                    metrics.conns_live.fetch_add(1, Relaxed);
                    self.conns.insert(
                        t,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            out: Vec::new(),
                            out_pos: 0,
                            last_activity: now,
                            close_after_flush: false,
                            repl: None,
                            reads_paused: false,
                            registered: (true, false),
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // Transient, per-connection: the peer gave up between
                // SYN and accept. Not an accept-path failure.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(_) => {
                    // EMFILE/ENFILE and friends: accept() will keep
                    // failing until fds free up, and a level-triggered
                    // readable listener would re-deliver instantly —
                    // the hot spin this module exists to fix. Count it,
                    // deregister the listener, and retry after the
                    // backoff.
                    metrics.accept_errors.fetch_add(1, Relaxed);
                    self.pacer.on_error(now);
                    if self.listener_registered {
                        let fd = self.listener.as_raw_fd();
                        let _ = self.poll.registry().deregister(&mut SourceFd(&fd));
                        self.listener_registered = false;
                    }
                    break;
                }
            }
        }
    }

    /// Handle readiness on one connection: drain reads, process every
    /// complete frame, flush writes.
    fn conn_event(&mut self, t: usize, readable: bool, writable: bool, now: Instant) {
        let mut fate = ConnFate::Keep;
        let mut eof = false;
        {
            let Some(conn) = self.conns.get_mut(&t) else {
                return;
            };
            if readable && conn.wants_read() {
                conn.last_activity = now;
                let mut chunk = [0u8; READ_CHUNK];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => conn.decoder.push(chunk.get(..n).unwrap_or(&[])),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            fate = ConnFate::Close;
                            break;
                        }
                    }
                }
            }
            if writable && matches!(fate, ConnFate::Keep) {
                conn.last_activity = now;
            }
        }
        if matches!(fate, ConnFate::Keep) {
            fate = self.process_frames(t, now);
        }
        if eof && matches!(fate, ConnFate::Keep) {
            // Half-close: the client finished sending but may still be
            // reading pipelined responses — flush what's queued, then
            // close.
            if let Some(conn) = self.conns.get_mut(&t) {
                if conn.pending_out() == 0 && conn.repl.is_none() {
                    fate = ConnFate::Close;
                } else {
                    conn.close_after_flush = true;
                }
            }
        }
        if matches!(fate, ConnFate::Keep) {
            fate = self.pump_conn(t, now);
        }
        if matches!(fate, ConnFate::Close) {
            self.close_conn(t);
        }
    }

    /// Decode and dispatch every complete frame buffered on `t`.
    fn process_frames(&mut self, t: usize, now: Instant) -> ConnFate {
        loop {
            let (payload, is_repl) = {
                let Some(conn) = self.conns.get_mut(&t) else {
                    return ConnFate::Keep;
                };
                // Over the highwater mark: stop decoding (and reading)
                // until the peer drains responses.
                if conn.pending_out() > self.cfg.write_highwater {
                    conn.reads_paused = true;
                    return ConnFate::Keep;
                }
                match conn.decoder.next_frame() {
                    Ok(Some(p)) => (p, conn.repl.is_some()),
                    Ok(None) => return ConnFate::Keep,
                    Err(e) => {
                        // Oversized/poisoned stream: answer once, then
                        // hang up (the decoder can't resynchronize).
                        let resp = Response::Error(format!("bad frame: {e}"));
                        conn.push_frame(&encode_response(&resp));
                        conn.close_after_flush = true;
                        return ConnFate::Keep;
                    }
                }
            };
            if is_repl {
                if let ConnFate::Close = self.repl_frame(t, &payload, now) {
                    return ConnFate::Close;
                }
                continue;
            }
            let req = match decode_request(&payload) {
                Ok(req) => req,
                Err(e) => {
                    let resp = Response::Error(format!("bad request: {e}"));
                    if let Some(conn) = self.conns.get_mut(&t) {
                        conn.push_frame(&encode_response(&resp));
                    }
                    continue;
                }
            };
            if let Request::Subscribe { last_seq } = req {
                self.subscribe_conn(t, last_seq, now);
                continue;
            }
            // Same per-request observability as the blocking handler:
            // a span around dispatch, latency into the class histogram.
            let class = req.class_index();
            let span = match req.shard_hint() {
                Some(shard) => tracing::span(
                    "request",
                    &[("kind", req.kind().into()), ("shard", shard.into())],
                ),
                None => tracing::span("request", &[("kind", req.kind().into())]),
            };
            let started = Instant::now();
            let (resp, stop_after) = span.in_scope(|| handle_request(&self.shared.service, req));
            drop(span);
            self.shared
                .service
                .metrics_handle()
                .record_request(class, started.elapsed().as_nanos() as u64);
            if let Some(conn) = self.conns.get_mut(&t) {
                conn.push_frame(&encode_response(&resp));
            }
            if stop_after {
                self.shared.signal_stop();
                self.begin_shutdown(now);
                return ConnFate::Keep;
            }
        }
    }

    /// Convert a connection into a replication stream: ack the
    /// subscribe, then attach a [`WindowedSender`] the loop pumps.
    fn subscribe_conn(&mut self, t: usize, last_seq: u64, now: Instant) {
        let sub = self.shared.service.replication().subscribe();
        let cfg = StreamConfig {
            window: self.shared.service.config().repl_window.max(1),
            ..StreamConfig::default()
        };
        let Some(conn) = self.conns.get_mut(&t) else {
            return;
        };
        conn.push_frame(&encode_response(&Response::Ok { accepted: 0 }));
        let mut sender = WindowedSender::new(sub, last_seq, cfg);
        let out = &mut conn.out;
        let mut emit = |p: &[u8]| {
            let _ = write_frame(out, p);
        };
        // Send whatever is already queued (catch-up after resume).
        let alive = sender.pump(now, &mut emit);
        if !alive {
            conn.close_after_flush = true;
        }
        conn.repl = Some(sender);
    }

    /// An inbound frame on a subscribed connection: route to the
    /// sender (acks advance the window; a higher-epoch ack deposes us).
    fn repl_frame(&mut self, t: usize, payload: &[u8], now: Instant) -> ConnFate {
        let verdict = {
            let Some(conn) = self.conns.get_mut(&t) else {
                return ConnFate::Keep;
            };
            let Some(repl) = conn.repl.as_mut() else {
                return ConnFate::Keep;
            };
            repl.on_frame(payload, now)
        };
        match verdict {
            SenderFrame::Continue => ConnFate::Keep,
            SenderFrame::Fenced(epoch) => {
                // A follower acked at a higher epoch: this node has
                // been deposed. Adopt the fence and step down.
                self.shared.service.fence_epoch(epoch);
                self.shared.service.set_leading(false);
                ConnFate::Close
            }
            SenderFrame::Protocol => ConnFate::Close,
        }
    }

    /// Reregister a connection if its desired interest set changed.
    fn update_interest(&mut self, t: usize) {
        let Some(conn) = self.conns.get_mut(&t) else {
            return;
        };
        let want = (conn.wants_read(), conn.wants_write());
        if want == conn.registered {
            return;
        }
        let interest = match want {
            (true, true) => Interest::READABLE | Interest::WRITABLE,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            // A paused, fully-flushed connection can only be waiting
            // for pump_conn to unpause it, which happens before the
            // next poll; keep READABLE so the fd stays registered.
            (false, false) => Interest::READABLE,
        };
        let fd = conn.stream.as_raw_fd();
        if self
            .poll
            .registry()
            .reregister(&mut SourceFd(&fd), Token(t), interest)
            .is_ok()
        {
            conn.registered = want;
        }
    }

    /// Close connections idle past the deadline (not subscribed, no
    /// pending output).
    fn reap_idle(&mut self, now: Instant, idle: Duration) {
        let dead: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.repl.is_none()
                    && c.pending_out() == 0
                    && now.duration_since(c.last_activity) >= idle
            })
            .map(|(t, _)| *t)
            .collect();
        for t in dead {
            self.shared
                .service
                .metrics_handle()
                .conns_idle_reaped
                .fetch_add(1, Relaxed);
            self.close_conn(t);
        }
    }

    fn close_conn(&mut self, t: usize) {
        if let Some(conn) = self.conns.remove(&t) {
            let fd = conn.stream.as_raw_fd();
            let _ = self.poll.registry().deregister(&mut SourceFd(&fd));
            self.shared
                .service
                .metrics_handle()
                .conns_live
                .fetch_sub(1, Relaxed);
        }
    }

    fn close_all(&mut self) {
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for t in tokens {
            self.close_conn(t);
        }
    }

    /// Stop accepting and start the grace-flush window: connections
    /// with queued responses get [`SHUTDOWN_GRACE`] to drain; everyone
    /// else closes now.
    fn begin_shutdown(&mut self, now: Instant) {
        if self.stopping {
            return;
        }
        self.stopping = true;
        self.grace_deadline = Some(now + SHUTDOWN_GRACE);
        if self.listener_registered {
            let fd = self.listener.as_raw_fd();
            let _ = self.poll.registry().deregister(&mut SourceFd(&fd));
            self.listener_registered = false;
        }
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for t in tokens {
            let Some(conn) = self.conns.get_mut(&t) else {
                continue;
            };
            // One last opportunistic flush; drop the stream if nothing
            // is pending (replication subscribers close via the hub's
            // close -> pump-drained path, but shutdown doesn't wait for
            // acks, so they are treated like everyone else here).
            conn.close_after_flush = true;
            conn.reads_paused = true;
            let fate = self.pump_conn(t, now);
            if matches!(fate, ConnFate::Close) {
                self.close_conn(t);
            }
        }
    }

    fn shutdown_complete(&mut self, now: Instant) -> bool {
        if self.conns.is_empty() {
            return true;
        }
        if self.grace_deadline.is_some_and(|d| now >= d) {
            self.close_all();
            return true;
        }
        false
    }

    /// The earliest pending deadline: accept-backoff resume, idle
    /// sweep, replication ack timers, shutdown grace.
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let mut deadline: Option<Instant> = None;
        let mut fold = |d: Option<Instant>| {
            deadline = match (deadline, d) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        };
        fold(self.pacer.deadline());
        fold(self.grace_deadline);
        for conn in self.conns.values() {
            if let Some(repl) = conn.repl.as_ref() {
                fold(repl.deadline());
            }
        }
        if let Some(idle) = self.cfg.idle_timeout {
            if !self.stopping {
                let next_reap = self
                    .conns
                    .values()
                    .filter(|c| c.repl.is_none() && c.pending_out() == 0)
                    .map(|c| c.last_activity + idle)
                    .min();
                fold(next_reap);
            }
        }
        deadline.map(|d| d.saturating_duration_since(now))
    }
}

/// Best-effort flush of the outbound buffer; `Close` on a dead socket.
fn flush_out(conn: &mut Conn) -> ConnFate {
    while let Some(pending) = conn.out.get(conn.out_pos..) {
        if pending.is_empty() {
            break;
        }
        match conn.stream.write(pending) {
            Ok(0) => return ConnFate::Close,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ConnFate::Close,
        }
    }
    if conn.out_pos >= conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    } else if conn.out_pos >= OUT_COMPACT_AT {
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    ConnFate::Keep
}

/// Over the connection cap: answer with a protocol error so the client
/// sees a reason instead of a silent reset, then hang up.
fn refuse(stream: TcpStream) {
    let _ = stream.set_nonblocking(true);
    let resp = Response::Error("connection limit reached; retry later".into());
    let mut frame = Vec::new();
    let _ = write_frame(&mut frame, &encode_response(&resp));
    // One nonblocking write: an error frame this small fits the socket
    // buffer of a just-accepted connection; if not, the close alone
    // carries the message.
    let mut s = stream;
    let _ = s.write(&frame);
    let _ = s.shutdown(std::net::Shutdown::Both);
}

//! Framed-transport abstraction for the replication stream.
//!
//! The replication sender and applier loops in [`crate::replication`] are
//! written against the [`Transport`] trait — one frame payload in, one
//! frame payload out — rather than `TcpStream` directly, so the exact
//! same code paths run over real sockets in production
//! ([`FramedTcp`]) and over a deterministic in-memory double in tests
//! ([`SimTransport`]). The double replays a pre-recorded frame sequence
//! that a [`FaultPlan`] has mangled — dropping, duplicating, reordering,
//! and truncating frames by seed — which is how the fault-injection
//! convergence tests prove anti-entropy repairs whatever the stream
//! loses.

use std::collections::VecDeque;
use std::io::BufWriter;
use std::net::TcpStream;

use crate::wire::{read_frame, write_frame, WireError};

/// One bidirectional stream of wire frames.
pub trait Transport {
    /// Send one frame payload.
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError>;
    /// Receive the next frame payload; `Ok(None)` means the peer closed
    /// cleanly (or, for replay doubles, that the recording is exhausted).
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError>;
}

/// The production transport: length-prefixed frames over a TCP stream.
pub struct FramedTcp {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl FramedTcp {
    /// Wrap an already-connected stream pair (a read clone plus a
    /// buffered writer over the same socket).
    pub fn from_parts(reader: TcpStream, writer: BufWriter<TcpStream>) -> Self {
        FramedTcp { reader, writer }
    }

    /// Wrap a freshly connected stream.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        let reader = stream.try_clone()?;
        Ok(FramedTcp {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// A clone of the underlying socket, for out-of-band shutdown (a
    /// blocked `recv` returns once the clone is shut down).
    pub fn peer(&self) -> std::io::Result<TcpStream> {
        self.reader.try_clone()
    }
}

impl Transport for FramedTcp {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        write_frame(&mut self.writer, payload)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        read_frame(&mut self.reader)
    }
}

/// In-memory test double: `recv` replays a recorded (and possibly
/// mangled) frame sequence; `send` captures outgoing frames for
/// inspection.
pub struct SimTransport {
    incoming: VecDeque<Vec<u8>>,
    /// Every frame the code under test sent (e.g. replication acks).
    pub sent: Vec<Vec<u8>>,
}

impl SimTransport {
    /// A transport that will replay `frames` in order and then report a
    /// clean close.
    pub fn new(frames: Vec<Vec<u8>>) -> Self {
        SimTransport {
            incoming: frames.into(),
            sent: Vec::new(),
        }
    }
}

impl Transport for SimTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        self.sent.push(payload.to_vec());
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        Ok(self.incoming.pop_front())
    }
}

// --- Deterministic fault injection ------------------------------------------

/// SplitMix64 — a tiny self-contained PRNG so fault patterns depend on
/// nothing but the seed.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [0, n).
    fn below(&mut self, n: usize) -> usize {
        ((self.next() as u128 * n as u128) >> 64) as usize
    }
}

/// A deterministic frame-mangling schedule: per-frame probabilities of
/// dropping, duplicating, and truncating, plus a reordering intensity,
/// all driven by one seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed; the same plan over the same frames always produces the
    /// same mangled sequence.
    pub seed: u64,
    /// Probability a frame is dropped outright.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame's payload is cut short (the decoder must
    /// error, never panic).
    pub truncate: f64,
    /// Number of random adjacent-pair swap passes over the final
    /// sequence, as a fraction of its length (0.0 = in-order delivery).
    pub reorder: f64,
}

impl FaultPlan {
    /// A plan that delivers everything untouched.
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            truncate: 0.0,
            reorder: 0.0,
        }
    }

    /// A distinct named fault pattern per seed, cycling through pure and
    /// mixed failure modes: drops only, duplicates only, heavy
    /// reordering, truncation, light everything, heavy drops,
    /// duplicate+reorder, truncate+drop.
    pub fn for_seed(seed: u64) -> Self {
        let base = FaultPlan::clean(seed);
        match seed % 8 {
            0 => FaultPlan { drop: 0.3, ..base },
            1 => FaultPlan {
                duplicate: 0.3,
                ..base
            },
            2 => FaultPlan {
                reorder: 2.0,
                ..base
            },
            3 => FaultPlan {
                truncate: 0.25,
                ..base
            },
            4 => FaultPlan {
                drop: 0.15,
                duplicate: 0.15,
                truncate: 0.1,
                reorder: 0.5,
                ..base
            },
            5 => FaultPlan { drop: 0.6, ..base },
            6 => FaultPlan {
                duplicate: 0.25,
                reorder: 1.0,
                ..base
            },
            _ => FaultPlan {
                truncate: 0.2,
                drop: 0.2,
                ..base
            },
        }
    }

    /// Apply the plan to a frame sequence. Purely a function of
    /// `(self, frames)` — no global state, no clock.
    pub fn mangle(&self, frames: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut rng = SplitMix(self.seed ^ 0xfa17_0000_0000_0001);
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(frames.len());
        for f in frames {
            if rng.unit() < self.drop {
                continue;
            }
            let copies = if rng.unit() < self.duplicate { 2 } else { 1 };
            for _ in 0..copies {
                let mut frame = f.clone();
                if rng.unit() < self.truncate && !frame.is_empty() {
                    frame.truncate(rng.below(frame.len()));
                }
                out.push(frame);
            }
        }
        let swaps = (out.len() as f64 * self.reorder) as usize;
        for _ in 0..swaps {
            if out.len() < 2 {
                break;
            }
            let i = rng.below(out.len() - 1);
            out.swap(i, i + 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: u8) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i; 8]).collect()
    }

    #[test]
    fn clean_plan_is_identity() {
        let fs = frames(10);
        assert_eq!(FaultPlan::clean(3).mangle(&fs), fs);
    }

    #[test]
    fn mangle_is_deterministic_per_seed() {
        let fs = frames(50);
        for seed in 0..8 {
            let plan = FaultPlan::for_seed(seed);
            assert_eq!(plan.mangle(&fs), plan.mangle(&fs), "seed {seed}");
        }
        // And different seeds genuinely differ.
        assert_ne!(
            FaultPlan::for_seed(0).mangle(&fs),
            FaultPlan::for_seed(5).mangle(&fs)
        );
    }

    #[test]
    fn each_named_pattern_exercises_its_fault() {
        let fs = frames(200);
        let dropped = FaultPlan::for_seed(0).mangle(&fs);
        assert!(dropped.len() < fs.len(), "drop pattern dropped nothing");
        let duped = FaultPlan::for_seed(1).mangle(&fs);
        assert!(duped.len() > fs.len(), "dup pattern duplicated nothing");
        let reordered = FaultPlan::for_seed(2).mangle(&fs);
        assert_eq!(reordered.len(), fs.len());
        assert_ne!(reordered, fs, "reorder pattern left order intact");
        let truncated = FaultPlan::for_seed(3).mangle(&fs);
        assert!(
            truncated.iter().any(|f| f.len() < 8),
            "truncate pattern cut nothing"
        );
    }

    #[test]
    fn sim_transport_replays_then_closes() {
        let mut t = SimTransport::new(frames(2));
        assert_eq!(t.recv().unwrap().unwrap(), vec![0u8; 8]);
        t.send(b"ack").unwrap();
        assert_eq!(t.recv().unwrap().unwrap(), vec![1u8; 8]);
        assert!(t.recv().unwrap().is_none());
        assert_eq!(t.sent, vec![b"ack".to_vec()]);
    }
}

//! Framed-transport abstraction for the replication stream.
//!
//! The replication sender and applier loops in [`crate::replication`] are
//! written against the [`Transport`] trait — one frame payload in, one
//! frame payload out — rather than `TcpStream` directly, so the exact
//! same code paths run over real sockets in production
//! ([`FramedTcp`]) and over a deterministic in-memory double in tests
//! ([`SimTransport`]). The double replays a pre-recorded frame sequence
//! that a [`FaultPlan`] has mangled — dropping, duplicating, reordering,
//! and truncating frames by seed — which is how the fault-injection
//! convergence tests prove anti-entropy repairs whatever the stream
//! loses. A third implementation, [`SimDuplex`], is a connected pair of
//! in-memory ends with a fixed one-way delivery delay, used to model a
//! WAN RTT in the windowed-replication benches. The windowed sender's
//! retransmit timer rests on [`Transport::recv_timeout`], a bounded
//! wait that never loses frame sync (partial bytes stay buffered).

use std::collections::VecDeque;
use std::io::{BufWriter, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::wire::{write_frame, FrameDecoder, WireError};

/// What a bounded-wait receive ([`Transport::recv_timeout`]) produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A whole frame payload arrived.
    Frame(Vec<u8>),
    /// The peer closed cleanly between frames.
    Closed,
    /// No whole frame arrived within the timeout; any partial bytes are
    /// retained, so a later receive resumes mid-frame without losing
    /// sync.
    TimedOut,
}

/// One bidirectional stream of wire frames.
pub trait Transport {
    /// Send one frame payload.
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError>;
    /// Receive the next frame payload; `Ok(None)` means the peer closed
    /// cleanly (or, for replay doubles, that the recording is exhausted).
    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError>;
    /// Receive the next frame payload, waiting at most `timeout`. The
    /// default implementation ignores the timeout and blocks — correct
    /// for replay doubles whose `recv` never blocks; transports over
    /// real sockets override it.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<RecvOutcome, WireError> {
        let _ = timeout;
        Ok(match self.recv()? {
            Some(payload) => RecvOutcome::Frame(payload),
            None => RecvOutcome::Closed,
        })
    }
}

/// The production transport: length-prefixed frames over a TCP stream.
/// Incoming bytes accumulate in a reassembly buffer, so a timed-out
/// receive that caught half a frame keeps those bytes for the next call
/// instead of losing frame sync.
pub struct FramedTcp {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    decoder: FrameDecoder,
}

impl FramedTcp {
    /// Wrap an already-connected stream pair (a read clone plus a
    /// buffered writer over the same socket).
    pub fn from_parts(reader: TcpStream, writer: BufWriter<TcpStream>) -> Self {
        FramedTcp {
            reader,
            writer,
            decoder: FrameDecoder::new(),
        }
    }

    /// Wrap a freshly connected stream.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        let reader = stream.try_clone()?;
        Ok(FramedTcp {
            reader,
            writer: BufWriter::new(stream),
            decoder: FrameDecoder::new(),
        })
    }

    /// A clone of the underlying socket, for out-of-band shutdown (a
    /// blocked `recv` returns once the clone is shut down).
    pub fn peer(&self) -> std::io::Result<TcpStream> {
        self.reader.try_clone()
    }

    /// Read from the socket until a whole frame is buffered, the peer
    /// closes, or (when the socket has a read timeout set) the wait
    /// expires. Reassembly lives in [`FrameDecoder`] — the same
    /// incremental decoder the reactor server runs per connection.
    fn fill_until_frame(&mut self) -> Result<RecvOutcome, WireError> {
        loop {
            if let Some(payload) = self.decoder.next_frame()? {
                return Ok(RecvOutcome::Frame(payload));
            }
            let mut chunk = [0u8; 4096];
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    if self.decoder.is_empty() {
                        return Ok(RecvOutcome::Closed);
                    }
                    return Err(WireError::UnexpectedEof);
                }
                Ok(n) => self.decoder.push(chunk.get(..n).unwrap_or(&[])),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Partial bytes stay buffered; frame sync survives.
                    return Ok(RecvOutcome::TimedOut);
                }
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }
}

impl Transport for FramedTcp {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        write_frame(&mut self.writer, payload)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        self.reader.set_read_timeout(None).map_err(WireError::Io)?;
        match self.fill_until_frame()? {
            RecvOutcome::Frame(payload) => Ok(Some(payload)),
            // A blocking socket cannot time out; treat it as a close if
            // a platform returns it anyway.
            RecvOutcome::Closed | RecvOutcome::TimedOut => Ok(None),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<RecvOutcome, WireError> {
        // Duration::ZERO means "no timeout" to set_read_timeout, which
        // is the opposite of what a zero budget asks for.
        let timeout = timeout.max(Duration::from_millis(1));
        self.reader
            .set_read_timeout(Some(timeout))
            .map_err(WireError::Io)?;
        self.fill_until_frame()
    }
}

/// In-memory test double: `recv` replays a recorded (and possibly
/// mangled) frame sequence; `send` captures outgoing frames for
/// inspection.
pub struct SimTransport {
    incoming: VecDeque<Vec<u8>>,
    /// Every frame the code under test sent (e.g. replication acks).
    pub sent: Vec<Vec<u8>>,
}

impl SimTransport {
    /// A transport that will replay `frames` in order and then report a
    /// clean close.
    pub fn new(frames: Vec<Vec<u8>>) -> Self {
        SimTransport {
            incoming: frames.into(),
            sent: Vec::new(),
        }
    }
}

impl Transport for SimTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        self.sent.push(payload.to_vec());
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        Ok(self.incoming.pop_front())
    }
}

// --- Simulated-latency duplex -----------------------------------------------

/// One end of an in-memory duplex link with a fixed one-way delivery
/// delay — the double the replication benches use to model a WAN RTT
/// without real sockets. Frames sent on one end become receivable on
/// the other only after the configured delay; `recv` blocks (sleeping)
/// until delivery time, and `recv_timeout` honors its budget, retaining
/// an early-arrived-but-undeliverable frame for the next call.
pub struct SimDuplex {
    tx: std::sync::mpsc::Sender<(Instant, Vec<u8>)>,
    rx: std::sync::mpsc::Receiver<(Instant, Vec<u8>)>,
    /// A frame pulled off the channel whose delivery time hadn't come
    /// before a timeout expired; delivered first by the next receive.
    peeked: Option<(Instant, Vec<u8>)>,
    delay: Duration,
}

/// Build a connected pair of [`SimDuplex`] ends with the given one-way
/// delay (an RTT is two one-way delays: request out, ack back).
pub fn sim_duplex(one_way: Duration) -> (SimDuplex, SimDuplex) {
    let (atx, arx) = std::sync::mpsc::channel();
    let (btx, brx) = std::sync::mpsc::channel();
    (
        SimDuplex {
            tx: atx,
            rx: brx,
            peeked: None,
            delay: one_way,
        },
        SimDuplex {
            tx: btx,
            rx: arx,
            peeked: None,
            delay: one_way,
        },
    )
}

impl Transport for SimDuplex {
    fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        // A disconnected peer is a clean close from the sender's view;
        // the next recv on the other end reports it.
        let _ = self
            .tx
            .send((Instant::now() + self.delay, payload.to_vec()));
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let (at, payload) = match self.peeked.take() {
            Some(x) => x,
            None => match self.rx.recv() {
                Ok(x) => x,
                Err(_) => return Ok(None),
            },
        };
        let now = Instant::now();
        if at > now {
            std::thread::sleep(at - now);
        }
        Ok(Some(payload))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<RecvOutcome, WireError> {
        let deadline = Instant::now() + timeout;
        let (at, payload) = match self.peeked.take() {
            Some(x) => x,
            None => match self.rx.recv_timeout(timeout) {
                Ok(x) => x,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    return Ok(RecvOutcome::TimedOut)
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    return Ok(RecvOutcome::Closed)
                }
            },
        };
        if at > deadline {
            // In flight but not deliverable within this budget: keep it
            // for the next call, like bytes parked in a socket buffer.
            // Consume the rest of the budget first — a real socket recv
            // with a timeout blocks for the whole window when nothing
            // arrives, and later receives must credit that wait against
            // the frame's delivery time.
            self.peeked = Some((at, payload));
            let now = Instant::now();
            if deadline > now {
                std::thread::sleep(deadline - now);
            }
            return Ok(RecvOutcome::TimedOut);
        }
        let now = Instant::now();
        if at > now {
            std::thread::sleep(at - now);
        }
        Ok(RecvOutcome::Frame(payload))
    }
}

// --- Deterministic fault injection ------------------------------------------

/// SplitMix64 — a tiny self-contained PRNG so fault patterns depend on
/// nothing but the seed.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [0, n).
    fn below(&mut self, n: usize) -> usize {
        ((self.next() as u128 * n as u128) >> 64) as usize
    }
}

/// A deterministic frame-mangling schedule: per-frame probabilities of
/// dropping, duplicating, and truncating, plus a reordering intensity,
/// all driven by one seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// PRNG seed; the same plan over the same frames always produces the
    /// same mangled sequence.
    pub seed: u64,
    /// Probability a frame is dropped outright.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame's payload is cut short (the decoder must
    /// error, never panic).
    pub truncate: f64,
    /// Number of random adjacent-pair swap passes over the final
    /// sequence, as a fraction of its length (0.0 = in-order delivery).
    pub reorder: f64,
}

impl FaultPlan {
    /// A plan that delivers everything untouched.
    pub fn clean(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            truncate: 0.0,
            reorder: 0.0,
        }
    }

    /// A distinct named fault pattern per seed, cycling through pure and
    /// mixed failure modes: drops only, duplicates only, heavy
    /// reordering, truncation, light everything, heavy drops,
    /// duplicate+reorder, truncate+drop.
    pub fn for_seed(seed: u64) -> Self {
        let base = FaultPlan::clean(seed);
        match seed % 8 {
            0 => FaultPlan { drop: 0.3, ..base },
            1 => FaultPlan {
                duplicate: 0.3,
                ..base
            },
            2 => FaultPlan {
                reorder: 2.0,
                ..base
            },
            3 => FaultPlan {
                truncate: 0.25,
                ..base
            },
            4 => FaultPlan {
                drop: 0.15,
                duplicate: 0.15,
                truncate: 0.1,
                reorder: 0.5,
                ..base
            },
            5 => FaultPlan { drop: 0.6, ..base },
            6 => FaultPlan {
                duplicate: 0.25,
                reorder: 1.0,
                ..base
            },
            _ => FaultPlan {
                truncate: 0.2,
                drop: 0.2,
                ..base
            },
        }
    }

    /// Apply the plan to a frame sequence. Purely a function of
    /// `(self, frames)` — no global state, no clock.
    pub fn mangle(&self, frames: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut rng = SplitMix(self.seed ^ 0xfa17_0000_0000_0001);
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(frames.len());
        for f in frames {
            if rng.unit() < self.drop {
                continue;
            }
            let copies = if rng.unit() < self.duplicate { 2 } else { 1 };
            for _ in 0..copies {
                let mut frame = f.clone();
                if rng.unit() < self.truncate && !frame.is_empty() {
                    frame.truncate(rng.below(frame.len()));
                }
                out.push(frame);
            }
        }
        let swaps = (out.len() as f64 * self.reorder) as usize;
        for _ in 0..swaps {
            if out.len() < 2 {
                break;
            }
            let i = rng.below(out.len() - 1);
            out.swap(i, i + 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: u8) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i; 8]).collect()
    }

    #[test]
    fn clean_plan_is_identity() {
        let fs = frames(10);
        assert_eq!(FaultPlan::clean(3).mangle(&fs), fs);
    }

    #[test]
    fn mangle_is_deterministic_per_seed() {
        let fs = frames(50);
        for seed in 0..8 {
            let plan = FaultPlan::for_seed(seed);
            assert_eq!(plan.mangle(&fs), plan.mangle(&fs), "seed {seed}");
        }
        // And different seeds genuinely differ.
        assert_ne!(
            FaultPlan::for_seed(0).mangle(&fs),
            FaultPlan::for_seed(5).mangle(&fs)
        );
    }

    #[test]
    fn each_named_pattern_exercises_its_fault() {
        let fs = frames(200);
        let dropped = FaultPlan::for_seed(0).mangle(&fs);
        assert!(dropped.len() < fs.len(), "drop pattern dropped nothing");
        let duped = FaultPlan::for_seed(1).mangle(&fs);
        assert!(duped.len() > fs.len(), "dup pattern duplicated nothing");
        let reordered = FaultPlan::for_seed(2).mangle(&fs);
        assert_eq!(reordered.len(), fs.len());
        assert_ne!(reordered, fs, "reorder pattern left order intact");
        let truncated = FaultPlan::for_seed(3).mangle(&fs);
        assert!(
            truncated.iter().any(|f| f.len() < 8),
            "truncate pattern cut nothing"
        );
    }

    #[test]
    fn sim_transport_replays_then_closes() {
        let mut t = SimTransport::new(frames(2));
        assert_eq!(t.recv().unwrap().unwrap(), vec![0u8; 8]);
        t.send(b"ack").unwrap();
        assert_eq!(t.recv().unwrap().unwrap(), vec![1u8; 8]);
        assert!(t.recv().unwrap().is_none());
        assert_eq!(t.sent, vec![b"ack".to_vec()]);
    }

    #[test]
    fn sim_duplex_delays_delivery_and_honors_timeouts() {
        let delay = Duration::from_millis(30);
        let (mut a, mut b) = sim_duplex(delay);
        a.send(b"ping").unwrap();
        // A budget far short of the one-way delay times out — and must
        // not lose the in-flight frame.
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)).unwrap(),
            RecvOutcome::TimedOut
        );
        let start = Instant::now();
        assert_eq!(b.recv().unwrap().unwrap(), b"ping".to_vec());
        assert!(
            start.elapsed() <= delay,
            "the earlier timed-out wait must count toward the delay"
        );
        // Replies flow the other way with the same delay.
        b.send(b"pong").unwrap();
        match a.recv_timeout(Duration::from_millis(500)).unwrap() {
            RecvOutcome::Frame(f) => assert_eq!(f, b"pong".to_vec()),
            other => panic!("expected the reply, got {other:?}"),
        }
        // Dropping one end closes the link for the other.
        drop(a);
        assert!(b.recv().unwrap().is_none());
    }
}

//! Poison-tolerant wrappers over `std::sync` locking.
//!
//! A panicking connection handler (or test thread) poisons any `std`
//! mutex it holds; the next `.lock().unwrap()` then panics too, which can
//! cascade a single handler panic into a poisoned-shutdown panic in
//! `Server::shutdown`. None of the state guarded by these locks can be
//! left logically torn by a panic (they protect registries and
//! counters mutated in single statements), so recovering the guard from
//! the `PoisonError` is always safe here.

use std::sync::PoisonError;
use std::time::Duration;

use crate::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// Lock a mutex, recovering the guard if a previous holder panicked.
pub fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on a condvar, recovering the guard if the mutex is poisoned.
pub fn pwait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Timed condvar wait, recovering the guard if the mutex is poisoned.
pub fn pwait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;
    use std::sync::Arc;

    #[test]
    fn plock_recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*plock(&m), 7);
    }
}

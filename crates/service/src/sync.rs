//! Concurrency-primitive indirection for model checking.
//!
//! Built normally, this re-exports the `std::sync` types used by the
//! queue, replication hub, poison-tolerant lock helpers, server
//! shutdown path, and follower stop signal. Built with
//! `RUSTFLAGS="--cfg loom"`, the same names resolve to the vendored
//! loom shims so `loom::model` can exhaustively interleave them (see
//! tests/loom_queue.rs, tests/loom_replication.rs, tests/loom_lock.rs);
//! outside a model the shims delegate straight back to `std`.
//!
//! `WaitTimeoutResult` differs between the two worlds because the `std`
//! type has no public constructor for a shim to return — the loom one
//! mirrors its `timed_out()` API exactly.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU64};
#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU64};
#[cfg(not(loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

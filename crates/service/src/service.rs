//! The reconciliation service core: sharded atomic IBLTs fed by a batched
//! ingest pipeline, with an epoch-based recovery scheduler.
//!
//! ## Ingest
//!
//! Submitted operations accumulate in a shared buffer; every
//! `batch_size` ops a batch is sealed and enqueued on a bounded queue
//! (producers block when it fills — that is the service's backpressure).
//! Worker threads drain batches, bucket the ops by shard, and apply each
//! bucket through the atomic `fetch_add` / `fetch_xor` paths of
//! [`AtomicIblt`] while holding the shard's **apply gate** in shared mode.
//! Applying a bucket bumps the shard's **epoch**.
//!
//! ## Recovery
//!
//! A reconciliation takes the shard gate exclusively just long enough to
//! copy the cells ([`AtomicIblt::snapshot_into`]) and read the epoch — a
//! memcpy, not a decode — then releases it and runs subtraction plus
//! subround parallel recovery ([`AtomicIblt::par_recover_in`]) entirely
//! on the snapshot. Ingest to other shards is never touched; ingest to
//! the snapshotted shard resumes as soon as the copy is done. The
//! returned epoch tells the caller exactly which prefix of applied
//! batches the diff covers.
//!
//! Every buffer the cycle needs — the snapshot table, the atomic diff
//! table, and the recovery workspace — comes from a shared scratch pool:
//! after the first reconcile of each concurrency lane, repeated epochs
//! run the whole snapshot → subtract → recover path without touching the
//! allocator (shard tables share a geometry, so one pooled context
//! serves every shard).
//!
//! ## Resharding
//!
//! The shard count is a *live* property: [`PeelService::reshard_begin`]
//! opens a migration to a new **generation** of shards (same base IBLT
//! geometry, re-keyed routing via [`ShardRouter::resharded`]). Under the
//! generation write lock it snapshots every serving shard — workers hold
//! the generation read lock for a whole batch, so each batch is either
//! fully in those snapshots or will dual-apply — then decodes the
//! snapshots offline and re-keys the recovered contents into the new
//! shards while ingest continues, every new batch now applying to *both*
//! generations. [`PeelService::reshard_commit`] verifies each new shard
//! is cell-identical to the projection of the serving contents under the
//! new routing (a consistent dual snapshot; equality of the raw cell
//! arrays, which subsumes "the IBLT diff decodes empty") and atomically
//! swaps the serving generation. [`PeelService::reshard_abort`] drops
//! the migration at any point: dual-apply kept the old generation
//! authoritative throughout, so no key is lost or double-counted.

use std::fmt;
// ordering: shard epochs and op counters are Relaxed. Epoch bumps and
// snapshot reads both happen under the shard's apply gate (a parking_lot
// RwLock), whose release/acquire edge orders them; the bare-atomic
// accesses add commutative counting on top, never publication. Stats
// readers tolerate staleness by contract.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Mutex, RwLock};
use peel_iblt::{AtomicIblt, Iblt, IbltConfig, RecoveryWorkspace};

use crate::metrics::{Metrics, MetricsSnapshot, ReshardStats, ShardStats};
use crate::queue::{Batch, BoundedQueue, Op};
use crate::replication::ReplicationHub;
use crate::router::{shard_iblt_config, GenerationRouter, ShardRouter};
use crate::wire::{HelloInfo, ReplicaStatus, ShardDiff, PROTOCOL_VERSION};

/// Upper bound on a reshard target, so a hostile `ReshardBegin` frame
/// cannot make the service allocate an unbounded number of shard tables.
pub const MAX_RESHARD_SHARDS: u32 = 4096;

/// Tunables for a [`PeelService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of independent IBLT shards (≥ 1).
    pub shards: u32,
    /// Base per-shard IBLT config; shard `i` uses
    /// [`shard_iblt_config`]`(shard_iblt, i)`. Size it for the expected
    /// per-shard *difference*, not the ingested set — the table is a
    /// constant-size sketch regardless of traffic volume.
    pub shard_iblt: IbltConfig,
    /// Ops per sealed ingest batch (≥ 1).
    pub batch_size: usize,
    /// Bounded queue capacity in batches (≥ 1); the backpressure knob.
    pub queue_depth: usize,
    /// Ingest worker threads (≥ 1).
    pub workers: usize,
    /// Seed of the key → shard router.
    pub router_seed: u64,
    /// Per-follower replication stream queue depth, in batches (≥ 1).
    /// Publishing to a full follower queue evicts the oldest batch
    /// instead of blocking ingest; evicted batches are healed by
    /// anti-entropy.
    pub repl_queue_depth: usize,
    /// This node's identity in a replica mesh. Elections prefer the
    /// lowest id among equally caught-up candidates, so ids should be
    /// unique per node; a standalone service can leave the default.
    pub node_id: u64,
    /// Maximum unacknowledged `Replicate` frames in flight per follower
    /// stream (≥ 1). One means classic ack pacing; larger windows keep a
    /// WAN pipe full across the round trip.
    pub repl_window: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            shard_iblt: IbltConfig::for_load(4, 1024, 0.5, 0x1b17_5eed),
            batch_size: 1024,
            queue_depth: 64,
            workers: default_workers(),
            router_seed: 0x7007_1e55_0000_0001,
            repl_queue_depth: 256,
            node_id: 0,
            repl_window: 32,
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

impl ServiceConfig {
    /// Config sized so that a total symmetric difference of `total_diff`
    /// keys (spread across `shards` shards by the router) decodes
    /// reliably: each shard's table gets 2× headroom over its expected
    /// share, at load 0.5 with r = 4 hash functions.
    pub fn for_diff_budget(shards: u32, total_diff: usize) -> Self {
        let per_shard = total_diff.div_ceil(shards.max(1) as usize);
        let sized = (per_shard * 2).max(64);
        ServiceConfig {
            shards,
            shard_iblt: IbltConfig::for_load(4, sized, 0.5, 0x1b17_5eed),
            ..ServiceConfig::default()
        }
    }

    /// The config a follower should run so its shards are
    /// digest-compatible with the primary that sent `hello`: same shard
    /// count, router seed, base IBLT config, and batch size; local
    /// defaults for everything else. Values are clamped to the
    /// constructor invariants so a hostile handshake cannot panic
    /// [`PeelService::start`].
    pub fn from_hello(hello: &HelloInfo) -> Self {
        ServiceConfig {
            shards: hello.shards.max(1),
            shard_iblt: hello.base_config,
            batch_size: (hello.batch_size as usize).max(1),
            router_seed: hello.router_seed,
            ..ServiceConfig::default()
        }
    }

    /// The handshake info a server built from this config advertises.
    pub fn hello(&self) -> HelloInfo {
        HelloInfo {
            version: PROTOCOL_VERSION,
            shards: self.shards,
            router_seed: self.router_seed,
            base_config: self.shard_iblt,
            batch_size: self.batch_size as u32,
            epoch: 0,
        }
    }
}

/// Service-level failures (surfaced to clients as protocol `Error`
/// responses, never as panics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Shard index out of range.
    NoSuchShard {
        /// Requested shard.
        shard: u32,
        /// Shards available.
        shards: u32,
    },
    /// A peer digest was built with a different IBLT config than the
    /// shard it targets (subtraction would be meaningless).
    ConfigMismatch {
        /// The shard's config.
        expected: IbltConfig,
        /// The digest's config.
        got: IbltConfig,
    },
    /// A reshard control operation arrived while no migration is in
    /// flight.
    NotResharding,
    /// `reshard_begin` while a migration to a different target is
    /// already in flight (commit or abort it first).
    ReshardInProgress {
        /// Target shard count of the in-flight migration.
        to: u32,
    },
    /// `reshard_begin` targeting the shard count the service already
    /// serves, or an out-of-range count (0, or more than
    /// [`MAX_RESHARD_SHARDS`]).
    BadReshardTarget {
        /// The rejected target.
        to: u32,
    },
    /// A serving shard's snapshot did not decode completely, so its
    /// contents cannot be re-keyed. The shard's table is sized for the
    /// reconciliation *diff* budget; a reshard additionally requires the
    /// full shard contents to fit that decode budget.
    ReshardUndecodable {
        /// The undecodable serving shard.
        shard: u32,
    },
    /// Cutover verification found a new-generation shard whose contents
    /// are not yet cell-identical to the projection of the serving
    /// contents.
    ReshardUnverified {
        /// The mismatched new-generation shard.
        shard: u32,
    },
    /// A mesh peer accepted a connection but did not answer within the
    /// configured socket deadline (election probe, anti-entropy repair,
    /// or converged-read hop). Distinct from a refused/dead peer: the
    /// peer is half-alive, and the caller should treat it as down
    /// rather than wait. Mapped from [`crate::wire::WireError::TimedOut`].
    PeerTimedOut,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::NoSuchShard { shard, shards } => {
                write!(f, "shard {shard} out of range (service has {shards})")
            }
            ServiceError::ConfigMismatch { expected, got } => write!(
                f,
                "digest config {got:?} does not match shard config {expected:?}"
            ),
            ServiceError::NotResharding => write!(f, "no reshard migration is in flight"),
            ServiceError::ReshardInProgress { to } => {
                write!(f, "a reshard to {to} shards is already in flight")
            }
            ServiceError::BadReshardTarget { to } => write!(
                f,
                "reshard target {to} out of range (1..={MAX_RESHARD_SHARDS}, and \
                 different from the current count)"
            ),
            ServiceError::ReshardUndecodable { shard } => write!(
                f,
                "shard {shard} does not decode completely; contents exceed the \
                 table budget, reshard cannot re-key them"
            ),
            ServiceError::ReshardUnverified { shard } => write!(
                f,
                "new-generation shard {shard} is not yet cell-identical to its projection"
            ),
            ServiceError::PeerTimedOut => {
                write!(f, "peer did not answer within the socket deadline")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

struct Shard {
    table: AtomicIblt,
    /// Shared: a worker applying a batch bucket. Exclusive: the recovery
    /// scheduler copying cells. Guards snapshot *consistency* only — the
    /// cell updates themselves are atomic.
    gate: RwLock<()>,
    /// Batch buckets applied to this shard.
    epoch: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
}

impl Shard {
    fn new(cfg: IbltConfig) -> Shard {
        Shard {
            table: AtomicIblt::new(cfg),
            gate: RwLock::new(()),
            epoch: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
        }
    }
}

/// One generation of shards: a router and the tables it routes to.
/// Generation 0 is built at start; each committed reshard installs the
/// next one.
struct GenShards {
    generation: u64,
    router: ShardRouter,
    shards: Vec<Shard>,
}

impl GenShards {
    fn build(generation: u64, router: ShardRouter, base: IbltConfig) -> GenShards {
        GenShards {
            generation,
            router,
            shards: (0..router.shards())
                .map(|i| Shard::new(shard_iblt_config(base, i)))
                .collect(),
        }
    }

    /// Apply one shard's bucket of ops under its gate (shared — the cell
    /// updates are atomic; the gate only orders them against snapshots).
    fn apply_bucket(&self, shard: usize, ops: &[Op]) {
        if ops.is_empty() {
            return;
        }
        let s = &self.shards[shard];
        let mut inserts = 0u64;
        {
            let _gate = s.gate.read();
            for op in ops {
                if op.dir > 0 {
                    s.table.insert(op.key);
                    inserts += 1;
                } else {
                    s.table.delete(op.key);
                }
            }
            // Bump under the gate so a snapshot's epoch counts exactly
            // the buckets whose cells it observed.
            s.epoch.fetch_add(1, Relaxed);
        }
        s.inserts.fetch_add(inserts, Relaxed);
        s.deletes.fetch_add(ops.len() as u64 - inserts, Relaxed);
    }
}

/// The in-flight half of a reshard: the generation being populated,
/// which shards of it have verified cell-identical to their projection,
/// and how many keys the migration re-keyed.
struct Migration {
    next: Arc<GenShards>,
    verified: Vec<bool>,
    keys_moved: u64,
}

/// The serving generation plus, during a reshard, the migration to the
/// next one. Workers hold the read lock for a whole batch, so the write
/// lock (taken by begin/commit/abort) is a consistent cut of the batch
/// stream.
struct GenState {
    current: Arc<GenShards>,
    migration: Option<Migration>,
}

impl GenState {
    /// The dual-generation routing view of this state.
    fn router(&self) -> GenerationRouter {
        match &self.migration {
            Some(m) => GenerationRouter::migrating(self.current.router, m.next.router),
            None => GenerationRouter::stable(self.current.router),
        }
    }
}

/// Pooled per-reconcile buffers: the frozen shard snapshot (which the
/// subtraction then overwrites with the diff), the atomic table the diff
/// is decoded in, and the recovery workspace. Shards share a table
/// geometry (only the hash seed differs), so any context serves any
/// shard; the in-place loaders retarget configs on the fly.
struct ReconcileScratch {
    snap: Iblt,
    diff: AtomicIblt,
    ws: RecoveryWorkspace,
}

/// This node's role in a replica mesh: whether it currently believes it
/// is the primary, how far the stream it follows has reached, and where
/// converged reads should be redirected while it lags. The replication
/// *epoch* itself lives in the hub ([`ReplicationHub::epoch`]), which is
/// the fencing authority for both inbound and outbound streams.
struct ReplicaState {
    /// `true` while this node serves as primary (the boot default — a
    /// standalone service is its own primary). A follower driver clears
    /// it; winning an election sets it again.
    leading: AtomicBool,
    /// Highest replication sequence number *seen* on the inbound stream
    /// (applied or skipped). The lag gauge's numerator.
    source_seq: AtomicU64,
    /// Highest replication sequence number *applied* locally.
    last_applied: AtomicU64,
    /// Where stale reads should be redirected (the current primary's
    /// advertised address), empty when unknown.
    primary_hint: Mutex<String>,
}

struct Inner {
    cfg: ServiceConfig,
    /// The serving generation and any in-flight migration. Read-held by
    /// workers for a whole batch; write-held (briefly) by the reshard
    /// transitions.
    gens: RwLock<GenState>,
    /// Serializes the reshard control operations (begin / verify /
    /// commit / abort) so their multi-gate snapshot passes can never
    /// interleave.
    reshard_lock: Mutex<()>,
    /// Keys re-keyed by the most recently *committed* reshard (the live
    /// migration's count lives in [`Migration::keys_moved`]).
    last_reshard_keys: AtomicU64,
    queue: BoundedQueue,
    /// The shared accumulator batches are sealed from.
    pending: Mutex<Batch>,
    /// The replication tee: every sealed batch is published here before
    /// it enters the local queue.
    hub: ReplicationHub,
    /// Scratch pool for [`PeelService::reconcile_shard`]; grows to the
    /// peak number of concurrent reconciles and is reused forever after.
    scratch: Mutex<Vec<ReconcileScratch>>,
    /// Mesh role and stream progress gauges (the epoch lives in `hub`).
    replica: ReplicaState,
    metrics: Metrics,
}

impl Inner {
    fn take_scratch(&self) -> ReconcileScratch {
        if let Some(ctx) = self.scratch.lock().pop() {
            return ctx;
        }
        let cfg = shard_iblt_config(self.cfg.shard_iblt, 0);
        ReconcileScratch {
            snap: Iblt::new(cfg),
            diff: AtomicIblt::new(cfg),
            ws: RecoveryWorkspace::new(),
        }
    }

    fn put_scratch(&self, ctx: ReconcileScratch) {
        self.scratch.lock().push(ctx);
    }
}

impl Inner {
    /// Tee a sealed batch to the replication hub, then enqueue it
    /// locally. The publish never blocks; the local push is where
    /// backpressure lives.
    fn enqueue_sealed(&self, batch: Batch) -> bool {
        if tracing::enabled() {
            tracing::event("batch_seal", &[("ops", (batch.len() as u64).into())]);
        }
        self.hub.publish(&batch);
        self.queue.push(batch)
    }
}

/// A running reconciliation service: shard router, ingest worker pool,
/// and recovery scheduler. Cheap to share via `Arc`; shuts down (and
/// joins its workers) on drop.
pub struct PeelService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PeelService {
    /// Validate the config, build the shards, and start the worker pool.
    pub fn start(cfg: ServiceConfig) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.batch_size >= 1, "batch size must be at least 1");
        assert!(cfg.workers >= 1, "need at least one worker");
        // A shard's serialized digest (config + 24 bytes/cell + frame
        // header slack) must fit in one wire frame, or every
        // Digest/Reconcile response would die in `write_frame` after the
        // server came up healthy.
        assert!(
            cfg.shard_iblt.total_cells() * 24 + 64 <= crate::wire::MAX_FRAME,
            "shard tables of {} cells serialize past the {} byte wire frame cap; \
             shrink the per-shard diff budget or raise shard count",
            cfg.shard_iblt.total_cells(),
            crate::wire::MAX_FRAME,
        );
        let gen0 = GenShards::build(
            0,
            ShardRouter::new(cfg.shards, cfg.router_seed),
            cfg.shard_iblt,
        );
        let inner = Arc::new(Inner {
            gens: RwLock::new(GenState {
                current: Arc::new(gen0),
                migration: None,
            }),
            reshard_lock: Mutex::new(()),
            last_reshard_keys: AtomicU64::new(0),
            queue: BoundedQueue::new(cfg.queue_depth),
            pending: Mutex::new(Vec::with_capacity(cfg.batch_size)),
            hub: ReplicationHub::new(cfg.repl_queue_depth.max(1)),
            scratch: Mutex::new(Vec::new()),
            replica: ReplicaState {
                leading: AtomicBool::new(true),
                source_seq: AtomicU64::new(0),
                last_applied: AtomicU64::new(0),
                primary_hint: Mutex::new(String::new()),
            },
            metrics: Metrics::default(),
            cfg,
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        PeelService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The service configuration, as started. `shards` in it is the
    /// *initial* shard count; resharding changes the live count, which
    /// [`PeelService::shards`] reports.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }

    /// The handshake info this service advertises — the shard count is
    /// the serving generation's, which a reshard changes live.
    pub fn hello(&self) -> HelloInfo {
        let mut hello = self.inner.cfg.hello();
        hello.shards = self.shards();
        hello.epoch = self.repl_epoch();
        hello
    }

    /// This node's mesh identity (election tie-breaker).
    pub fn node_id(&self) -> u64 {
        self.inner.cfg.node_id
    }

    /// The replication epoch this node is fenced at (the hub's epoch —
    /// one fence covers the inbound stream and every outbound one).
    pub fn repl_epoch(&self) -> u64 {
        self.inner.hub.epoch()
    }

    /// Raise the replication fence to `epoch` (monotone; a lower or
    /// equal value is a no-op). Outbound subscriptions born under an
    /// older epoch are closed, which is what deposes a stale primary
    /// mid-stream. Returns the epoch now in force.
    pub fn fence_epoch(&self, epoch: u64) -> u64 {
        self.inner.hub.bump_epoch(epoch)
    }

    /// `true` while this node believes it is the primary of its mesh.
    pub fn is_leading(&self) -> bool {
        self.inner.replica.leading.load(Relaxed)
    }

    /// Record a role change: `true` after winning an election (or at
    /// boot), `false` when following a primary.
    pub fn set_leading(&self, leading: bool) {
        self.inner.replica.leading.store(leading, Relaxed);
    }

    /// The address stale reads are redirected to (the current primary's
    /// advertised endpoint), empty when unknown.
    pub fn primary_hint(&self) -> String {
        self.inner.replica.primary_hint.lock().clone()
    }

    /// Record where the mesh's primary is reachable, for
    /// `ReadStale` redirects.
    pub fn set_primary_hint(&self, addr: &str) {
        let mut hint = self.inner.replica.primary_hint.lock();
        hint.clear();
        hint.push_str(addr);
    }

    /// Record the highest sequence number *seen* on the inbound
    /// replication stream (monotone).
    pub fn note_stream_seq(&self, seq: u64) {
        self.inner.replica.source_seq.fetch_max(seq, Relaxed);
    }

    /// Record the highest sequence number *applied* from the inbound
    /// replication stream (monotone).
    pub fn note_applied_seq(&self, seq: u64) {
        self.inner.replica.last_applied.fetch_max(seq, Relaxed);
    }

    /// How many replicated batches this node has seen but not yet
    /// applied. A primary is never lagging; a replica at 0 is converged
    /// with everything its stream has shown it.
    pub fn replica_lag(&self) -> u64 {
        if self.is_leading() {
            return 0;
        }
        let r = &self.inner.replica;
        r.source_seq
            .load(Relaxed)
            .saturating_sub(r.last_applied.load(Relaxed))
    }

    /// The mesh-facing status frame: identity, epoch, role, stream
    /// progress, convergence. Election candidates are compared on
    /// exactly these fields.
    pub fn replica_status(&self) -> ReplicaStatus {
        let r = &self.inner.replica;
        ReplicaStatus {
            node_id: self.node_id(),
            epoch: self.repl_epoch(),
            leading: self.is_leading(),
            last_applied: r.last_applied.load(Relaxed),
            converged: self.replica_lag() == 0,
            shards: self.shards(),
            primary: self.primary_hint(),
        }
    }

    /// Number of shards in the serving generation.
    pub fn shards(&self) -> u32 {
        self.inner.gens.read().current.router.shards()
    }

    /// Generation number of the serving shard set (0 at boot, +1 per
    /// committed reshard).
    pub fn generation(&self) -> u64 {
        self.inner.gens.read().current.generation
    }

    /// The serving generation's key → shard router.
    pub fn router(&self) -> ShardRouter {
        self.inner.gens.read().current.router
    }

    /// The dual-generation routing view: the serving mapping plus, while
    /// a migration is in flight, the new-generation mapping writes
    /// dual-apply to.
    pub fn generation_router(&self) -> GenerationRouter {
        self.inner.gens.read().router()
    }

    fn current_gen(&self) -> Arc<GenShards> {
        Arc::clone(&self.inner.gens.read().current)
    }

    /// Submit keys for insertion. Returns the number accepted (everything,
    /// unless the service is shutting down).
    pub fn insert(&self, keys: &[u64]) -> u64 {
        self.submit(keys, 1)
    }

    /// Submit keys for deletion.
    pub fn delete(&self, keys: &[u64]) -> u64 {
        self.submit(keys, -1)
    }

    fn submit(&self, keys: &[u64], dir: i64) -> u64 {
        let inner = &self.inner;
        // After shutdown nothing in the accumulator will ever be applied
        // (the queue rejects sealed batches), so accepting keys into it
        // would silently lose them while reporting them accepted.
        if inner.queue.is_closed() {
            return 0;
        }
        let batch_size = inner.cfg.batch_size;
        let mut sealed: Vec<Batch> = Vec::new();
        {
            let mut pending = inner.pending.lock();
            for &key in keys {
                pending.push(Op { key, dir });
                if pending.len() >= batch_size {
                    let full = std::mem::replace(&mut *pending, Vec::with_capacity(batch_size));
                    sealed.push(full);
                }
            }
        }
        // Push outside the accumulator lock: a full queue blocks here
        // (backpressure) without stalling other submitters' accumulation.
        let mut dropped = 0u64;
        for b in sealed {
            let n = b.len() as u64;
            if !inner.enqueue_sealed(b) {
                dropped += n;
            }
        }
        (keys.len() as u64).saturating_sub(dropped)
    }

    /// Seal whatever is in the accumulator into a (possibly short) batch.
    fn seal_pending(&self) {
        let batch = {
            let mut pending = self.inner.pending.lock();
            if pending.is_empty() {
                return;
            }
            std::mem::take(&mut *pending)
        };
        self.inner.enqueue_sealed(batch);
    }

    /// Apply one already-sealed batch through the ingest pipeline,
    /// preserving each op's direction — the follower-side entry point
    /// for replicated batches. The batch is re-published to this
    /// service's own replication hub first, so replication chains
    /// (primary → follower → sub-follower) keep streaming. Returns
    /// `false` if the service is shutting down.
    pub fn ingest_batch(&self, batch: Batch) -> bool {
        if batch.is_empty() {
            return true;
        }
        if self.inner.queue.is_closed() {
            return false;
        }
        self.inner.enqueue_sealed(batch)
    }

    /// The replication tee — subscribe here to stream this service's
    /// sealed batches.
    pub fn replication(&self) -> &ReplicationHub {
        &self.inner.hub
    }

    /// The raw metric counters (for in-crate replication plumbing).
    pub(crate) fn metrics_handle(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Block until every op submitted before this call is applied to its
    /// shard (partial batches are sealed and flushed too).
    pub fn flush(&self) {
        self.seal_pending();
        self.inner.queue.wait_idle();
    }

    /// Consistent snapshot of one serving-generation shard: its epoch
    /// and a frozen copy of its table. Blocks that shard's ingest only
    /// for the cell copy.
    pub fn snapshot_shard(&self, shard: u32) -> Result<(u64, Iblt), ServiceError> {
        let gen = self.current_gen();
        let s = gen_shard(&gen, shard)?;
        let _gate = s.gate.write();
        let epoch = s.epoch.load(Relaxed);
        Ok((epoch, s.table.snapshot()))
    }

    /// Consistent snapshot of one shard into an existing table (reusing
    /// its buffer and retargeting its config) — the allocation-free form
    /// of [`PeelService::snapshot_shard`]. Returns the shard epoch at
    /// snapshot time.
    pub fn snapshot_shard_into(&self, shard: u32, out: &mut Iblt) -> Result<u64, ServiceError> {
        let gen = self.current_gen();
        let s = gen_shard(&gen, shard)?;
        let _gate = s.gate.write();
        let epoch = s.epoch.load(Relaxed);
        s.table.snapshot_into(out);
        Ok(epoch)
    }

    /// Reconcile one shard against a peer digest: snapshot at the current
    /// epoch, subtract, and run subround parallel recovery on the copy.
    /// Keys only in this service's shard come back in
    /// [`ShardDiff::only_local`]; keys only in the digest in
    /// [`ShardDiff::only_remote`] (both sorted).
    ///
    /// Every table and workspace involved is drawn from the service's
    /// scratch pool, so repeated epochs reconcile without allocating
    /// (beyond the returned diff key vectors, which are diff-sized, not
    /// table-sized).
    pub fn reconcile_shard(&self, shard: u32, digest: &Iblt) -> Result<ShardDiff, ServiceError> {
        let mut ctx = self.inner.take_scratch();
        let epoch = match self.snapshot_shard_into(shard, &mut ctx.snap) {
            Ok(epoch) => epoch,
            Err(e) => {
                self.inner.put_scratch(ctx);
                return Err(e);
            }
        };
        if ctx.snap.config() != digest.config() {
            let expected = *ctx.snap.config();
            self.inner.put_scratch(ctx);
            return Err(ServiceError::ConfigMismatch {
                expected,
                got: *digest.config(),
            });
        }
        // Everything below runs on the frozen copy — ingest is live again.
        // One fused sweep writes snapshot − digest into the pooled atomic
        // diff table, seeds the recovery workspace, and decodes.
        let span = tracing::span(
            "recovery",
            &[("shard", shard.into()), ("epoch", epoch.into())],
        );
        let rec = span.in_scope(|| {
            ctx.diff
                .recover_subtracted_in(&ctx.snap, digest, &mut ctx.ws)
        });
        if tracing::enabled() {
            tracing::event(
                "recovery_done",
                &[
                    ("shard", shard.into()),
                    ("complete", rec.complete.into()),
                    ("subrounds", (rec.subrounds as u64).into()),
                    ("positive", (rec.positive.len() as u64).into()),
                    ("negative", (rec.negative.len() as u64).into()),
                ],
            );
        }
        drop(span);
        self.inner.metrics.record_recovery(
            rec.complete,
            rec.subrounds,
            &rec.per_subround,
            &rec.per_subround_ns,
        );
        let mut only_local = rec.positive.clone();
        let mut only_remote = rec.negative.clone();
        only_local.sort_unstable();
        only_remote.sort_unstable();
        // Sampled after the snapshot, so it is an upper bound on the
        // replication sequence numbers the diff can reflect (batches are
        // published to the hub before they enter the apply queue).
        let as_of_seq = self.inner.hub.published_seq();
        let diff = ShardDiff {
            shard,
            epoch,
            complete: rec.complete,
            subrounds: rec.subrounds,
            only_local,
            only_remote,
            as_of_seq,
        };
        self.inner.put_scratch(ctx);
        Ok(diff)
    }

    /// Begin a live reshard to `to_shards` shards.
    ///
    /// Under the generation write lock this allocates the next
    /// generation (same base IBLT geometry, routing re-keyed by
    /// [`ShardRouter::resharded`]) and snapshots every serving shard —
    /// the consistent cut after which every applied batch dual-applies
    /// to both generations. It then decodes the snapshots offline and
    /// re-keys the recovered contents (inserts *and* uncompensated
    /// deletes) into the new shards while ingest continues.
    ///
    /// Idempotent while a migration to the same target is in flight
    /// (returns the current status). Errors — bad target, another
    /// migration in flight, or a serving shard whose contents exceed its
    /// decode budget — leave the service exactly as it was.
    pub fn reshard_begin(&self, to_shards: u32) -> Result<ReshardStats, ServiceError> {
        let _ctl = self.inner.reshard_lock.lock();
        if to_shards == 0 || to_shards > MAX_RESHARD_SHARDS {
            return Err(ServiceError::BadReshardTarget { to: to_shards });
        }
        // Phase 1 — the consistent cut: allocate the next generation and
        // snapshot every serving shard under the generation write lock.
        // Workers hold the read lock for a whole batch, so each batch is
        // either fully inside these snapshots or will dual-apply.
        let (next, snaps) = {
            let mut g = self.inner.gens.write();
            if let Some(m) = &g.migration {
                return if m.next.router.shards() == to_shards {
                    Ok(self.reshard_status_locked(&g))
                } else {
                    Err(ServiceError::ReshardInProgress {
                        to: m.next.router.shards(),
                    })
                };
            }
            if g.current.router.shards() == to_shards {
                return Err(ServiceError::BadReshardTarget { to: to_shards });
            }
            let next = Arc::new(GenShards::build(
                g.current.generation + 1,
                g.current.router.resharded(to_shards),
                self.inner.cfg.shard_iblt,
            ));
            let snaps: Vec<Iblt> = g
                .current
                .shards
                .iter()
                .map(|s| {
                    let _gate = s.gate.write();
                    s.table.snapshot()
                })
                .collect();
            g.migration = Some(Migration {
                next: Arc::clone(&next),
                verified: vec![false; to_shards as usize],
                keys_moved: 0,
            });
            (next, snaps)
        };
        // Phase 2 — decode the frozen snapshots offline (ingest is live
        // again, dual-applying) and bucket the recovered contents by the
        // new routing. An undecodable shard rolls the migration back.
        let routed = match route_decoded(&snaps, &next.router) {
            Ok(routed) => routed,
            Err(e) => {
                self.inner.gens.write().migration = None;
                self.inner.metrics.reshards_aborted.fetch_add(1, Relaxed);
                return Err(e);
            }
        };
        // Phase 3 — re-key into the new generation. Racing dual-applied
        // ops use the same atomic cell paths, so interleaving is safe.
        let mut moved = 0u64;
        for (j, (inserts, deletes)) in routed.into_iter().enumerate() {
            moved += (inserts.len() + deletes.len()) as u64;
            let mut ops: Vec<Op> = Vec::with_capacity(inserts.len() + deletes.len());
            ops.extend(inserts.into_iter().map(|key| Op { key, dir: 1 }));
            ops.extend(deletes.into_iter().map(|key| Op { key, dir: -1 }));
            next.apply_bucket(j, &ops);
        }
        let mut g = self.inner.gens.write();
        if let Some(m) = &mut g.migration {
            m.keys_moved = moved;
        }
        if tracing::enabled() {
            tracing::event(
                "reshard_begin",
                &[
                    ("to_shards", to_shards.into()),
                    ("keys_moved", moved.into()),
                ],
            );
        }
        Ok(self.reshard_status_locked(&g))
    }

    /// Verify one new-generation shard and return its digest (epoch plus
    /// frozen table). Verification takes a consistent dual snapshot —
    /// every serving shard and the target shard under their gates —
    /// decodes the serving side, projects it through the new routing,
    /// and requires the target's cell array to be *identical* to the
    /// projection (which subsumes "the IBLT diff decodes empty").
    /// Verified shards stay verified: dual-apply feeds both sides the
    /// same ops from then on.
    pub fn reshard_verify(&self, shard: u32) -> Result<(u64, Iblt), ServiceError> {
        let _ctl = self.inner.reshard_lock.lock();
        self.verify_shards(&[shard as usize])?;
        let g = self.inner.gens.read();
        let m = g.migration.as_ref().ok_or(ServiceError::NotResharding)?;
        let s = gen_shard(&m.next, shard)?;
        let _gate = s.gate.write();
        Ok((s.epoch.load(Relaxed), s.table.snapshot()))
    }

    /// Cut over to the new generation: verify every still-unverified
    /// shard, then atomically swap the serving generation (the old
    /// tables are dropped). On error the migration stays in flight for a
    /// retry or an abort.
    pub fn reshard_commit(&self) -> Result<ReshardStats, ServiceError> {
        let _ctl = self.inner.reshard_lock.lock();
        let unverified: Vec<usize> = {
            let g = self.inner.gens.read();
            let m = g.migration.as_ref().ok_or(ServiceError::NotResharding)?;
            m.verified
                .iter()
                .enumerate()
                .filter(|(_, v)| !**v)
                .map(|(j, _)| j)
                .collect()
        };
        self.verify_shards(&unverified)?;
        let mut g = self.inner.gens.write();
        let Some(m) = g.migration.take() else {
            return Err(ServiceError::NotResharding);
        };
        self.inner.last_reshard_keys.store(m.keys_moved, Relaxed);
        g.current = m.next;
        self.inner.metrics.reshards_completed.fetch_add(1, Relaxed);
        // Publish the cutover in-stream so a whole follower chain adopts
        // the new generation at the same point in the batch sequence.
        self.inner
            .hub
            .publish_generation(g.current.generation, g.current.router.shards());
        if tracing::enabled() {
            tracing::event(
                "reshard_commit",
                &[
                    ("generation", g.current.generation.into()),
                    ("shards", g.current.router.shards().into()),
                ],
            );
        }
        Ok(self.reshard_status_locked(&g))
    }

    /// Drop the in-flight migration and keep serving the old generation.
    /// Dual-apply kept it authoritative throughout the migration, so no
    /// key is lost or double-counted.
    pub fn reshard_abort(&self) -> Result<ReshardStats, ServiceError> {
        let _ctl = self.inner.reshard_lock.lock();
        let mut g = self.inner.gens.write();
        if g.migration.take().is_none() {
            return Err(ServiceError::NotResharding);
        }
        self.inner.metrics.reshards_aborted.fetch_add(1, Relaxed);
        if tracing::enabled() {
            tracing::event(
                "reshard_abort",
                &[("generation", g.current.generation.into())],
            );
        }
        Ok(self.reshard_status_locked(&g))
    }

    /// The whole reshard, synchronously: begin, then commit; on a failed
    /// commit the migration is aborted so the service never stays stuck
    /// mid-reshard. The follower driver uses this to adopt a primary's
    /// new generation.
    pub fn reshard(&self, to_shards: u32) -> Result<ReshardStats, ServiceError> {
        self.reshard_begin(to_shards)?;
        self.reshard_commit().inspect_err(|_| {
            let _ = self.reshard_abort();
        })
    }

    /// Verify new-generation shards against a consistent dual snapshot.
    /// One pass decodes the entire serving keyspace, which already
    /// yields *every* new shard's projection — so a pass verifies all
    /// still-unverified shards at once, and only the shards in `which`
    /// gate the result (a mismatch elsewhere is left for its own
    /// request). Repeated `ReshardDigest` calls therefore pay one full
    /// decode total, not one per shard.
    fn verify_shards(&self, which: &[usize]) -> Result<(), ServiceError> {
        let (current, next, requested, todo) = {
            let g = self.inner.gens.read();
            let m = g.migration.as_ref().ok_or(ServiceError::NotResharding)?;
            let mut requested = Vec::new();
            for &j in which {
                if j >= m.next.shards.len() {
                    return Err(ServiceError::NoSuchShard {
                        shard: j as u32,
                        shards: m.next.router.shards(),
                    });
                }
                if !m.verified[j] {
                    requested.push(j);
                }
            }
            if requested.is_empty() {
                return Ok(());
            }
            let todo: Vec<usize> = m
                .verified
                .iter()
                .enumerate()
                .filter(|(_, v)| !**v)
                .map(|(j, _)| j)
                .collect();
            (Arc::clone(&g.current), Arc::clone(&m.next), requested, todo)
        };
        // The consistent cut. The generation *write* lock excludes the
        // workers — they hold the read lock for a whole batch, so no
        // batch is ever observed applied to one generation but not the
        // other (the gates alone would not give that: a worker holds no
        // gate in the instant between its old-generation and
        // new-generation applies). The gates are still taken to order
        // the copies against concurrent reconcile snapshots, which clone
        // the generation handle and then hold only a gate.
        let (old_snaps, new_snaps) = {
            let _g = self.inner.gens.write();
            let _old_gates: Vec<_> = current.shards.iter().map(|s| s.gate.write()).collect();
            let _new_gates: Vec<_> = todo.iter().map(|&j| next.shards[j].gate.write()).collect();
            let old: Vec<Iblt> = current.shards.iter().map(|s| s.table.snapshot()).collect();
            let new: Vec<Iblt> = todo
                .iter()
                .map(|&j| next.shards[j].table.snapshot())
                .collect();
            (old, new)
        };
        let routed = route_decoded(&old_snaps, &next.router)?;
        let mut mismatched = None;
        let mut matched = Vec::new();
        for (&j, new_snap) in todo.iter().zip(&new_snaps) {
            let mut projection = Iblt::new(*new_snap.config());
            let (inserts, deletes) = &routed[j];
            for &k in inserts {
                projection.insert(k);
            }
            for &k in deletes {
                projection.delete(k);
            }
            if projection == *new_snap {
                matched.push(j);
            } else if mismatched.is_none() && requested.contains(&j) {
                mismatched = Some(j);
            }
        }
        let mut g = self.inner.gens.write();
        if let Some(m) = &mut g.migration {
            if m.next.generation == next.generation {
                for &j in &matched {
                    m.verified[j] = true;
                }
            }
        }
        match mismatched {
            Some(j) => Err(ServiceError::ReshardUnverified { shard: j as u32 }),
            None => Ok(()),
        }
    }

    /// Live reshard gauges: generation number, migration phase, shard
    /// counts, keys moved, shards verified. The outcome counters
    /// (`completed` / `aborted`) are filled in here too, so this is the
    /// full [`ReshardStats`] block [`PeelService::metrics`] serves.
    pub fn reshard_status(&self) -> ReshardStats {
        let g = self.inner.gens.read();
        self.reshard_status_locked(&g)
    }

    fn reshard_status_locked(&self, g: &GenState) -> ReshardStats {
        let (resharding, to_shards, keys_moved, shards_verified) = match &g.migration {
            Some(m) => (
                true,
                m.next.router.shards(),
                m.keys_moved,
                m.verified.iter().filter(|v| **v).count() as u32,
            ),
            None => (
                false,
                g.current.router.shards(),
                self.inner.last_reshard_keys.load(Relaxed),
                0,
            ),
        };
        ReshardStats {
            generation: g.current.generation,
            resharding,
            serving_shards: g.current.router.shards(),
            to_shards,
            keys_moved,
            shards_verified,
            completed: self.inner.metrics.reshards_completed.load(Relaxed),
            aborted: self.inner.metrics.reshards_aborted.load(Relaxed),
        }
    }

    /// Point-in-time service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let inner = &self.inner;
        inner
            .metrics
            .queue_stalls
            .store(inner.queue.stalls(), Relaxed);
        let (shards, reshard) = {
            let g = inner.gens.read();
            let shards = g
                .current
                .shards
                .iter()
                .map(|s| ShardStats {
                    epoch: s.epoch.load(Relaxed),
                    inserts: s.inserts.load(Relaxed),
                    deletes: s.deletes.load(Relaxed),
                })
                .collect();
            (shards, self.reshard_status_locked(&g))
        };
        let mut repl = inner.hub.stats();
        repl.leading = self.is_leading();
        repl.read_lag = self.replica_lag();
        inner.metrics.snapshot(shards, repl, reshard)
    }

    /// Flush remaining ops, stop the workers, and join them. Idempotent.
    pub fn shutdown(&self) {
        self.seal_pending();
        // Close the hub first so replication senders parked in
        // `Subscription::recv` wake and drain before their connections
        // are torn down.
        self.inner.hub.close();
        self.inner.queue.close();
        let mut ws = self.workers.lock();
        for w in ws.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for PeelService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Index one generation's shard, mapping out-of-range to the
/// generation-aware `NoSuchShard`.
fn gen_shard(gen: &GenShards, shard: u32) -> Result<&Shard, ServiceError> {
    gen.shards
        .get(shard as usize)
        .ok_or(ServiceError::NoSuchShard {
            shard,
            shards: gen.router.shards(),
        })
}

/// Decode a generation's frozen shard snapshots and route the recovered
/// contents — positive keys (inserts) and uncompensated deletes — into
/// per-shard buckets of `router`'s generation. Decoding runs the
/// subround *parallel* recovery (the paper's engine — a reshard peels
/// whole shards, where it beats the serial path outright); the buckets
/// are key multisets, so recovery order never affects the re-keyed
/// cells. Errors if any snapshot does not decode completely.
#[allow(clippy::type_complexity)]
fn route_decoded(
    snaps: &[Iblt],
    router: &ShardRouter,
) -> Result<Vec<(Vec<u64>, Vec<u64>)>, ServiceError> {
    let mut out: Vec<(Vec<u64>, Vec<u64>)> = vec![Default::default(); router.shards() as usize];
    let mut ws = RecoveryWorkspace::new();
    for (i, snap) in snaps.iter().enumerate() {
        let rec = AtomicIblt::from_iblt(snap).par_recover_in(&mut ws);
        if !rec.complete {
            return Err(ServiceError::ReshardUndecodable { shard: i as u32 });
        }
        for &k in &rec.positive {
            out[router.shard_of(k)].0.push(k);
        }
        for &k in &rec.negative {
            out[router.shard_of(k)].1.push(k);
        }
    }
    Ok(out)
}

fn worker_loop(inner: &Inner) {
    while let Some((batch, wait_ns)) = inner.queue.pop_timed() {
        inner.metrics.queue_wait.record(wait_ns);
        let span = tracing::span(
            "batch_apply",
            &[
                ("ops", (batch.len() as u64).into()),
                ("queue_wait_ns", wait_ns.into()),
            ],
        );
        let _entered = span.enter();
        let apply_started = std::time::Instant::now();
        {
            // Hold the generation read lock for the whole batch: the
            // reshard transitions (write lock) then observe batch
            // boundaries, never a half-applied batch.
            let g = inner.gens.read();
            let router = g.router();
            let current = &g.current;
            let next = g.migration.as_ref().map(|m| &m.next);
            let mut buckets: Vec<Vec<Op>> = vec![Vec::new(); current.shards.len()];
            let mut next_buckets: Vec<Vec<Op>> =
                vec![Vec::new(); next.map_or(0, |n| n.shards.len())];
            for op in &batch {
                let (old_shard, new_shard) = router.route(op.key);
                buckets[old_shard].push(*op);
                if let Some(j) = new_shard {
                    next_buckets[j].push(*op);
                }
            }
            for (i, ops) in buckets.into_iter().enumerate() {
                current.apply_bucket(i, &ops);
            }
            if let Some(next) = next {
                for (j, ops) in next_buckets.into_iter().enumerate() {
                    next.apply_bucket(j, &ops);
                }
            }
        }
        inner
            .metrics
            .batch_apply
            .record(apply_started.elapsed().as_nanos() as u64);
        inner.metrics.batches_applied.fetch_add(1, Relaxed);
        inner
            .metrics
            .ops_applied
            .fetch_add(batch.len() as u64, Relaxed);
        inner.queue.task_done();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::build_shard_digests;

    fn keys(n: u64, tag: u64) -> Vec<u64> {
        (0..n)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
            .collect()
    }

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            batch_size: 64,
            queue_depth: 4,
            workers: 2,
            ..ServiceConfig::for_diff_budget(4, 512)
        }
    }

    #[test]
    fn ingest_lands_in_the_right_shards() {
        let svc = PeelService::start(small_cfg());
        let ks = keys(300, 0xa);
        assert_eq!(svc.insert(&ks), 300);
        svc.flush();
        let m = svc.metrics();
        assert_eq!(m.ops_applied, 300);
        assert_eq!(m.shards.iter().map(|s| s.inserts).sum::<u64>(), 300);
        // Every shard's content decodes to exactly the keys routed to it.
        let parts = svc.router().partition(&ks);
        for (i, part) in parts.iter().enumerate() {
            let (_epoch, snap) = svc.snapshot_shard(i as u32).unwrap();
            let rec = snap.recover();
            assert!(rec.complete, "shard {i}");
            let mut got = rec.positive;
            got.sort_unstable();
            let mut want = part.clone();
            want.sort_unstable();
            assert_eq!(got, want, "shard {i}");
        }
    }

    #[test]
    fn reconcile_shard_decodes_the_difference() {
        let svc = PeelService::start(small_cfg());
        let shared = keys(5_000, 0xb);
        let local_only: Vec<u64> = (0..40u64).map(|i| 0x10c0_0000 | i).collect();
        let remote_only: Vec<u64> = (0..30u64).map(|i| 0x4e40_0000 | i).collect();

        let mut local = shared.clone();
        local.extend(&local_only);
        svc.insert(&local);
        svc.flush();

        let mut remote = shared;
        remote.extend(&remote_only);
        let hello = svc.hello();
        let digests =
            build_shard_digests(&remote, hello.shards, hello.router_seed, hello.base_config);

        let mut got_local = Vec::new();
        let mut got_remote = Vec::new();
        for (i, digest) in digests.iter().enumerate() {
            let d = svc.reconcile_shard(i as u32, digest).unwrap();
            assert!(d.complete, "shard {i}");
            assert!(d.epoch > 0 || d.only_local.is_empty());
            got_local.extend(d.only_local);
            got_remote.extend(d.only_remote);
        }
        got_local.sort_unstable();
        got_remote.sort_unstable();
        let mut want_local = local_only;
        want_local.sort_unstable();
        let mut want_remote = remote_only;
        want_remote.sort_unstable();
        assert_eq!(got_local, want_local);
        assert_eq!(got_remote, want_remote);

        let m = svc.metrics();
        assert_eq!(m.recoveries, 4);
        assert_eq!(m.recoveries_incomplete, 0);
        assert!(m.recovery_subrounds > 0);
        // Per-subround timing (ISSUE 4 satellite): the wall-time trace is
        // aligned with the key-count trace and sums into the total.
        assert!(m.recovery_ns > 0);
        assert_eq!(m.last_recovery_trace_ns.len(), m.last_recovery_trace.len());
        assert!(m.recovery_ns >= m.last_recovery_trace_ns.iter().sum::<u64>());
    }

    #[test]
    fn repeated_reconciles_reuse_the_scratch_pool() {
        // Sequential re-reconciles of an unchanged workload must keep
        // decoding the same diff (pool retargets configs across shards)
        // and leave exactly one pooled context behind.
        let svc = PeelService::start(small_cfg());
        let local = keys(3_000, 0x5c);
        svc.insert(&local);
        svc.flush();
        let hello = svc.hello();
        let mut remote = local.clone();
        remote.truncate(2_980); // 20 keys only-local
        let digests =
            build_shard_digests(&remote, hello.shards, hello.router_seed, hello.base_config);
        for round in 0..6 {
            let mut found = 0;
            for (i, d) in digests.iter().enumerate() {
                let diff = svc.reconcile_shard(i as u32, d).unwrap();
                assert!(diff.complete, "round {round} shard {i}");
                assert!(diff.only_remote.is_empty());
                found += diff.only_local.len();
            }
            assert_eq!(found, 20, "round {round}");
        }
        assert_eq!(
            svc.inner.scratch.lock().len(),
            1,
            "sequential reconciles share one context"
        );
        assert_eq!(svc.metrics().recoveries, 24);
    }

    #[test]
    fn bad_shard_and_bad_config_are_errors() {
        let svc = PeelService::start(small_cfg());
        let hello = svc.hello();
        let wrong = Iblt::new(IbltConfig::new(3, 10, 1));
        assert!(matches!(
            svc.reconcile_shard(99, &wrong),
            Err(ServiceError::NoSuchShard { shard: 99, .. })
        ));
        assert!(matches!(
            svc.reconcile_shard(0, &wrong),
            Err(ServiceError::ConfigMismatch { .. })
        ));
        // A digest with the *base* config is also wrong for shard 0 (the
        // per-shard seed differs) — exactly the client bug the check
        // exists to catch.
        let base = Iblt::new(hello.base_config);
        assert!(matches!(
            svc.reconcile_shard(0, &base),
            Err(ServiceError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn flush_applies_partial_batches() {
        let svc = PeelService::start(small_cfg());
        svc.insert(&[1, 2, 3]); // far below batch_size
        assert_eq!(svc.metrics().ops_applied, 0, "nothing sealed yet");
        svc.flush();
        assert_eq!(svc.metrics().ops_applied, 3);
    }

    #[test]
    fn ingest_continues_while_a_shard_recovers() {
        // Reconcile in a loop while another thread streams inserts; the
        // service must neither deadlock nor corrupt either side.
        let svc = std::sync::Arc::new(PeelService::start(small_cfg()));
        let hello = svc.hello();
        let base = keys(2_000, 0xc);
        svc.insert(&base);
        svc.flush();
        let digests =
            build_shard_digests(&base, hello.shards, hello.router_seed, hello.base_config);

        let racing: Vec<u64> = (0..256u64).map(|i| 0xface_0000 | i).collect();
        let ingester = {
            let svc = std::sync::Arc::clone(&svc);
            let racing = racing.clone();
            std::thread::spawn(move || {
                for chunk in racing.chunks(16) {
                    svc.insert(chunk);
                }
                svc.flush();
            })
        };
        for round in 0..8 {
            for (i, d) in digests.iter().enumerate() {
                let diff = svc.reconcile_shard(i as u32, d).unwrap();
                // Any key the racing ingester has landed shows up as
                // local-only; it must be one of the racing keys.
                for k in diff.only_local {
                    assert!(racing.contains(&k), "round {round}: stray key {k:#x}");
                }
                assert!(diff.only_remote.is_empty());
            }
        }
        ingester.join().unwrap();
        svc.flush();
        // After the dust settles: exactly the racing keys differ.
        let mut got = Vec::new();
        for (i, d) in digests.iter().enumerate() {
            let diff = svc.reconcile_shard(i as u32, d).unwrap();
            assert!(diff.complete);
            got.extend(diff.only_local);
        }
        got.sort_unstable();
        let mut want = racing;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn backpressure_stalls_are_counted() {
        // One slow-ish worker, capacity-1 queue, many batches.
        let cfg = ServiceConfig {
            batch_size: 8,
            queue_depth: 1,
            workers: 1,
            ..ServiceConfig::for_diff_budget(2, 64)
        };
        let svc = PeelService::start(cfg);
        svc.insert(&keys(4_096, 0xd));
        svc.flush();
        let m = svc.metrics();
        assert_eq!(m.ops_applied, 4_096);
        assert!(m.batches_applied >= 512);
        // With 512 batches through a depth-1 queue, some push stalled.
        assert!(m.queue_stalls > 0, "stalls = {}", m.queue_stalls);
    }

    #[test]
    fn shutdown_flushes_and_is_idempotent() {
        let svc = PeelService::start(small_cfg());
        svc.insert(&[10, 20, 30]);
        svc.shutdown();
        svc.shutdown();
        // The pending partial batch was sealed and applied before close.
        assert_eq!(svc.metrics().ops_applied, 3);
        // Post-shutdown submissions are dropped, not queued — including
        // sub-batch-size ones that would otherwise sit in the
        // accumulator forever while being reported accepted.
        assert_eq!(svc.insert(&keys(128, 0xe)), 0);
        assert_eq!(svc.insert(&[7, 8, 9]), 0);
        assert_eq!(svc.metrics().ops_applied, 3);
    }

    #[test]
    fn sealed_batches_are_teed_to_subscribers() {
        let svc = PeelService::start(small_cfg());
        let sub = svc.replication().subscribe();
        let ks = keys(150, 0xf);
        svc.insert(&ks);
        svc.flush();
        // The streamed batches carry consecutive sequence numbers and
        // exactly the submitted ops (150 keys = 2 full 64-op batches
        // plus the flush-sealed partial).
        let mut streamed = Vec::new();
        let mut seqs = Vec::new();
        while let Some(crate::replication::StreamItem::Batch(seq, b)) = sub.try_recv() {
            seqs.push(seq);
            streamed.extend(b.iter().map(|op| op.key));
        }
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "{seqs:?}");
        assert_eq!(seqs.len(), 3);
        streamed.sort_unstable();
        let mut want = ks;
        want.sort_unstable();
        assert_eq!(streamed, want);
        let m = svc.metrics();
        assert_eq!(m.replication.followers, 1);
        assert_eq!(m.replication.published_seq, 3);
    }

    #[test]
    fn ingest_batch_applies_directions_and_republishes() {
        let svc = PeelService::start(small_cfg());
        let sub = svc.replication().subscribe();
        let batch = vec![
            Op { key: 5, dir: 1 },
            Op { key: 9, dir: 1 },
            Op { key: 5, dir: -1 },
        ];
        assert!(svc.ingest_batch(batch.clone()));
        svc.flush();
        // Net content across all shards is exactly {9}.
        let mut content = Vec::new();
        for i in 0..svc.config().shards {
            let (_e, snap) = svc.snapshot_shard(i).unwrap();
            let rec = snap.recover();
            assert!(rec.complete && rec.negative.is_empty());
            content.extend(rec.positive);
        }
        assert_eq!(content, vec![9]);
        // The batch was re-published for chained followers, unaltered.
        match sub.try_recv().unwrap() {
            crate::replication::StreamItem::Batch(_, b) => assert_eq!(*b, batch),
            other => panic!("expected a batch, got {other:?}"),
        }
        // After shutdown replicated batches are refused, not lost silently.
        svc.shutdown();
        assert!(!svc.ingest_batch(vec![Op { key: 1, dir: 1 }]));
    }

    /// All keys the service holds, decoded shard by shard from the
    /// serving generation (asserting every shard decodes cleanly).
    fn decoded_content(svc: &PeelService) -> Vec<u64> {
        let mut content = Vec::new();
        for shard in 0..svc.shards() {
            let (_e, snap) = svc.snapshot_shard(shard).unwrap();
            let rec = snap.recover();
            assert!(rec.complete, "shard {shard} undecodable");
            assert!(rec.negative.is_empty(), "shard {shard} phantom deletes");
            content.extend(rec.positive);
        }
        content.sort_unstable();
        content
    }

    /// Cell-identical comparison against a from-scratch build at the
    /// same shard count.
    fn assert_cell_identical_to_fresh(svc: &PeelService, keys: &[u64]) {
        let fresh = PeelService::start(ServiceConfig {
            shards: svc.shards(),
            ..*svc.config()
        });
        fresh.insert(keys);
        fresh.flush();
        for shard in 0..svc.shards() {
            let (_e, a) = svc.snapshot_shard(shard).unwrap();
            let (_e, b) = fresh.snapshot_shard(shard).unwrap();
            assert_eq!(a, b, "shard {shard} not cell-identical to fresh build");
        }
    }

    #[test]
    fn reshard_splits_and_merges_with_identical_cells() {
        let svc = PeelService::start(ServiceConfig {
            batch_size: 64,
            queue_depth: 4,
            workers: 2,
            ..ServiceConfig::for_diff_budget(1, 2_048)
        });
        let ks = keys(900, 0x51);
        svc.insert(&ks);
        svc.flush();
        assert_eq!(svc.shards(), 1);
        assert_eq!(svc.generation(), 0);

        // Split 1 → 4.
        let status = svc.reshard(4).unwrap();
        assert!(!status.resharding);
        assert_eq!(status.serving_shards, 4);
        assert_eq!(status.keys_moved, 900);
        assert_eq!(status.completed, 1);
        assert_eq!(svc.shards(), 4);
        assert_eq!(svc.generation(), 1);
        assert_eq!(svc.hello().shards, 4);
        assert_eq!(decoded_content(&svc), {
            let mut want = ks.clone();
            want.sort_unstable();
            want
        });
        assert_cell_identical_to_fresh(&svc, &ks);

        // Merge 4 → 2.
        svc.reshard(2).unwrap();
        assert_eq!(svc.shards(), 2);
        assert_eq!(svc.generation(), 2);
        assert_cell_identical_to_fresh(&svc, &ks);

        // Merge back to 1: split-then-merge round-trips the routing, so
        // the single shard is cell-identical to the pre-split original.
        svc.reshard(1).unwrap();
        assert_eq!(svc.generation(), 3);
        assert_cell_identical_to_fresh(&svc, &ks);
    }

    #[test]
    fn reshard_dual_applies_racing_ingest() {
        let svc = std::sync::Arc::new(PeelService::start(ServiceConfig {
            batch_size: 32,
            queue_depth: 8,
            workers: 2,
            ..ServiceConfig::for_diff_budget(1, 4_096)
        }));
        let base = keys(1_000, 0x52);
        svc.insert(&base);
        svc.flush();

        // Begin the migration, then keep inserting while it is in
        // flight: every op must dual-apply to both generations.
        svc.reshard_begin(4).unwrap();
        assert!(svc.reshard_status().resharding);
        let racing: Vec<u64> = (0..500u64).map(|i| 0xace0_0000 | i).collect();
        let ingester = {
            let svc = std::sync::Arc::clone(&svc);
            let racing = racing.clone();
            std::thread::spawn(move || {
                for chunk in racing.chunks(16) {
                    svc.insert(chunk);
                }
                svc.flush();
            })
        };
        ingester.join().unwrap();
        let status = svc.reshard_commit().unwrap();
        assert_eq!(status.serving_shards, 4);
        assert_eq!(status.keys_moved, 1_000, "only pre-begin keys re-keyed");

        let mut want: Vec<u64> = base.iter().chain(racing.iter()).copied().collect();
        want.sort_unstable();
        assert_eq!(decoded_content(&svc), want);
        assert_cell_identical_to_fresh(&svc, &want);
    }

    #[test]
    fn reshard_abort_keeps_old_generation_authoritative() {
        let svc = PeelService::start(small_cfg());
        let ks = keys(600, 0x53);
        svc.insert(&ks);
        svc.flush();
        let before: Vec<Iblt> = (0..svc.shards())
            .map(|s| svc.snapshot_shard(s).unwrap().1)
            .collect();

        svc.reshard_begin(8).unwrap();
        // Mid-migration writes dual-apply...
        svc.insert(&[0xdead_0001, 0xdead_0002]);
        svc.flush();
        // ...and an abort drops the new generation with nothing lost.
        let status = svc.reshard_abort().unwrap();
        assert!(!status.resharding);
        assert_eq!(status.aborted, 1);
        assert_eq!(svc.shards(), 4);
        assert_eq!(svc.generation(), 0);
        let changed = before.iter().enumerate().any(|(s, old)| {
            let (_e, now) = svc.snapshot_shard(s as u32).unwrap();
            &now != old
        });
        assert!(
            changed,
            "mid-migration keys must land in the old generation"
        );
        let mut want = ks;
        want.extend([0xdead_0001, 0xdead_0002]);
        want.sort_unstable();
        assert_eq!(decoded_content(&svc), want);
    }

    #[test]
    fn reshard_control_errors_are_total() {
        let svc = PeelService::start(small_cfg());
        svc.insert(&keys(100, 0x54));
        svc.flush();
        // No migration in flight.
        assert!(matches!(
            svc.reshard_commit(),
            Err(ServiceError::NotResharding)
        ));
        assert!(matches!(
            svc.reshard_abort(),
            Err(ServiceError::NotResharding)
        ));
        assert!(matches!(
            svc.reshard_verify(0),
            Err(ServiceError::NotResharding)
        ));
        // Bad targets: zero, unchanged, hostile.
        assert!(matches!(
            svc.reshard_begin(0),
            Err(ServiceError::BadReshardTarget { to: 0 })
        ));
        assert!(matches!(
            svc.reshard_begin(4),
            Err(ServiceError::BadReshardTarget { to: 4 })
        ));
        assert!(matches!(
            svc.reshard_begin(MAX_RESHARD_SHARDS + 1),
            Err(ServiceError::BadReshardTarget { .. })
        ));
        // Begin is idempotent for the same target, an error for another.
        svc.reshard_begin(2).unwrap();
        assert!(svc.reshard_begin(2).unwrap().resharding);
        assert!(matches!(
            svc.reshard_begin(8),
            Err(ServiceError::ReshardInProgress { to: 2 })
        ));
        // Verify out-of-range new shard.
        assert!(matches!(
            svc.reshard_verify(7),
            Err(ServiceError::NoSuchShard {
                shard: 7,
                shards: 2
            })
        ));
        svc.reshard_commit().unwrap();
        assert_eq!(svc.shards(), 2);
    }

    #[test]
    fn reshard_verify_returns_projected_digests() {
        let svc = PeelService::start(ServiceConfig {
            batch_size: 64,
            queue_depth: 4,
            workers: 2,
            ..ServiceConfig::for_diff_budget(2, 1_024)
        });
        let ks = keys(400, 0x55);
        svc.insert(&ks);
        svc.flush();
        svc.reshard_begin(3).unwrap();
        // Each new shard's digest decodes to exactly the keys the new
        // routing sends there.
        let new_router = svc.router().resharded(3);
        let parts = new_router.partition(&ks);
        for j in 0..3u32 {
            let (_epoch, digest) = svc.reshard_verify(j).unwrap();
            let rec = digest.recover();
            assert!(rec.complete);
            let mut got = rec.positive;
            got.sort_unstable();
            let mut want = parts[j as usize].clone();
            want.sort_unstable();
            assert_eq!(got, want, "new shard {j}");
        }
        assert_eq!(svc.reshard_status().shards_verified, 3);
        svc.reshard_commit().unwrap();
    }

    #[test]
    fn reshard_undecodable_contents_roll_back() {
        // 64-key diff budget but thousands of resident keys: the serving
        // shard cannot decode, so begin must fail and leave everything
        // as it was.
        let svc = PeelService::start(ServiceConfig {
            batch_size: 256,
            queue_depth: 8,
            workers: 2,
            ..ServiceConfig::for_diff_budget(1, 64)
        });
        let ks = keys(5_000, 0x56);
        svc.insert(&ks);
        svc.flush();
        assert!(matches!(
            svc.reshard_begin(4),
            Err(ServiceError::ReshardUndecodable { .. })
        ));
        let status = svc.reshard_status();
        assert!(!status.resharding);
        assert_eq!(status.aborted, 1);
        assert_eq!(svc.shards(), 1);
        // Ingest still works (no dual-apply left behind).
        svc.insert(&[1, 2, 3]);
        svc.flush();
    }

    #[test]
    #[should_panic(expected = "wire frame cap")]
    fn oversized_shard_tables_are_rejected_at_start() {
        // ~2.8M cells serialize to ~67 MB — past the 16 MiB frame cap;
        // starting such a service must fail loudly, not let every later
        // Digest/Reconcile response die mid-write.
        let cfg = ServiceConfig::for_diff_budget(4, 1_000_000);
        let _ = PeelService::start(cfg);
    }
}

//! The reconciliation service core: sharded atomic IBLTs fed by a batched
//! ingest pipeline, with an epoch-based recovery scheduler.
//!
//! ## Ingest
//!
//! Submitted operations accumulate in a shared buffer; every
//! `batch_size` ops a batch is sealed and enqueued on a bounded queue
//! (producers block when it fills — that is the service's backpressure).
//! Worker threads drain batches, bucket the ops by shard, and apply each
//! bucket through the atomic `fetch_add` / `fetch_xor` paths of
//! [`AtomicIblt`] while holding the shard's **apply gate** in shared mode.
//! Applying a bucket bumps the shard's **epoch**.
//!
//! ## Recovery
//!
//! A reconciliation takes the shard gate exclusively just long enough to
//! copy the cells ([`AtomicIblt::snapshot_into`]) and read the epoch — a
//! memcpy, not a decode — then releases it and runs subtraction plus
//! subround parallel recovery ([`AtomicIblt::par_recover_in`]) entirely
//! on the snapshot. Ingest to other shards is never touched; ingest to
//! the snapshotted shard resumes as soon as the copy is done. The
//! returned epoch tells the caller exactly which prefix of applied
//! batches the diff covers.
//!
//! Every buffer the cycle needs — the snapshot table, the atomic diff
//! table, and the recovery workspace — comes from a shared scratch pool:
//! after the first reconcile of each concurrency lane, repeated epochs
//! run the whole snapshot → subtract → recover path without touching the
//! allocator (shard tables share a geometry, so one pooled context
//! serves every shard).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Mutex, RwLock};
use peel_iblt::{AtomicIblt, Iblt, IbltConfig, RecoveryWorkspace};

use crate::metrics::{Metrics, MetricsSnapshot, ShardStats};
use crate::queue::{Batch, BoundedQueue, Op};
use crate::replication::ReplicationHub;
use crate::router::{shard_iblt_config, ShardRouter};
use crate::wire::{HelloInfo, ShardDiff, PROTOCOL_VERSION};

/// Tunables for a [`PeelService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of independent IBLT shards (≥ 1).
    pub shards: u32,
    /// Base per-shard IBLT config; shard `i` uses
    /// [`shard_iblt_config`]`(shard_iblt, i)`. Size it for the expected
    /// per-shard *difference*, not the ingested set — the table is a
    /// constant-size sketch regardless of traffic volume.
    pub shard_iblt: IbltConfig,
    /// Ops per sealed ingest batch (≥ 1).
    pub batch_size: usize,
    /// Bounded queue capacity in batches (≥ 1); the backpressure knob.
    pub queue_depth: usize,
    /// Ingest worker threads (≥ 1).
    pub workers: usize,
    /// Seed of the key → shard router.
    pub router_seed: u64,
    /// Per-follower replication stream queue depth, in batches (≥ 1).
    /// Publishing to a full follower queue evicts the oldest batch
    /// instead of blocking ingest; evicted batches are healed by
    /// anti-entropy.
    pub repl_queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            shard_iblt: IbltConfig::for_load(4, 1024, 0.5, 0x1b17_5eed),
            batch_size: 1024,
            queue_depth: 64,
            workers: default_workers(),
            router_seed: 0x7007_1e55_0000_0001,
            repl_queue_depth: 256,
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

impl ServiceConfig {
    /// Config sized so that a total symmetric difference of `total_diff`
    /// keys (spread across `shards` shards by the router) decodes
    /// reliably: each shard's table gets 2× headroom over its expected
    /// share, at load 0.5 with r = 4 hash functions.
    pub fn for_diff_budget(shards: u32, total_diff: usize) -> Self {
        let per_shard = total_diff.div_ceil(shards.max(1) as usize);
        let sized = (per_shard * 2).max(64);
        ServiceConfig {
            shards,
            shard_iblt: IbltConfig::for_load(4, sized, 0.5, 0x1b17_5eed),
            ..ServiceConfig::default()
        }
    }

    /// The config a follower should run so its shards are
    /// digest-compatible with the primary that sent `hello`: same shard
    /// count, router seed, base IBLT config, and batch size; local
    /// defaults for everything else. Values are clamped to the
    /// constructor invariants so a hostile handshake cannot panic
    /// [`PeelService::start`].
    pub fn from_hello(hello: &HelloInfo) -> Self {
        ServiceConfig {
            shards: hello.shards.max(1),
            shard_iblt: hello.base_config,
            batch_size: (hello.batch_size as usize).max(1),
            router_seed: hello.router_seed,
            ..ServiceConfig::default()
        }
    }

    /// The handshake info a server built from this config advertises.
    pub fn hello(&self) -> HelloInfo {
        HelloInfo {
            version: PROTOCOL_VERSION,
            shards: self.shards,
            router_seed: self.router_seed,
            base_config: self.shard_iblt,
            batch_size: self.batch_size as u32,
        }
    }
}

/// Service-level failures (surfaced to clients as protocol `Error`
/// responses, never as panics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Shard index out of range.
    NoSuchShard {
        /// Requested shard.
        shard: u32,
        /// Shards available.
        shards: u32,
    },
    /// A peer digest was built with a different IBLT config than the
    /// shard it targets (subtraction would be meaningless).
    ConfigMismatch {
        /// The shard's config.
        expected: IbltConfig,
        /// The digest's config.
        got: IbltConfig,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::NoSuchShard { shard, shards } => {
                write!(f, "shard {shard} out of range (service has {shards})")
            }
            ServiceError::ConfigMismatch { expected, got } => write!(
                f,
                "digest config {got:?} does not match shard config {expected:?}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

struct Shard {
    table: AtomicIblt,
    /// Shared: a worker applying a batch bucket. Exclusive: the recovery
    /// scheduler copying cells. Guards snapshot *consistency* only — the
    /// cell updates themselves are atomic.
    gate: RwLock<()>,
    /// Batch buckets applied to this shard.
    epoch: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
}

/// Pooled per-reconcile buffers: the frozen shard snapshot (which the
/// subtraction then overwrites with the diff), the atomic table the diff
/// is decoded in, and the recovery workspace. Shards share a table
/// geometry (only the hash seed differs), so any context serves any
/// shard; the in-place loaders retarget configs on the fly.
struct ReconcileScratch {
    snap: Iblt,
    diff: AtomicIblt,
    ws: RecoveryWorkspace,
}

struct Inner {
    cfg: ServiceConfig,
    router: ShardRouter,
    shards: Vec<Shard>,
    queue: BoundedQueue,
    /// The shared accumulator batches are sealed from.
    pending: Mutex<Batch>,
    /// The replication tee: every sealed batch is published here before
    /// it enters the local queue.
    hub: ReplicationHub,
    /// Scratch pool for [`PeelService::reconcile_shard`]; grows to the
    /// peak number of concurrent reconciles and is reused forever after.
    scratch: Mutex<Vec<ReconcileScratch>>,
    metrics: Metrics,
}

impl Inner {
    fn take_scratch(&self) -> ReconcileScratch {
        if let Some(ctx) = self.scratch.lock().pop() {
            return ctx;
        }
        let cfg = shard_iblt_config(self.cfg.shard_iblt, 0);
        ReconcileScratch {
            snap: Iblt::new(cfg),
            diff: AtomicIblt::new(cfg),
            ws: RecoveryWorkspace::new(),
        }
    }

    fn put_scratch(&self, ctx: ReconcileScratch) {
        self.scratch.lock().push(ctx);
    }
}

impl Inner {
    /// Tee a sealed batch to the replication hub, then enqueue it
    /// locally. The publish never blocks; the local push is where
    /// backpressure lives.
    fn enqueue_sealed(&self, batch: Batch) -> bool {
        self.hub.publish(&batch);
        self.queue.push(batch)
    }
}

/// A running reconciliation service: shard router, ingest worker pool,
/// and recovery scheduler. Cheap to share via `Arc`; shuts down (and
/// joins its workers) on drop.
pub struct PeelService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PeelService {
    /// Validate the config, build the shards, and start the worker pool.
    pub fn start(cfg: ServiceConfig) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.batch_size >= 1, "batch size must be at least 1");
        assert!(cfg.workers >= 1, "need at least one worker");
        // A shard's serialized digest (config + 24 bytes/cell + frame
        // header slack) must fit in one wire frame, or every
        // Digest/Reconcile response would die in `write_frame` after the
        // server came up healthy.
        assert!(
            cfg.shard_iblt.total_cells() * 24 + 64 <= crate::wire::MAX_FRAME,
            "shard tables of {} cells serialize past the {} byte wire frame cap; \
             shrink the per-shard diff budget or raise shard count",
            cfg.shard_iblt.total_cells(),
            crate::wire::MAX_FRAME,
        );
        let shards = (0..cfg.shards)
            .map(|i| Shard {
                table: AtomicIblt::new(shard_iblt_config(cfg.shard_iblt, i)),
                gate: RwLock::new(()),
                epoch: AtomicU64::new(0),
                inserts: AtomicU64::new(0),
                deletes: AtomicU64::new(0),
            })
            .collect();
        let inner = Arc::new(Inner {
            router: ShardRouter::new(cfg.shards, cfg.router_seed),
            shards,
            queue: BoundedQueue::new(cfg.queue_depth),
            pending: Mutex::new(Vec::with_capacity(cfg.batch_size)),
            hub: ReplicationHub::new(cfg.repl_queue_depth.max(1)),
            scratch: Mutex::new(Vec::new()),
            metrics: Metrics::default(),
            cfg,
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        PeelService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }

    /// The handshake info this service advertises.
    pub fn hello(&self) -> HelloInfo {
        self.inner.cfg.hello()
    }

    /// The key → shard router.
    pub fn router(&self) -> &ShardRouter {
        &self.inner.router
    }

    /// Submit keys for insertion. Returns the number accepted (everything,
    /// unless the service is shutting down).
    pub fn insert(&self, keys: &[u64]) -> u64 {
        self.submit(keys, 1)
    }

    /// Submit keys for deletion.
    pub fn delete(&self, keys: &[u64]) -> u64 {
        self.submit(keys, -1)
    }

    fn submit(&self, keys: &[u64], dir: i64) -> u64 {
        let inner = &self.inner;
        // After shutdown nothing in the accumulator will ever be applied
        // (the queue rejects sealed batches), so accepting keys into it
        // would silently lose them while reporting them accepted.
        if inner.queue.is_closed() {
            return 0;
        }
        let batch_size = inner.cfg.batch_size;
        let mut sealed: Vec<Batch> = Vec::new();
        {
            let mut pending = inner.pending.lock();
            for &key in keys {
                pending.push(Op { key, dir });
                if pending.len() >= batch_size {
                    let full = std::mem::replace(&mut *pending, Vec::with_capacity(batch_size));
                    sealed.push(full);
                }
            }
        }
        // Push outside the accumulator lock: a full queue blocks here
        // (backpressure) without stalling other submitters' accumulation.
        let mut dropped = 0u64;
        for b in sealed {
            let n = b.len() as u64;
            if !inner.enqueue_sealed(b) {
                dropped += n;
            }
        }
        (keys.len() as u64).saturating_sub(dropped)
    }

    /// Seal whatever is in the accumulator into a (possibly short) batch.
    fn seal_pending(&self) {
        let batch = {
            let mut pending = self.inner.pending.lock();
            if pending.is_empty() {
                return;
            }
            std::mem::take(&mut *pending)
        };
        self.inner.enqueue_sealed(batch);
    }

    /// Apply one already-sealed batch through the ingest pipeline,
    /// preserving each op's direction — the follower-side entry point
    /// for replicated batches. The batch is re-published to this
    /// service's own replication hub first, so replication chains
    /// (primary → follower → sub-follower) keep streaming. Returns
    /// `false` if the service is shutting down.
    pub fn ingest_batch(&self, batch: Batch) -> bool {
        if batch.is_empty() {
            return true;
        }
        if self.inner.queue.is_closed() {
            return false;
        }
        self.inner.enqueue_sealed(batch)
    }

    /// The replication tee — subscribe here to stream this service's
    /// sealed batches.
    pub fn replication(&self) -> &ReplicationHub {
        &self.inner.hub
    }

    /// The raw metric counters (for in-crate replication plumbing).
    pub(crate) fn metrics_handle(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Block until every op submitted before this call is applied to its
    /// shard (partial batches are sealed and flushed too).
    pub fn flush(&self) {
        self.seal_pending();
        self.inner.queue.wait_idle();
    }

    /// Consistent snapshot of one shard: its epoch and a frozen copy of
    /// its table. Blocks that shard's ingest only for the cell copy.
    pub fn snapshot_shard(&self, shard: u32) -> Result<(u64, Iblt), ServiceError> {
        let s = self.shard(shard)?;
        let _gate = s.gate.write();
        let epoch = s.epoch.load(Relaxed);
        Ok((epoch, s.table.snapshot()))
    }

    /// Consistent snapshot of one shard into an existing table (reusing
    /// its buffer and retargeting its config) — the allocation-free form
    /// of [`PeelService::snapshot_shard`]. Returns the shard epoch at
    /// snapshot time.
    pub fn snapshot_shard_into(&self, shard: u32, out: &mut Iblt) -> Result<u64, ServiceError> {
        let s = self.shard(shard)?;
        let _gate = s.gate.write();
        let epoch = s.epoch.load(Relaxed);
        s.table.snapshot_into(out);
        Ok(epoch)
    }

    fn shard(&self, shard: u32) -> Result<&Shard, ServiceError> {
        self.inner.shards.get(shard as usize).ok_or({
            ServiceError::NoSuchShard {
                shard,
                shards: self.inner.cfg.shards,
            }
        })
    }

    /// Reconcile one shard against a peer digest: snapshot at the current
    /// epoch, subtract, and run subround parallel recovery on the copy.
    /// Keys only in this service's shard come back in
    /// [`ShardDiff::only_local`]; keys only in the digest in
    /// [`ShardDiff::only_remote`] (both sorted).
    ///
    /// Every table and workspace involved is drawn from the service's
    /// scratch pool, so repeated epochs reconcile without allocating
    /// (beyond the returned diff key vectors, which are diff-sized, not
    /// table-sized).
    pub fn reconcile_shard(&self, shard: u32, digest: &Iblt) -> Result<ShardDiff, ServiceError> {
        let mut ctx = self.inner.take_scratch();
        let epoch = match self.snapshot_shard_into(shard, &mut ctx.snap) {
            Ok(epoch) => epoch,
            Err(e) => {
                self.inner.put_scratch(ctx);
                return Err(e);
            }
        };
        if ctx.snap.config() != digest.config() {
            let expected = *ctx.snap.config();
            self.inner.put_scratch(ctx);
            return Err(ServiceError::ConfigMismatch {
                expected,
                got: *digest.config(),
            });
        }
        // Everything below runs on the frozen copy — ingest is live again.
        // One fused sweep writes snapshot − digest into the pooled atomic
        // diff table, seeds the recovery workspace, and decodes.
        let rec = ctx
            .diff
            .recover_subtracted_in(&ctx.snap, digest, &mut ctx.ws);
        self.inner.metrics.record_recovery(
            rec.complete,
            rec.subrounds,
            &rec.per_subround,
            &rec.per_subround_ns,
        );
        let mut only_local = rec.positive.clone();
        let mut only_remote = rec.negative.clone();
        only_local.sort_unstable();
        only_remote.sort_unstable();
        let diff = ShardDiff {
            shard,
            epoch,
            complete: rec.complete,
            subrounds: rec.subrounds,
            only_local,
            only_remote,
        };
        self.inner.put_scratch(ctx);
        Ok(diff)
    }

    /// Point-in-time service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let inner = &self.inner;
        inner
            .metrics
            .queue_stalls
            .store(inner.queue.stalls(), Relaxed);
        let shards = inner
            .shards
            .iter()
            .map(|s| ShardStats {
                epoch: s.epoch.load(Relaxed),
                inserts: s.inserts.load(Relaxed),
                deletes: s.deletes.load(Relaxed),
            })
            .collect();
        inner.metrics.snapshot(shards, inner.hub.stats())
    }

    /// Flush remaining ops, stop the workers, and join them. Idempotent.
    pub fn shutdown(&self) {
        self.seal_pending();
        // Close the hub first so replication senders parked in
        // `Subscription::recv` wake and drain before their connections
        // are torn down.
        self.inner.hub.close();
        self.inner.queue.close();
        let mut ws = self.workers.lock();
        for w in ws.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for PeelService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    let nshards = inner.shards.len();
    while let Some(batch) = inner.queue.pop() {
        let mut buckets: Vec<Vec<Op>> = vec![Vec::new(); nshards];
        for op in &batch {
            buckets[inner.router.shard_of(op.key)].push(*op);
        }
        for (i, ops) in buckets.into_iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            let shard = &inner.shards[i];
            let mut inserts = 0u64;
            {
                let _gate = shard.gate.read();
                for op in &ops {
                    if op.dir > 0 {
                        shard.table.insert(op.key);
                        inserts += 1;
                    } else {
                        shard.table.delete(op.key);
                    }
                }
                // Bump under the gate so a snapshot's epoch counts exactly
                // the buckets whose cells it observed.
                shard.epoch.fetch_add(1, Relaxed);
            }
            shard.inserts.fetch_add(inserts, Relaxed);
            shard.deletes.fetch_add(ops.len() as u64 - inserts, Relaxed);
        }
        inner.metrics.batches_applied.fetch_add(1, Relaxed);
        inner
            .metrics
            .ops_applied
            .fetch_add(batch.len() as u64, Relaxed);
        inner.queue.task_done();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::build_shard_digests;

    fn keys(n: u64, tag: u64) -> Vec<u64> {
        (0..n)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
            .collect()
    }

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            batch_size: 64,
            queue_depth: 4,
            workers: 2,
            ..ServiceConfig::for_diff_budget(4, 512)
        }
    }

    #[test]
    fn ingest_lands_in_the_right_shards() {
        let svc = PeelService::start(small_cfg());
        let ks = keys(300, 0xa);
        assert_eq!(svc.insert(&ks), 300);
        svc.flush();
        let m = svc.metrics();
        assert_eq!(m.ops_applied, 300);
        assert_eq!(m.shards.iter().map(|s| s.inserts).sum::<u64>(), 300);
        // Every shard's content decodes to exactly the keys routed to it.
        let parts = svc.router().partition(&ks);
        for (i, part) in parts.iter().enumerate() {
            let (_epoch, snap) = svc.snapshot_shard(i as u32).unwrap();
            let rec = snap.recover();
            assert!(rec.complete, "shard {i}");
            let mut got = rec.positive;
            got.sort_unstable();
            let mut want = part.clone();
            want.sort_unstable();
            assert_eq!(got, want, "shard {i}");
        }
    }

    #[test]
    fn reconcile_shard_decodes_the_difference() {
        let svc = PeelService::start(small_cfg());
        let shared = keys(5_000, 0xb);
        let local_only: Vec<u64> = (0..40u64).map(|i| 0x10c0_0000 | i).collect();
        let remote_only: Vec<u64> = (0..30u64).map(|i| 0x4e40_0000 | i).collect();

        let mut local = shared.clone();
        local.extend(&local_only);
        svc.insert(&local);
        svc.flush();

        let mut remote = shared;
        remote.extend(&remote_only);
        let hello = svc.hello();
        let digests =
            build_shard_digests(&remote, hello.shards, hello.router_seed, hello.base_config);

        let mut got_local = Vec::new();
        let mut got_remote = Vec::new();
        for (i, digest) in digests.iter().enumerate() {
            let d = svc.reconcile_shard(i as u32, digest).unwrap();
            assert!(d.complete, "shard {i}");
            assert!(d.epoch > 0 || d.only_local.is_empty());
            got_local.extend(d.only_local);
            got_remote.extend(d.only_remote);
        }
        got_local.sort_unstable();
        got_remote.sort_unstable();
        let mut want_local = local_only;
        want_local.sort_unstable();
        let mut want_remote = remote_only;
        want_remote.sort_unstable();
        assert_eq!(got_local, want_local);
        assert_eq!(got_remote, want_remote);

        let m = svc.metrics();
        assert_eq!(m.recoveries, 4);
        assert_eq!(m.recoveries_incomplete, 0);
        assert!(m.recovery_subrounds > 0);
        // Per-subround timing (ISSUE 4 satellite): the wall-time trace is
        // aligned with the key-count trace and sums into the total.
        assert!(m.recovery_ns > 0);
        assert_eq!(m.last_recovery_trace_ns.len(), m.last_recovery_trace.len());
        assert!(m.recovery_ns >= m.last_recovery_trace_ns.iter().sum::<u64>());
    }

    #[test]
    fn repeated_reconciles_reuse_the_scratch_pool() {
        // Sequential re-reconciles of an unchanged workload must keep
        // decoding the same diff (pool retargets configs across shards)
        // and leave exactly one pooled context behind.
        let svc = PeelService::start(small_cfg());
        let local = keys(3_000, 0x5c);
        svc.insert(&local);
        svc.flush();
        let hello = svc.hello();
        let mut remote = local.clone();
        remote.truncate(2_980); // 20 keys only-local
        let digests =
            build_shard_digests(&remote, hello.shards, hello.router_seed, hello.base_config);
        for round in 0..6 {
            let mut found = 0;
            for (i, d) in digests.iter().enumerate() {
                let diff = svc.reconcile_shard(i as u32, d).unwrap();
                assert!(diff.complete, "round {round} shard {i}");
                assert!(diff.only_remote.is_empty());
                found += diff.only_local.len();
            }
            assert_eq!(found, 20, "round {round}");
        }
        assert_eq!(
            svc.inner.scratch.lock().len(),
            1,
            "sequential reconciles share one context"
        );
        assert_eq!(svc.metrics().recoveries, 24);
    }

    #[test]
    fn bad_shard_and_bad_config_are_errors() {
        let svc = PeelService::start(small_cfg());
        let hello = svc.hello();
        let wrong = Iblt::new(IbltConfig::new(3, 10, 1));
        assert!(matches!(
            svc.reconcile_shard(99, &wrong),
            Err(ServiceError::NoSuchShard { shard: 99, .. })
        ));
        assert!(matches!(
            svc.reconcile_shard(0, &wrong),
            Err(ServiceError::ConfigMismatch { .. })
        ));
        // A digest with the *base* config is also wrong for shard 0 (the
        // per-shard seed differs) — exactly the client bug the check
        // exists to catch.
        let base = Iblt::new(hello.base_config);
        assert!(matches!(
            svc.reconcile_shard(0, &base),
            Err(ServiceError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn flush_applies_partial_batches() {
        let svc = PeelService::start(small_cfg());
        svc.insert(&[1, 2, 3]); // far below batch_size
        assert_eq!(svc.metrics().ops_applied, 0, "nothing sealed yet");
        svc.flush();
        assert_eq!(svc.metrics().ops_applied, 3);
    }

    #[test]
    fn ingest_continues_while_a_shard_recovers() {
        // Reconcile in a loop while another thread streams inserts; the
        // service must neither deadlock nor corrupt either side.
        let svc = std::sync::Arc::new(PeelService::start(small_cfg()));
        let hello = svc.hello();
        let base = keys(2_000, 0xc);
        svc.insert(&base);
        svc.flush();
        let digests =
            build_shard_digests(&base, hello.shards, hello.router_seed, hello.base_config);

        let racing: Vec<u64> = (0..256u64).map(|i| 0xface_0000 | i).collect();
        let ingester = {
            let svc = std::sync::Arc::clone(&svc);
            let racing = racing.clone();
            std::thread::spawn(move || {
                for chunk in racing.chunks(16) {
                    svc.insert(chunk);
                }
                svc.flush();
            })
        };
        for round in 0..8 {
            for (i, d) in digests.iter().enumerate() {
                let diff = svc.reconcile_shard(i as u32, d).unwrap();
                // Any key the racing ingester has landed shows up as
                // local-only; it must be one of the racing keys.
                for k in diff.only_local {
                    assert!(racing.contains(&k), "round {round}: stray key {k:#x}");
                }
                assert!(diff.only_remote.is_empty());
            }
        }
        ingester.join().unwrap();
        svc.flush();
        // After the dust settles: exactly the racing keys differ.
        let mut got = Vec::new();
        for (i, d) in digests.iter().enumerate() {
            let diff = svc.reconcile_shard(i as u32, d).unwrap();
            assert!(diff.complete);
            got.extend(diff.only_local);
        }
        got.sort_unstable();
        let mut want = racing;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn backpressure_stalls_are_counted() {
        // One slow-ish worker, capacity-1 queue, many batches.
        let cfg = ServiceConfig {
            batch_size: 8,
            queue_depth: 1,
            workers: 1,
            ..ServiceConfig::for_diff_budget(2, 64)
        };
        let svc = PeelService::start(cfg);
        svc.insert(&keys(4_096, 0xd));
        svc.flush();
        let m = svc.metrics();
        assert_eq!(m.ops_applied, 4_096);
        assert!(m.batches_applied >= 512);
        // With 512 batches through a depth-1 queue, some push stalled.
        assert!(m.queue_stalls > 0, "stalls = {}", m.queue_stalls);
    }

    #[test]
    fn shutdown_flushes_and_is_idempotent() {
        let svc = PeelService::start(small_cfg());
        svc.insert(&[10, 20, 30]);
        svc.shutdown();
        svc.shutdown();
        // The pending partial batch was sealed and applied before close.
        assert_eq!(svc.metrics().ops_applied, 3);
        // Post-shutdown submissions are dropped, not queued — including
        // sub-batch-size ones that would otherwise sit in the
        // accumulator forever while being reported accepted.
        assert_eq!(svc.insert(&keys(128, 0xe)), 0);
        assert_eq!(svc.insert(&[7, 8, 9]), 0);
        assert_eq!(svc.metrics().ops_applied, 3);
    }

    #[test]
    fn sealed_batches_are_teed_to_subscribers() {
        let svc = PeelService::start(small_cfg());
        let sub = svc.replication().subscribe();
        let ks = keys(150, 0xf);
        svc.insert(&ks);
        svc.flush();
        // The streamed batches carry consecutive sequence numbers and
        // exactly the submitted ops (150 keys = 2 full 64-op batches
        // plus the flush-sealed partial).
        let mut streamed = Vec::new();
        let mut seqs = Vec::new();
        while let Some((seq, b)) = sub.try_recv() {
            seqs.push(seq);
            streamed.extend(b.iter().map(|op| op.key));
        }
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "{seqs:?}");
        assert_eq!(seqs.len(), 3);
        streamed.sort_unstable();
        let mut want = ks;
        want.sort_unstable();
        assert_eq!(streamed, want);
        let m = svc.metrics();
        assert_eq!(m.replication.followers, 1);
        assert_eq!(m.replication.published_seq, 3);
    }

    #[test]
    fn ingest_batch_applies_directions_and_republishes() {
        let svc = PeelService::start(small_cfg());
        let sub = svc.replication().subscribe();
        let batch = vec![
            Op { key: 5, dir: 1 },
            Op { key: 9, dir: 1 },
            Op { key: 5, dir: -1 },
        ];
        assert!(svc.ingest_batch(batch.clone()));
        svc.flush();
        // Net content across all shards is exactly {9}.
        let mut content = Vec::new();
        for i in 0..svc.config().shards {
            let (_e, snap) = svc.snapshot_shard(i).unwrap();
            let rec = snap.recover();
            assert!(rec.complete && rec.negative.is_empty());
            content.extend(rec.positive);
        }
        assert_eq!(content, vec![9]);
        // The batch was re-published for chained followers, unaltered.
        assert_eq!(*sub.try_recv().unwrap().1, batch);
        // After shutdown replicated batches are refused, not lost silently.
        svc.shutdown();
        assert!(!svc.ingest_batch(vec![Op { key: 1, dir: 1 }]));
    }

    #[test]
    #[should_panic(expected = "wire frame cap")]
    fn oversized_shard_tables_are_rejected_at_start() {
        // ~2.8M cells serialize to ~67 MB — past the 16 MiB frame cap;
        // starting such a service must fail loudly, not let every later
        // Digest/Reconcile response die mid-write.
        let cfg = ServiceConfig::for_diff_budget(4, 1_000_000);
        let _ = PeelService::start(cfg);
    }
}

//! Length-prefixed binary wire protocol for the reconciliation service.
//!
//! Every message travels as one **frame**: a little-endian `u32` payload
//! length followed by the payload; the payload's first byte is a message
//! tag. Frames are capped at [`MAX_FRAME`] bytes so a corrupt or hostile
//! length prefix cannot trigger an unbounded allocation. All decoding is
//! total: truncated, oversized, or malformed input returns a
//! [`WireError`] — it never panics — which the round-trip and corruption
//! property tests in `tests/proptest_wire.rs` enforce.
//!
//! The protocol is deliberately `std`-only (no serde — crates.io is
//! unavailable in this build environment) and versioned by a magic byte in
//! the `Hello` exchange so future revisions can detect mismatches.

use std::fmt;
use std::io::{self, Read, Write};

use peel_iblt::{Cell, Iblt, IbltConfig};

use crate::metrics::{
    ConnectionStats, FollowerStats, HistogramSnapshot, MetricsSnapshot, ReplicationStats,
    ReshardStats, ShardStats, HISTOGRAM_BUCKETS, REQUEST_CLASSES,
};
use crate::queue::Op;
use crate::recorder::FlightRecord;

/// Maximum frame payload size (16 MiB). Large enough for an IBLT digest of
/// hundreds of thousands of cells; small enough that a garbage length
/// prefix cannot exhaust memory.
pub const MAX_FRAME: usize = 16 << 20;

/// Protocol revision carried in `Hello` responses. Revision 2 added the
/// replication frames (`Subscribe`, `Replicate`, `ReplicateAck`) and the
/// replication block of `Stats`; revision 3 added the recovery timing
/// fields of `Stats` (`recovery_ns`, `last_recovery_trace_ns`);
/// revision 4 added the live-resharding frames (`ReshardBegin`,
/// `ReshardDigest`, `ReshardCommit`, `ReshardAbort`), the `Reshard` and
/// sparse-encoded `DigestSparse` responses, and the reshard block of
/// `Stats`; revision 5 added the observability frames (`MetricsText`,
/// `DebugDump`) and the histogram + per-follower blocks of `Stats`;
/// revision 6 added the replica-mesh machinery: the replication epoch
/// carried in `Hello`, `Replicate`, and `ReplicateAck` (fencing stale
/// primaries), cumulative window acks, the `ReplicaStatus` election
/// probe, the `ReadDigest`/`ReadStale` converged-read pair, the
/// in-stream `GenerationChange` notice, the `as_of_seq` stamp on shard
/// diffs, and the epoch + fencing block of `Stats`. v5 and v6 ends
/// refuse each other cleanly at the `Hello` exchange: the epoch field
/// sits at the tail of the `Hello` payload, so a v5 decoder sees
/// trailing bytes and a v6 decoder sees a truncated message. Revision 7
/// added the connection block of `Stats` (live/accepted/refused/
/// idle-reaped counts and accept-error totals from the reactor server);
/// the `Hello` layout is unchanged, and a v6 peer refuses a v7 `Stats`
/// frame at the trailing-bytes check rather than at the handshake.
pub const PROTOCOL_VERSION: u8 = 7;

/// Everything that can go wrong encoding, decoding, or transporting a
/// message.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file error.
    Io(io::Error),
    /// The payload ended before the message did (truncated frame).
    UnexpectedEof,
    /// A frame announced a payload larger than [`MAX_FRAME`].
    FrameTooLarge(u64),
    /// Unknown message or enum tag.
    BadTag(u8),
    /// A length field is inconsistent with the bytes actually present.
    BadLength(u64),
    /// Decoded bytes violate an invariant (e.g. an IBLT config with fewer
    /// than two hash functions).
    Malformed(String),
    /// The message decoded but left unconsumed trailing bytes.
    TrailingBytes(usize),
    /// The peer answered with a protocol-level `Error` response.
    Remote(String),
    /// The peer answered with a response of the wrong kind.
    UnexpectedResponse(&'static str),
    /// A read or write missed its socket deadline (the peer is up but
    /// stalled). Distinct from [`WireError::Io`] so callers can retry or
    /// fail over instead of treating the peer as dead.
    TimedOut,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::UnexpectedEof => write!(f, "truncated message"),
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadLength(n) => write!(f, "length field {n} inconsistent with payload"),
            WireError::Malformed(m) => write!(f, "malformed message: {m}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::Remote(m) => write!(f, "server error: {m}"),
            WireError::UnexpectedResponse(k) => write!(f, "unexpected response kind: {k}"),
            WireError::TimedOut => write!(f, "socket deadline elapsed"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        // A clean EOF mid-frame is a truncation, not a transport fault.
        match e.kind() {
            io::ErrorKind::UnexpectedEof => WireError::UnexpectedEof,
            // Both kinds surface from an elapsed SO_RCVTIMEO/SO_SNDTIMEO
            // depending on platform.
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => WireError::TimedOut,
            _ => WireError::Io(e),
        }
    }
}

/// Service parameters a client learns from the `Hello` handshake —
/// everything needed to route keys and build compatible shard digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloInfo {
    /// Protocol revision ([`PROTOCOL_VERSION`]).
    pub version: u8,
    /// Number of shards.
    pub shards: u32,
    /// Seed of the key → shard router.
    pub router_seed: u64,
    /// Base IBLT config; shard `i` uses `shard_iblt_config(base, i)`.
    pub base_config: IbltConfig,
    /// Ingest batch size (advisory; helps clients pick frame sizes).
    pub batch_size: u32,
    /// Replication epoch this node is fenced at (protocol v6). Encoded
    /// at the tail of the `Hello` payload so a v5 peer refuses a v6
    /// handshake (trailing bytes) and vice versa (truncation).
    pub epoch: u64,
}

/// A replica's mesh status — the answer to [`Request::ReplicaStatus`]
/// and the input to the deterministic failover election
/// ([`crate::follower::elect`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// This node's mesh id (election ties break to the lowest).
    pub node_id: u64,
    /// Replication epoch this node is fenced at.
    pub epoch: u64,
    /// True iff this node currently believes it is the primary.
    pub leading: bool,
    /// Highest replicated sequence number applied locally.
    pub last_applied: u64,
    /// True iff this replica's lag gauge reads zero (reads served here
    /// are as fresh as the stream has delivered).
    pub converged: bool,
    /// Shard count of the serving generation.
    pub shards: u32,
    /// Where this node believes the primary lives (empty when unknown,
    /// or when this node is the primary itself).
    pub primary: String,
}

/// Decoded symmetric difference for one shard, stamped with the epoch of
/// the snapshot it was computed from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardDiff {
    /// Which shard.
    pub shard: u32,
    /// Shard epoch (applied-batch count) at snapshot time.
    pub epoch: u64,
    /// True iff the difference decoded completely.
    pub complete: bool,
    /// Parallel subrounds the recovery took.
    pub subrounds: u32,
    /// Keys only in the server's shard (sorted).
    pub only_local: Vec<u64>,
    /// Keys only in the peer digest (sorted).
    pub only_remote: Vec<u64>,
    /// Highest replication sequence number the server had published
    /// when the snapshot was taken (protocol v6). A follower whose
    /// stream has applied at least this sequence knows the diff is an
    /// exact residual — nothing in it is still in flight on the stream —
    /// so repair can filter exactly instead of deferring heuristically.
    pub as_of_seq: u64,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Ask for the service parameters.
    Hello,
    /// Insert a batch of keys.
    Insert(Vec<u64>),
    /// Delete a batch of keys.
    Delete(Vec<u64>),
    /// Block until every previously submitted op is applied.
    Flush,
    /// Fetch a snapshot digest of one shard.
    Digest {
        /// Shard index.
        shard: u32,
    },
    /// Reconcile one shard against a peer digest: the server snapshots the
    /// shard, subtracts `digest`, runs parallel recovery, and returns the
    /// symmetric difference.
    Reconcile {
        /// Shard index.
        shard: u32,
        /// The peer's digest of its own keys for this shard (must use the
        /// shard's config from the `Hello` handshake).
        digest: Iblt,
    },
    /// Fetch service metrics.
    Stats,
    /// Ask the server process to shut down cleanly.
    Shutdown,
    /// Register this connection as a replication follower. The server
    /// answers `Ok` once, then streams [`Response::Replicate`] frames
    /// down the same connection; the follower answers each with
    /// [`Request::ReplicateAck`].
    Subscribe {
        /// Highest replicated sequence number the follower has already
        /// applied (0 for a fresh follower); batches at or below it are
        /// not re-streamed.
        last_seq: u64,
    },
    /// Follower → primary: a cumulative acknowledgment of the
    /// `Replicate` stream, carrying the highest sequence number applied
    /// so far (which is how the primary measures replication lag and
    /// retires its retransmit window — one ack can clear many unacked
    /// frames). The epoch fences in both directions: an ack carrying an
    /// epoch above the sender's tells a stale primary it has been
    /// deposed.
    ReplicateAck {
        /// Replication epoch the follower is fenced at (protocol v6).
        epoch: u64,
        /// Highest sequence number the follower has applied.
        seq: u64,
    },
    /// Begin a live reshard to `to_shards` shards (protocol v4). The
    /// server snapshots every serving shard under the apply gates, turns
    /// on dual-apply, and re-keys the recovered contents into the new
    /// generation before answering with a [`Response::Reshard`] status.
    /// Idempotent while a migration to the same target is in flight.
    ReshardBegin {
        /// Target shard count of the new generation (≥ 1).
        to_shards: u32,
    },
    /// Verify one new-generation shard (its contents must be
    /// cell-identical to the projection of the serving contents under
    /// the new routing) and return its digest, sparse-encoded
    /// ([`Response::DigestSparse`]). Only meaningful during a migration.
    ReshardDigest {
        /// New-generation shard index.
        shard: u32,
    },
    /// Cut over to the new generation: verify every still-unverified
    /// shard, then atomically swap the serving generation. Answers with
    /// the post-commit [`Response::Reshard`] status, or an `Error` if
    /// verification fails (the migration stays in flight for a retry or
    /// an abort).
    ReshardCommit,
    /// Drop the in-flight migration and keep serving the old generation
    /// (which dual-apply kept authoritative — no key is lost).
    ReshardAbort,
    /// Fetch every counter, gauge, and histogram rendered in the
    /// Prometheus text exposition format (protocol v5) — the same body
    /// the optional `--metrics-addr` HTTP listener serves.
    MetricsText,
    /// Dump the flight recorder: the last N structured tracing events
    /// the server recorded (protocol v5). Empty when no recorder is
    /// installed.
    DebugDump,
    /// Ask a replica for its mesh status — node id, epoch, role,
    /// applied sequence, convergence — the probe the failover election
    /// polls (protocol v6).
    ReplicaStatus,
    /// A convergence-gated digest read (protocol v6): serve the shard
    /// digest only if this replica's lag gauge is within `max_lag`
    /// sealed batches; otherwise answer [`Response::ReadStale`] with a
    /// redirect toward the primary.
    ReadDigest {
        /// Shard index.
        shard: u32,
        /// Largest acceptable replication lag, in sealed batches.
        max_lag: u64,
    },
}

impl Request {
    /// Short static name of the frame (span labels, debug output).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Hello => "hello",
            Request::Insert(_) => "insert",
            Request::Delete(_) => "delete",
            Request::Flush => "flush",
            Request::Digest { .. } => "digest",
            Request::Reconcile { .. } => "reconcile",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::Subscribe { .. } => "subscribe",
            Request::ReplicateAck { .. } => "replicate_ack",
            Request::ReshardBegin { .. } => "reshard_begin",
            Request::ReshardDigest { .. } => "reshard_digest",
            Request::ReshardCommit => "reshard_commit",
            Request::ReshardAbort => "reshard_abort",
            Request::MetricsText => "metrics_text",
            Request::DebugDump => "debug_dump",
            Request::ReplicaStatus => "replica_status",
            Request::ReadDigest { .. } => "read_digest",
        }
    }

    /// The shard a frame names, if any (span labelling).
    pub fn shard_hint(&self) -> Option<u32> {
        match self {
            Request::Digest { shard }
            | Request::Reconcile { shard, .. }
            | Request::ReshardDigest { shard }
            | Request::ReadDigest { shard, .. } => Some(*shard),
            _ => None,
        }
    }

    /// The request-latency histogram class this frame is recorded
    /// under (an index into [`REQUEST_CLASSES`]).
    pub fn class_index(&self) -> usize {
        match self {
            Request::Hello => 0,
            Request::Insert(_) | Request::Delete(_) => 1,
            Request::Flush => 2,
            Request::Digest { .. } | Request::ReadDigest { .. } => 3,
            Request::Reconcile { .. } => 4,
            Request::Stats | Request::MetricsText | Request::DebugDump | Request::ReplicaStatus => {
                5
            }
            Request::ReshardBegin { .. }
            | Request::ReshardDigest { .. }
            | Request::ReshardCommit
            | Request::ReshardAbort => 6,
            Request::Shutdown | Request::Subscribe { .. } | Request::ReplicateAck { .. } => 7,
        }
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Service parameters.
    Hello(HelloInfo),
    /// Generic acknowledgement; `accepted` counts the keys enqueued.
    Ok {
        /// Number of keys accepted (0 for ops without a count).
        accepted: u64,
    },
    /// A shard snapshot: epoch + serial IBLT.
    Digest {
        /// Shard epoch at snapshot time.
        epoch: u64,
        /// The snapshot.
        iblt: Iblt,
    },
    /// The decoded per-shard symmetric difference.
    Diff(ShardDiff),
    /// Service metrics.
    Stats(Box<MetricsSnapshot>),
    /// The request failed; human-readable reason.
    Error(String),
    /// Primary → follower: one sealed ingest batch, streamed on a
    /// subscribed connection. Sequence numbers start at 1 and increase
    /// by one per sealed batch; the follower uses them to drop
    /// duplicates and to resume after a reconnect. The epoch fences
    /// stale primaries: a follower at a higher epoch rejects the frame
    /// (and acks back its own epoch to depose the sender).
    Replicate {
        /// Replication epoch of the sending primary (protocol v6).
        epoch: u64,
        /// The batch's replication sequence number.
        seq: u64,
        /// The batch, in the ingest queue's shape.
        ops: Vec<Op>,
    },
    /// Reshard status (answer to the `Reshard*` control frames):
    /// generation number, migration phase, keys moved, shards verified.
    Reshard(ReshardStats),
    /// A shard digest in the sparse encoding (empty cells skipped) —
    /// the usual answer to `ReshardDigest`, where freshly populated
    /// shards are lightly loaded and the dense cell array would be
    /// mostly zeros. Servers answer with the dense [`Response::Digest`]
    /// instead when that form is smaller (see
    /// [`sparse_is_smaller`]), so clients accept either.
    DigestSparse {
        /// Shard epoch at snapshot time.
        epoch: u64,
        /// The snapshot.
        iblt: Iblt,
    },
    /// The metrics in Prometheus text exposition format (protocol v5).
    MetricsText(String),
    /// The flight-recorder dump, oldest record first (protocol v5).
    DebugDump(Vec<FlightRecord>),
    /// A replica's mesh status (answer to [`Request::ReplicaStatus`],
    /// protocol v6).
    ReplicaStatus(ReplicaStatus),
    /// This replica is too far behind to serve the requested read
    /// (protocol v6): its lag exceeded the `max_lag` bound of a
    /// [`Request::ReadDigest`]. `redirect` names a node believed to be
    /// fresher (usually the primary); empty when unknown.
    ReadStale {
        /// The replica's current lag, in sealed batches.
        lag: u64,
        /// Address of a fresher node to retry against (may be empty).
        redirect: String,
    },
    /// In-stream notice that the primary resharded (protocol v6):
    /// followers that see it adopt the new shard count immediately, so
    /// a whole follower chain cuts over together instead of each node
    /// discovering the change on its next anti-entropy round.
    GenerationChange {
        /// Replication epoch of the sending primary.
        epoch: u64,
        /// The new generation number.
        generation: u64,
        /// Shard count of the new generation.
        shards: u32,
    },
}

// --- Primitive cursor ------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        // Bounds-checked split instead of indexing: decode paths are a
        // panic-free zone (`cargo xtask lint` enforces it), and `get`
        // makes the no-panic property local instead of resting on the
        // `remaining()` guard above it.
        let rest = self.buf.get(self.pos..).ok_or(WireError::UnexpectedEof)?;
        let s = rest.get(..n).ok_or(WireError::UnexpectedEof)?;
        self.pos += n;
        Ok(s)
    }

    /// `take(N)` as a fixed-size array — total, so the integer readers
    /// below need no `try_into().unwrap()` bridge.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(u8::from_le_bytes(self.array()?))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    /// A `u32` element count, validated against the bytes actually left so
    /// a corrupt count cannot cause a huge up-front allocation.
    fn len(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(WireError::BadLength(n as u64));
        }
        Ok(n)
    }

    fn u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("invalid UTF-8 in string".into()))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64_vec(out: &mut Vec<u8>, v: &[u64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u64(out, x);
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// --- IBLT (de)serialization ------------------------------------------------

fn put_config(out: &mut Vec<u8>, cfg: &IbltConfig) {
    put_u32(out, cfg.hashes as u32);
    put_u64(out, cfg.cells_per_table as u64);
    put_u64(out, cfg.seed);
}

fn read_config(r: &mut Reader) -> Result<IbltConfig, WireError> {
    let hashes = r.u32()? as usize;
    let cells_per_table = r.u64()? as usize;
    let seed = r.u64()?;
    // `IbltConfig::new` asserts these; validate so hostile input errors
    // instead of panicking.
    if hashes < 2 {
        return Err(WireError::Malformed(format!(
            "IBLT config needs ≥ 2 hash functions, got {hashes}"
        )));
    }
    if cells_per_table == 0 {
        return Err(WireError::Malformed("IBLT config with 0 cells".into()));
    }
    // 24 wire bytes per cell must fit in a frame.
    let total = hashes.saturating_mul(cells_per_table);
    if total.saturating_mul(24) > MAX_FRAME {
        return Err(WireError::Malformed(format!(
            "IBLT of {total} cells exceeds the frame cap"
        )));
    }
    Ok(IbltConfig::new(hashes, cells_per_table, seed))
}

/// Serialize a serial IBLT (config + raw cells).
fn encode_iblt(out: &mut Vec<u8>, t: &Iblt) {
    put_config(out, t.config());
    for c in t.cells() {
        put_i64(out, c.count);
        put_u64(out, c.key_sum);
        put_u64(out, c.check_sum);
    }
}

/// Decode a serial IBLT. The cell count is implied by the config; the
/// payload must contain exactly that many cells.
fn decode_iblt(r: &mut Reader) -> Result<Iblt, WireError> {
    let cfg = read_config(r)?;
    let total = cfg.total_cells();
    if r.remaining() < total * 24 {
        return Err(WireError::UnexpectedEof);
    }
    let mut cells = Vec::with_capacity(total);
    for _ in 0..total {
        cells.push(Cell {
            count: r.i64()?,
            key_sum: r.u64()?,
            check_sum: r.u64()?,
        });
    }
    let mut t = Iblt::new(cfg);
    t.overwrite_cells(cells);
    Ok(t)
}

/// Serialize an IBLT sparsely: config, then only the non-empty cells as
/// `(u32 index, cell)` pairs in ascending index order. On lightly loaded
/// tables (a freshly split shard, an anti-entropy digest after
/// convergence) this is a fraction of the dense form's
/// 24-bytes-per-cell; on full tables it costs 4 extra bytes per cell,
/// which is why the dense form remains the default for `Digest`.
fn encode_iblt_sparse(out: &mut Vec<u8>, t: &Iblt) {
    put_config(out, t.config());
    let cells = t.cells();
    let nonzero = cells.iter().filter(|c| !cell_is_empty(c)).count();
    put_u32(out, nonzero as u32);
    for (i, c) in cells.iter().enumerate() {
        if cell_is_empty(c) {
            continue;
        }
        put_u32(out, i as u32);
        put_i64(out, c.count);
        put_u64(out, c.key_sum);
        put_u64(out, c.check_sum);
    }
}

fn cell_is_empty(c: &Cell) -> bool {
    c.count == 0 && c.key_sum == 0 && c.check_sum == 0
}

/// True iff the sparse encoding of `t` beats the dense one (28 bytes
/// per non-empty cell + a count, vs a flat 24 per cell). Servers use
/// this to pick the digest encoding: past ~6/7 occupancy sparse *loses*
/// — and could even exceed [`MAX_FRAME`] on tables the service's
/// start-time cap assert (which covers the dense form only) accepted —
/// so the dense form, guaranteed to fit, is the fallback.
pub fn sparse_is_smaller(t: &Iblt) -> bool {
    let nonzero = t.cells().iter().filter(|c| !cell_is_empty(c)).count();
    4 + nonzero * 28 < t.cells().len() * 24
}

/// Decode a sparsely encoded IBLT. Total: indexes must be in-range and
/// strictly increasing (so hostile input can neither write one cell
/// twice nor smuggle an unsorted permutation past an equality check),
/// and the pair count is validated against the bytes present.
fn decode_iblt_sparse(r: &mut Reader) -> Result<Iblt, WireError> {
    let cfg = read_config(r)?;
    let total = cfg.total_cells();
    // 28 wire bytes per (index, cell) pair.
    let n = r.len(28)?;
    if n > total {
        return Err(WireError::BadLength(n as u64));
    }
    let mut cells = vec![Cell::default(); total];
    let mut prev: Option<usize> = None;
    for _ in 0..n {
        let idx = r.u32()? as usize;
        if prev.is_some_and(|p| idx <= p) {
            return Err(WireError::Malformed(format!(
                "sparse cell index {idx} out of order or out of range"
            )));
        }
        prev = Some(idx);
        let slot = cells.get_mut(idx).ok_or_else(|| {
            WireError::Malformed(format!(
                "sparse cell index {idx} out of order or out of range"
            ))
        })?;
        *slot = Cell {
            count: r.i64()?,
            key_sum: r.u64()?,
            check_sum: r.u64()?,
        };
    }
    let mut t = Iblt::new(cfg);
    t.overwrite_cells(cells);
    Ok(t)
}

// --- Messages ---------------------------------------------------------------

const REQ_HELLO: u8 = 0x01;
const REQ_INSERT: u8 = 0x02;
const REQ_DELETE: u8 = 0x03;
const REQ_FLUSH: u8 = 0x04;
const REQ_DIGEST: u8 = 0x05;
const REQ_RECONCILE: u8 = 0x06;
const REQ_STATS: u8 = 0x07;
const REQ_SHUTDOWN: u8 = 0x08;
const REQ_SUBSCRIBE: u8 = 0x09;
const REQ_REPLICATE_ACK: u8 = 0x0a;
const REQ_RESHARD_BEGIN: u8 = 0x0b;
const REQ_RESHARD_DIGEST: u8 = 0x0c;
const REQ_RESHARD_COMMIT: u8 = 0x0d;
const REQ_RESHARD_ABORT: u8 = 0x0e;
const REQ_METRICS_TEXT: u8 = 0x0f;
const REQ_DEBUG_DUMP: u8 = 0x10;
const REQ_REPLICA_STATUS: u8 = 0x11;
const REQ_READ_DIGEST: u8 = 0x12;

const RESP_HELLO: u8 = 0x81;
const RESP_OK: u8 = 0x82;
const RESP_DIGEST: u8 = 0x83;
const RESP_DIFF: u8 = 0x84;
const RESP_STATS: u8 = 0x85;
const RESP_ERROR: u8 = 0x86;
const RESP_REPLICATE: u8 = 0x87;
const RESP_RESHARD: u8 = 0x88;
const RESP_DIGEST_SPARSE: u8 = 0x89;
const RESP_METRICS_TEXT: u8 = 0x8a;
const RESP_DEBUG_DUMP: u8 = 0x8b;
const RESP_REPLICA_STATUS: u8 = 0x8c;
const RESP_READ_STALE: u8 = 0x8d;
const RESP_GENERATION_CHANGE: u8 = 0x8e;

// Wire encoding of one ingest op: 8-byte key + 1-byte direction.
const OP_BYTES: usize = 9;
const OP_DELETE: u8 = 0;
const OP_INSERT: u8 = 1;

fn put_ops(out: &mut Vec<u8>, ops: &[Op]) {
    put_u32(out, ops.len() as u32);
    for op in ops {
        put_u64(out, op.key);
        out.push(if op.dir > 0 { OP_INSERT } else { OP_DELETE });
    }
}

fn read_ops(r: &mut Reader) -> Result<Vec<Op>, WireError> {
    let n = r.len(OP_BYTES)?;
    (0..n)
        .map(|_| {
            let key = r.u64()?;
            let dir = match r.u8()? {
                OP_INSERT => 1,
                OP_DELETE => -1,
                t => return Err(WireError::BadTag(t)),
            };
            Ok(Op { key, dir })
        })
        .collect()
}

/// Encode a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Hello => out.push(REQ_HELLO),
        Request::Insert(keys) => {
            out.push(REQ_INSERT);
            put_u64_vec(&mut out, keys);
        }
        Request::Delete(keys) => {
            out.push(REQ_DELETE);
            put_u64_vec(&mut out, keys);
        }
        Request::Flush => out.push(REQ_FLUSH),
        Request::Digest { shard } => {
            out.push(REQ_DIGEST);
            put_u32(&mut out, *shard);
        }
        Request::Reconcile { shard, digest } => {
            out.push(REQ_RECONCILE);
            put_u32(&mut out, *shard);
            encode_iblt(&mut out, digest);
        }
        Request::Stats => out.push(REQ_STATS),
        Request::Shutdown => out.push(REQ_SHUTDOWN),
        Request::Subscribe { last_seq } => {
            out.push(REQ_SUBSCRIBE);
            put_u64(&mut out, *last_seq);
        }
        Request::ReplicateAck { epoch, seq } => {
            out.push(REQ_REPLICATE_ACK);
            put_u64(&mut out, *epoch);
            put_u64(&mut out, *seq);
        }
        Request::ReshardBegin { to_shards } => {
            out.push(REQ_RESHARD_BEGIN);
            put_u32(&mut out, *to_shards);
        }
        Request::ReshardDigest { shard } => {
            out.push(REQ_RESHARD_DIGEST);
            put_u32(&mut out, *shard);
        }
        Request::ReshardCommit => out.push(REQ_RESHARD_COMMIT),
        Request::ReshardAbort => out.push(REQ_RESHARD_ABORT),
        Request::MetricsText => out.push(REQ_METRICS_TEXT),
        Request::DebugDump => out.push(REQ_DEBUG_DUMP),
        Request::ReplicaStatus => out.push(REQ_REPLICA_STATUS),
        Request::ReadDigest { shard, max_lag } => {
            out.push(REQ_READ_DIGEST);
            put_u32(&mut out, *shard);
            put_u64(&mut out, *max_lag);
        }
    }
    out
}

/// Decode a request frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let req = match r.u8()? {
        REQ_HELLO => Request::Hello,
        REQ_INSERT => Request::Insert(r.u64_vec()?),
        REQ_DELETE => Request::Delete(r.u64_vec()?),
        REQ_FLUSH => Request::Flush,
        REQ_DIGEST => Request::Digest { shard: r.u32()? },
        REQ_RECONCILE => Request::Reconcile {
            shard: r.u32()?,
            digest: decode_iblt(&mut r)?,
        },
        REQ_STATS => Request::Stats,
        REQ_SHUTDOWN => Request::Shutdown,
        REQ_SUBSCRIBE => Request::Subscribe { last_seq: r.u64()? },
        REQ_REPLICATE_ACK => Request::ReplicateAck {
            epoch: r.u64()?,
            seq: r.u64()?,
        },
        REQ_RESHARD_BEGIN => Request::ReshardBegin {
            to_shards: r.u32()?,
        },
        REQ_RESHARD_DIGEST => Request::ReshardDigest { shard: r.u32()? },
        REQ_RESHARD_COMMIT => Request::ReshardCommit,
        REQ_RESHARD_ABORT => Request::ReshardAbort,
        REQ_METRICS_TEXT => Request::MetricsText,
        REQ_DEBUG_DUMP => Request::DebugDump,
        REQ_REPLICA_STATUS => Request::ReplicaStatus,
        REQ_READ_DIGEST => Request::ReadDigest {
            shard: r.u32()?,
            max_lag: r.u64()?,
        },
        t => return Err(WireError::BadTag(t)),
    };
    r.finish()?;
    Ok(req)
}

fn put_shard_diff(out: &mut Vec<u8>, d: &ShardDiff) {
    put_u32(out, d.shard);
    put_u64(out, d.epoch);
    out.push(d.complete as u8);
    put_u32(out, d.subrounds);
    put_u64_vec(out, &d.only_local);
    put_u64_vec(out, &d.only_remote);
    // Protocol v6 tail: the replication sequence stamp.
    put_u64(out, d.as_of_seq);
}

fn read_shard_diff(r: &mut Reader) -> Result<ShardDiff, WireError> {
    Ok(ShardDiff {
        shard: r.u32()?,
        epoch: r.u64()?,
        complete: r.bool()?,
        subrounds: r.u32()?,
        only_local: r.u64_vec()?,
        only_remote: r.u64_vec()?,
        as_of_seq: r.u64()?,
    })
}

fn put_reshard_stats(out: &mut Vec<u8>, s: &ReshardStats) {
    put_u64(out, s.generation);
    out.push(s.resharding as u8);
    put_u32(out, s.serving_shards);
    put_u32(out, s.to_shards);
    put_u64(out, s.keys_moved);
    put_u32(out, s.shards_verified);
    put_u64(out, s.completed);
    put_u64(out, s.aborted);
}

fn read_reshard_stats(r: &mut Reader) -> Result<ReshardStats, WireError> {
    Ok(ReshardStats {
        generation: r.u64()?,
        resharding: r.bool()?,
        serving_shards: r.u32()?,
        to_shards: r.u32()?,
        keys_moved: r.u64()?,
        shards_verified: r.u32()?,
        completed: r.u64()?,
        aborted: r.u64()?,
    })
}

/// Histogram wire form: count, sum, then the sparse non-empty
/// `(u32 bucket, u64 count)` pairs — a loaded histogram is a few dozen
/// pairs, never the full 128 buckets.
fn put_histogram(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    put_u64(out, h.count);
    put_u64(out, h.sum);
    put_u32(out, h.buckets.len() as u32);
    for &(i, c) in &h.buckets {
        put_u32(out, i);
        put_u64(out, c);
    }
}

/// Decode a histogram. Total: the pair count is validated against the
/// bytes present, and bucket indexes must be strictly increasing and
/// in range, so quantile readout on the result is well-defined.
fn read_histogram(r: &mut Reader) -> Result<HistogramSnapshot, WireError> {
    let count = r.u64()?;
    let sum = r.u64()?;
    // 12 wire bytes per (bucket, count) pair.
    let n = r.len(12)?;
    if n > HISTOGRAM_BUCKETS {
        return Err(WireError::BadLength(n as u64));
    }
    let mut buckets = Vec::with_capacity(n);
    let mut prev: Option<u32> = None;
    for _ in 0..n {
        let i = r.u32()?;
        if i as usize >= HISTOGRAM_BUCKETS || prev.is_some_and(|p| i <= p) {
            return Err(WireError::Malformed(format!(
                "histogram bucket {i} out of order or out of range"
            )));
        }
        prev = Some(i);
        buckets.push((i, r.u64()?));
    }
    Ok(HistogramSnapshot {
        count,
        sum,
        buckets,
    })
}

fn put_follower_rows(out: &mut Vec<u8>, rows: &[FollowerStats]) {
    put_u32(out, rows.len() as u32);
    for f in rows {
        put_u64(out, f.id);
        put_u64(out, f.published);
        put_u64(out, f.acked);
        put_u64(out, f.lag);
        out.push(f.alive as u8);
    }
}

fn read_follower_rows(r: &mut Reader) -> Result<Vec<FollowerStats>, WireError> {
    // 33 wire bytes per row (the alive byte is new in v6; Hello
    // negotiation refuses cross-version peers, so no v5 compat shim).
    let n = r.len(33)?;
    (0..n)
        .map(|_| {
            Ok(FollowerStats {
                id: r.u64()?,
                published: r.u64()?,
                acked: r.u64()?,
                lag: r.u64()?,
                alive: r.bool()?,
            })
        })
        .collect()
}

fn put_stats(out: &mut Vec<u8>, s: &MetricsSnapshot) {
    put_u64(out, s.batches_applied);
    put_u64(out, s.ops_applied);
    put_u64(out, s.queue_stalls);
    put_u64(out, s.recoveries);
    put_u64(out, s.recoveries_incomplete);
    put_u64(out, s.recovery_subrounds);
    put_u64(out, s.recovery_ns);
    put_u64_vec(out, &s.last_recovery_trace);
    put_u64_vec(out, &s.last_recovery_trace_ns);
    put_u32(out, s.shards.len() as u32);
    for sh in &s.shards {
        put_u64(out, sh.epoch);
        put_u64(out, sh.inserts);
        put_u64(out, sh.deletes);
    }
    let r = &s.replication;
    for v in [
        r.followers,
        r.published_seq,
        r.acked_min,
        r.max_lag,
        r.batches_streamed,
        r.batches_dropped,
        r.batches_applied,
        r.batches_skipped,
        r.decode_errors,
        r.anti_entropy_rounds,
        r.anti_entropy_keys,
    ] {
        put_u64(out, v);
    }
    put_reshard_stats(out, &s.reshard);
    // Protocol v5 block: per-follower rows, the replication-lag
    // distribution, and the latency histograms — appended after the v4
    // layout so the frame grows strictly at the tail.
    put_follower_rows(out, &r.per_follower);
    put_histogram(out, &r.lag);
    put_u32(out, s.request_latency.len() as u32);
    for h in &s.request_latency {
        put_histogram(out, h);
    }
    put_histogram(out, &s.queue_wait);
    put_histogram(out, &s.batch_apply);
    put_histogram(out, &s.recovery_latency);
    // Protocol v6 tail: the replica-mesh block.
    put_u64(out, r.epoch);
    put_u64(out, r.fenced);
    out.push(r.leading as u8);
    put_u64(out, r.read_lag);
    // Protocol v7 tail: the connection block.
    let c = &s.connections;
    for v in [
        c.live,
        c.accepted,
        c.refused,
        c.idle_reaped,
        c.accept_errors,
    ] {
        put_u64(out, v);
    }
}

fn read_stats(r: &mut Reader) -> Result<MetricsSnapshot, WireError> {
    let batches_applied = r.u64()?;
    let ops_applied = r.u64()?;
    let queue_stalls = r.u64()?;
    let recoveries = r.u64()?;
    let recoveries_incomplete = r.u64()?;
    let recovery_subrounds = r.u64()?;
    let recovery_ns = r.u64()?;
    let last_recovery_trace = r.u64_vec()?;
    let last_recovery_trace_ns = r.u64_vec()?;
    let n = r.len(24)?;
    let shards = (0..n)
        .map(|_| {
            Ok(ShardStats {
                epoch: r.u64()?,
                inserts: r.u64()?,
                deletes: r.u64()?,
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let mut replication = ReplicationStats {
        followers: r.u64()?,
        published_seq: r.u64()?,
        acked_min: r.u64()?,
        max_lag: r.u64()?,
        batches_streamed: r.u64()?,
        batches_dropped: r.u64()?,
        batches_applied: r.u64()?,
        batches_skipped: r.u64()?,
        decode_errors: r.u64()?,
        anti_entropy_rounds: r.u64()?,
        anti_entropy_keys: r.u64()?,
        per_follower: Vec::new(),
        lag: HistogramSnapshot::default(),
        epoch: 0,
        fenced: 0,
        leading: false,
        read_lag: 0,
    };
    let reshard = read_reshard_stats(r)?;
    // Protocol v5 tail (see `put_stats`).
    replication.per_follower = read_follower_rows(r)?;
    replication.lag = read_histogram(r)?;
    let n_classes = r.len(20)?;
    if n_classes > REQUEST_CLASSES.len() {
        return Err(WireError::BadLength(n_classes as u64));
    }
    let request_latency = (0..n_classes)
        .map(|_| read_histogram(r))
        .collect::<Result<Vec<_>, WireError>>()?;
    let queue_wait = read_histogram(r)?;
    let batch_apply = read_histogram(r)?;
    let recovery_latency = read_histogram(r)?;
    // Protocol v6 tail (see `put_stats`).
    replication.epoch = r.u64()?;
    replication.fenced = r.u64()?;
    replication.leading = r.bool()?;
    replication.read_lag = r.u64()?;
    // Protocol v7 tail (see `put_stats`).
    let connections = ConnectionStats {
        live: r.u64()?,
        accepted: r.u64()?,
        refused: r.u64()?,
        idle_reaped: r.u64()?,
        accept_errors: r.u64()?,
    };
    Ok(MetricsSnapshot {
        batches_applied,
        ops_applied,
        queue_stalls,
        recoveries,
        recoveries_incomplete,
        recovery_subrounds,
        recovery_ns,
        last_recovery_trace,
        last_recovery_trace_ns,
        shards,
        replication,
        reshard,
        request_latency,
        queue_wait,
        batch_apply,
        recovery_latency,
        connections,
    })
}

fn put_flight_record(out: &mut Vec<u8>, rec: &FlightRecord) {
    put_u64(out, rec.seq);
    put_u64(out, rec.at_us);
    out.push(rec.kind);
    put_u64(out, rec.span);
    put_u64(out, rec.parent);
    put_string(out, &rec.name);
    put_string(out, &rec.fields);
}

fn read_flight_record(r: &mut Reader) -> Result<FlightRecord, WireError> {
    Ok(FlightRecord {
        seq: r.u64()?,
        at_us: r.u64()?,
        kind: r.u8()?,
        span: r.u64()?,
        parent: r.u64()?,
        name: r.string()?,
        fields: r.string()?,
    })
}

fn read_flight_records(r: &mut Reader) -> Result<Vec<FlightRecord>, WireError> {
    // 41 fixed wire bytes per record (strings add more).
    let n = r.len(41)?;
    (0..n).map(|_| read_flight_record(r)).collect()
}

/// Encode a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Hello(h) => {
            out.push(RESP_HELLO);
            out.push(h.version);
            put_u32(&mut out, h.shards);
            put_u64(&mut out, h.router_seed);
            put_config(&mut out, &h.base_config);
            put_u32(&mut out, h.batch_size);
            // Protocol v6 tail: the replication epoch.
            put_u64(&mut out, h.epoch);
        }
        Response::Ok { accepted } => {
            out.push(RESP_OK);
            put_u64(&mut out, *accepted);
        }
        Response::Digest { epoch, iblt } => {
            out.push(RESP_DIGEST);
            put_u64(&mut out, *epoch);
            encode_iblt(&mut out, iblt);
        }
        Response::Diff(d) => {
            out.push(RESP_DIFF);
            put_shard_diff(&mut out, d);
        }
        Response::Stats(s) => {
            out.push(RESP_STATS);
            put_stats(&mut out, s);
        }
        Response::Error(msg) => {
            out.push(RESP_ERROR);
            put_string(&mut out, msg);
        }
        Response::Replicate { epoch, seq, ops } => return encode_replicate(*epoch, *seq, ops),
        Response::Reshard(s) => {
            out.push(RESP_RESHARD);
            put_reshard_stats(&mut out, s);
        }
        Response::DigestSparse { epoch, iblt } => {
            out.push(RESP_DIGEST_SPARSE);
            put_u64(&mut out, *epoch);
            encode_iblt_sparse(&mut out, iblt);
        }
        Response::MetricsText(body) => {
            out.push(RESP_METRICS_TEXT);
            put_string(&mut out, body);
        }
        Response::DebugDump(records) => {
            out.push(RESP_DEBUG_DUMP);
            put_u32(&mut out, records.len() as u32);
            for rec in records {
                put_flight_record(&mut out, rec);
            }
        }
        Response::ReplicaStatus(s) => {
            out.push(RESP_REPLICA_STATUS);
            put_u64(&mut out, s.node_id);
            put_u64(&mut out, s.epoch);
            out.push(s.leading as u8);
            put_u64(&mut out, s.last_applied);
            out.push(s.converged as u8);
            put_u32(&mut out, s.shards);
            put_string(&mut out, &s.primary);
        }
        Response::ReadStale { lag, redirect } => {
            out.push(RESP_READ_STALE);
            put_u64(&mut out, *lag);
            put_string(&mut out, redirect);
        }
        Response::GenerationChange {
            epoch,
            generation,
            shards,
        } => {
            out.push(RESP_GENERATION_CHANGE);
            put_u64(&mut out, *epoch);
            put_u64(&mut out, *generation);
            put_u32(&mut out, *shards);
        }
    }
    out
}

/// Encode a `Replicate` frame directly from a borrowed batch — the
/// streaming hot path, which avoids cloning the ops into a [`Response`]
/// just to serialize them. Byte-identical to encoding
/// [`Response::Replicate`].
pub fn encode_replicate(epoch: u64, seq: u64, ops: &[Op]) -> Vec<u8> {
    let mut out = vec![RESP_REPLICATE];
    put_u64(&mut out, epoch);
    put_u64(&mut out, seq);
    put_ops(&mut out, ops);
    out
}

/// Decode a response frame payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let resp = match r.u8()? {
        RESP_HELLO => Response::Hello(HelloInfo {
            version: r.u8()?,
            shards: r.u32()?,
            router_seed: r.u64()?,
            base_config: read_config(&mut r)?,
            batch_size: r.u32()?,
            epoch: r.u64()?,
        }),
        RESP_OK => Response::Ok { accepted: r.u64()? },
        RESP_DIGEST => Response::Digest {
            epoch: r.u64()?,
            iblt: decode_iblt(&mut r)?,
        },
        RESP_DIFF => Response::Diff(read_shard_diff(&mut r)?),
        RESP_STATS => Response::Stats(Box::new(read_stats(&mut r)?)),
        RESP_ERROR => Response::Error(r.string()?),
        RESP_REPLICATE => Response::Replicate {
            epoch: r.u64()?,
            seq: r.u64()?,
            ops: read_ops(&mut r)?,
        },
        RESP_RESHARD => Response::Reshard(read_reshard_stats(&mut r)?),
        RESP_DIGEST_SPARSE => Response::DigestSparse {
            epoch: r.u64()?,
            iblt: decode_iblt_sparse(&mut r)?,
        },
        RESP_METRICS_TEXT => Response::MetricsText(r.string()?),
        RESP_DEBUG_DUMP => Response::DebugDump(read_flight_records(&mut r)?),
        RESP_REPLICA_STATUS => Response::ReplicaStatus(ReplicaStatus {
            node_id: r.u64()?,
            epoch: r.u64()?,
            leading: r.bool()?,
            last_applied: r.u64()?,
            converged: r.bool()?,
            shards: r.u32()?,
            primary: r.string()?,
        }),
        RESP_READ_STALE => Response::ReadStale {
            lag: r.u64()?,
            redirect: r.string()?,
        },
        RESP_GENERATION_CHANGE => Response::GenerationChange {
            epoch: r.u64()?,
            generation: r.u64()?,
            shards: r.u32()?,
        },
        t => return Err(WireError::BadTag(t)),
    };
    r.finish()?;
    Ok(resp)
}

// --- Frame transport --------------------------------------------------------

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::FrameTooLarge(payload.len() as u64));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload. Returns `Ok(None)` on a clean EOF *before*
/// the length prefix (peer closed between messages); a mid-frame EOF is a
/// [`WireError::UnexpectedEof`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    // Distinguish "closed before a frame" from "closed mid-frame".
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(WireError::UnexpectedEof);
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len as u64));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental, push-based counterpart of [`read_frame`] for nonblocking
/// sockets: bytes arrive in whatever chunks the kernel delivers
/// ([`FrameDecoder::push`]), complete frames come out
/// ([`FrameDecoder::next_frame`]) — including several per push when the
/// peer pipelines requests. Splitting the same byte stream at different
/// boundaries never changes the decoded frames (enforced by the
/// boundary-sweep property tests in `tests/proptest_wire.rs`), and like
/// the rest of this module the decoder is total: corrupt input returns a
/// [`WireError`], never panics.
///
/// A frame announcing more than [`MAX_FRAME`] bytes poisons the stream —
/// the length prefix cannot be resynchronized — so the connection must be
/// dropped after [`WireError::FrameTooLarge`].
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; reclaimed lazily so popping a frame is
    /// amortized O(frame) rather than O(buffered).
    start: usize,
}

/// Reclaim the consumed prefix once it reaches this size (or swallows the
/// whole buffer).
const DECODER_COMPACT_AT: usize = 64 * 1024;

impl FrameDecoder {
    /// Empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes received from the peer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames (partial frame tail
    /// plus any pipelined frames not yet popped).
    pub fn buffered(&self) -> usize {
        self.buf.len().saturating_sub(self.start)
    }

    /// True when no partial or pending frame is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffered() == 0
    }

    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        if self.start >= self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= DECODER_COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Pop the next complete frame's payload; `Ok(None)` means more bytes
    /// are needed. Call in a loop after each [`FrameDecoder::push`] — a
    /// single push can complete several pipelined frames.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let Some(header) = self.buf.get(self.start..self.start.saturating_add(4)) else {
            return Ok(None);
        };
        let Ok(len_bytes) = <[u8; 4]>::try_from(header) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME {
            return Err(WireError::FrameTooLarge(len as u64));
        }
        let body_start = self.start.saturating_add(4);
        let Some(payload) = self.buf.get(body_start..body_start.saturating_add(len)) else {
            return Ok(None);
        };
        let payload = payload.to_vec();
        self.start = body_start.saturating_add(len);
        self.compact();
        Ok(Some(payload))
    }
}

/// Decode an IBLT from a standalone byte slice (helper for tests and
/// tooling; message decoding uses the cursor internally).
pub fn iblt_from_bytes(bytes: &[u8]) -> Result<Iblt, WireError> {
    let mut r = Reader::new(bytes);
    let t = decode_iblt(&mut r)?;
    r.finish()?;
    Ok(t)
}

/// Encode an IBLT to a standalone byte vector.
pub fn iblt_to_bytes(t: &Iblt) -> Vec<u8> {
    let mut out = Vec::new();
    encode_iblt(&mut out, t);
    out
}

/// Encode an IBLT sparsely (empty cells skipped) to a standalone byte
/// vector — the encoding `DigestSparse` responses use.
pub fn iblt_to_sparse_bytes(t: &Iblt) -> Vec<u8> {
    let mut out = Vec::new();
    encode_iblt_sparse(&mut out, t);
    out
}

/// Decode a sparsely encoded IBLT from a standalone byte slice.
pub fn iblt_from_sparse_bytes(bytes: &[u8]) -> Result<Iblt, WireError> {
    let mut r = Reader::new(bytes);
    let t = decode_iblt_sparse(&mut r)?;
    r.finish()?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn mid_frame_eof_is_an_error_not_a_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        buf.truncate(7); // length prefix + 3 payload bytes
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::UnexpectedEof)
        ));
    }

    #[test]
    fn iblt_roundtrip_preserves_cells_and_items() {
        let mut t = Iblt::new(IbltConfig::new(3, 50, 9));
        for k in 0..40u64 {
            t.insert(k * 3);
        }
        t.delete(999);
        let bytes = iblt_to_bytes(&t);
        let back = iblt_from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.items(), t.items());
    }

    #[test]
    fn hostile_config_errors_instead_of_panicking() {
        // hashes = 1 violates the IbltConfig invariant.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 1);
        put_u64(&mut bytes, 10);
        put_u64(&mut bytes, 0);
        assert!(matches!(
            iblt_from_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
        // A cell count that would blow past the frame cap.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 4);
        put_u64(&mut bytes, u64::MAX / 8);
        put_u64(&mut bytes, 0);
        assert!(matches!(
            iblt_from_bytes(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn sparse_is_smaller_tracks_occupancy() {
        // Empty and lightly loaded: sparse wins.
        let mut t = Iblt::new(IbltConfig::new(4, 64, 3));
        assert!(sparse_is_smaller(&t));
        t.insert(7);
        assert!(sparse_is_smaller(&t));
        // Saturate the table: nearly every cell non-empty, sparse loses
        // (and the helper's verdict matches the actual encoded sizes).
        for k in 0..2_000u64 {
            t.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        assert!(!sparse_is_smaller(&t));
        assert!(iblt_to_sparse_bytes(&t).len() >= iblt_to_bytes(&t).len());
    }

    #[test]
    fn insert_count_mismatch_is_bad_length() {
        // Announce 1000 keys but supply 1.
        let mut payload = vec![REQ_INSERT];
        put_u32(&mut payload, 1000);
        put_u64(&mut payload, 7);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::BadLength(1000))
        ));
    }

    #[test]
    fn replication_frames_roundtrip() {
        let req = Request::Subscribe { last_seq: 42 };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let req = Request::ReplicateAck {
            epoch: 3,
            seq: u64::MAX,
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let resp = Response::Replicate {
            epoch: 2,
            seq: 7,
            ops: vec![Op { key: 11, dir: 1 }, Op { key: 12, dir: -1 }],
        };
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        // The borrowed-batch fast path produces identical bytes.
        if let Response::Replicate { epoch, seq, ops } = &resp {
            assert_eq!(encode_replicate(*epoch, *seq, ops), encode_response(&resp));
        }
    }

    #[test]
    fn replicate_with_bad_direction_byte_errors() {
        let mut payload = vec![RESP_REPLICATE];
        put_u64(&mut payload, 1); // epoch
        put_u64(&mut payload, 1); // seq
        put_u32(&mut payload, 1); // one op
        put_u64(&mut payload, 99); // key
        payload.push(7); // neither OP_INSERT nor OP_DELETE
        assert!(matches!(
            decode_response(&payload),
            Err(WireError::BadTag(7))
        ));
    }

    #[test]
    fn mesh_frames_roundtrip() {
        let req = Request::ReplicaStatus;
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let req = Request::ReadDigest {
            shard: 3,
            max_lag: 10,
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let resp = Response::ReplicaStatus(ReplicaStatus {
            node_id: 2,
            epoch: 5,
            leading: false,
            last_applied: 99,
            converged: true,
            shards: 4,
            primary: "10.0.0.1:7000".into(),
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        let resp = Response::ReadStale {
            lag: 17,
            redirect: "10.0.0.1:7000".into(),
        };
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        let resp = Response::GenerationChange {
            epoch: 5,
            generation: 2,
            shards: 8,
        };
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    /// v5 ↔ v6 `Hello` payloads refuse each other cleanly: the epoch
    /// sits at the tail, so the shorter (v5-shaped) payload truncates
    /// under a v6 decoder and the longer one leaves trailing bytes
    /// under a v5-shaped expectation.
    #[test]
    fn hello_version_mismatch_refuses_cleanly() {
        let hello = Response::Hello(HelloInfo {
            version: PROTOCOL_VERSION,
            shards: 4,
            router_seed: 9,
            base_config: IbltConfig::new(3, 64, 1),
            batch_size: 256,
            epoch: 7,
        });
        let v6_bytes = encode_response(&hello);
        // A v5 peer's Hello is the same layout minus the 8-byte epoch
        // tail; a v6 decoder must refuse it as truncated, not invent an
        // epoch.
        let v5_bytes = &v6_bytes[..v6_bytes.len() - 8];
        assert!(matches!(
            decode_response(v5_bytes),
            Err(WireError::UnexpectedEof)
        ));
        // And a decoder expecting the v5 shape sees exactly 8 trailing
        // bytes in the v6 payload (simulated by appending 8 more: any
        // over-long Hello is refused, never silently accepted).
        let mut v7ish = v6_bytes.clone();
        v7ish.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            decode_response(&v7ish),
            Err(WireError::TrailingBytes(8))
        ));
    }

    #[test]
    fn reshard_frames_roundtrip() {
        for req in [
            Request::ReshardBegin { to_shards: 4 },
            Request::ReshardDigest { shard: 3 },
            Request::ReshardCommit,
            Request::ReshardAbort,
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
        let resp = Response::Reshard(ReshardStats {
            generation: 2,
            resharding: true,
            serving_shards: 1,
            to_shards: 4,
            keys_moved: 12_345,
            shards_verified: 3,
            completed: 1,
            aborted: 0,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    /// Sparse and dense encodings decode to the same table, and on a
    /// lightly loaded shard the sparse form is genuinely smaller — the
    /// ROADMAP "snapshot compaction" fix.
    #[test]
    fn sparse_encoding_is_equivalent_and_compact_when_light() {
        // 4×200 = 800 cells, ~30 of them touched.
        let mut t = Iblt::new(IbltConfig::new(4, 200, 77));
        for k in 0..8u64 {
            t.insert(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        t.delete(42);
        let dense = iblt_to_bytes(&t);
        let sparse = iblt_to_sparse_bytes(&t);
        assert_eq!(iblt_from_sparse_bytes(&sparse).unwrap(), t);
        assert_eq!(iblt_from_bytes(&dense).unwrap(), t);
        assert!(
            sparse.len() * 4 < dense.len(),
            "sparse {} bytes vs dense {} bytes",
            sparse.len(),
            dense.len()
        );
        // An empty table is just the config + a zero count.
        let empty = Iblt::new(IbltConfig::new(4, 200, 77));
        assert_eq!(iblt_to_sparse_bytes(&empty).len(), 20 + 4);
        // Full response framing round-trips too.
        let resp = Response::DigestSparse { epoch: 9, iblt: t };
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn sparse_decoding_rejects_hostile_indexes() {
        let mut t = Iblt::new(IbltConfig::new(2, 4, 1));
        t.insert(7);
        t.insert(9);
        let good = iblt_to_sparse_bytes(&t);
        // Config is 20 bytes, pair count 4 bytes; the first pair's index
        // starts at offset 24. Duplicate (≤ previous) and out-of-range
        // indexes must both error.
        let mut dup = good.clone();
        // Overwrite the second pair's index with the first pair's.
        let first = dup[24..28].to_vec();
        dup[24 + 28..24 + 28 + 4].copy_from_slice(&first);
        assert!(matches!(
            iblt_from_sparse_bytes(&dup),
            Err(WireError::Malformed(_))
        ));
        let mut oob = good.clone();
        oob[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            iblt_from_sparse_bytes(&oob),
            Err(WireError::Malformed(_))
        ));
        // More pairs than cells cannot allocate past the table.
        let mut overcount = good;
        overcount[20..24].copy_from_slice(&100u32.to_le_bytes());
        assert!(iblt_from_sparse_bytes(&overcount).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Flush);
        payload.push(0xff);
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::TrailingBytes(1))
        ));
    }
}

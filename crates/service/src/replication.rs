//! Primary→follower replication: the sealed-batch tee and the stream
//! loops on both ends.
//!
//! ## Fast path
//!
//! Every batch the ingest pipeline seals is *published* to the
//! [`ReplicationHub`] — assigned a global sequence number and offered to
//! each live follower [`Subscription`]. Publishing never blocks: a
//! follower whose bounded stream queue is full loses its **oldest**
//! queued batch (counted, and healed later by anti-entropy), so a slow
//! or dead follower can never apply backpressure to primary ingest.
//!
//! On a subscribed connection the primary runs [`stream_to_follower`]:
//! pop a batch from the subscription, write a `Replicate` frame, read
//! one `ReplicateAck` carrying the follower's highest applied sequence
//! number (that ack is what the per-follower lag gauge measures). The
//! follower runs [`apply_replication_stream`]: decode, deduplicate by
//! sequence number, apply through its own ingest pipeline, ack.
//!
//! ## Repair path
//!
//! The stream is deliberately best-effort; whatever it drops (queue
//! overflow, follower crash, torn frames) is repaired by the follower's
//! periodic anti-entropy loop ([`crate::follower`]), which digests each
//! local shard against the primary via the existing `Reconcile`
//! machinery and applies the decoded symmetric difference. Both loops
//! are written against [`Transport`](crate::transport::Transport) so the
//! fault-injection tests can drive them over an in-memory double.

use std::collections::VecDeque;
// ordering: all hub atomics are Relaxed. Sequence assignment (published) and
// fan-out mutate under the subs mutex, whose lock/unlock edges give the
// cross-thread ordering; closed is read back under that same mutex (see
// subscribe); streamed/dropped/acked are monotone gauges whose readers
// tolerate staleness. Checked by the loom models in
// tests/loom_replication.rs.
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

use crate::sync::{AtomicBool, AtomicU64, Condvar, Mutex};

use crate::lock::{plock, pwait};
use crate::metrics::{AtomicHistogram, FollowerStats, ReplicationStats};
use crate::queue::Batch;
use crate::service::PeelService;
use crate::transport::Transport;
use crate::wire::{
    decode_request, decode_response, encode_replicate, encode_request, Request, Response, WireError,
};

struct SubState {
    queue: VecDeque<(u64, Arc<Batch>)>,
    closed: bool,
}

struct SubShared {
    /// Stable identifier for this subscription (assigned at subscribe
    /// time, never reused) — keys the per-follower stats rows.
    id: u64,
    state: Mutex<SubState>,
    ready: Condvar,
    /// Highest sequence number the follower has acknowledged applying.
    acked: AtomicU64,
}

struct HubShared {
    subs: Mutex<Vec<Arc<SubShared>>>,
    /// Sequence number of the most recently published batch (they start
    /// at 1, so this doubles as a published-batch count).
    published: AtomicU64,
    /// Batches written to follower connections.
    streamed: AtomicU64,
    /// Batches evicted from overflowing follower queues.
    dropped: AtomicU64,
    /// Next subscription id (monotone; mutated under the subs lock).
    next_id: AtomicU64,
    /// Distribution of per-ack replication lag (published − acked
    /// sequence), recorded every time a follower acks.
    lag: AtomicHistogram,
    closed: AtomicBool,
    capacity: usize,
}

/// The fan-out point between the ingest pipeline and follower
/// connections: sealed batches go in, per-follower bounded streams come
/// out. Owned by the [`PeelService`]; followers attach via
/// [`ReplicationHub::subscribe`].
pub struct ReplicationHub {
    shared: Arc<HubShared>,
}

impl ReplicationHub {
    /// A hub whose per-follower stream queues hold at most `capacity`
    /// batches (overflow evicts the oldest).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "replication queue capacity must be ≥ 1");
        ReplicationHub {
            shared: Arc::new(HubShared {
                subs: Mutex::new(Vec::new()),
                published: AtomicU64::new(0),
                streamed: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                next_id: AtomicU64::new(0),
                lag: AtomicHistogram::new(),
                closed: AtomicBool::new(false),
                capacity,
            }),
        }
    }

    /// Assign the next sequence number to `batch` and offer it to every
    /// live follower. Never blocks on followers; bounded work per
    /// follower (one shared clone of the batch total, not one per
    /// follower).
    pub fn publish(&self, batch: &Batch) -> u64 {
        let h = &self.shared;
        // Sequence assignment and fan-out share one critical section:
        // concurrent publishers serialize here, so queue order always
        // matches sequence order — the follower's high-water dedup
        // would otherwise permanently skip a batch that two racing
        // submitters enqueued out of order.
        let subs = plock(&h.subs);
        let seq = h.published.fetch_add(1, Relaxed) + 1;
        if h.closed.load(Relaxed) || subs.is_empty() {
            return seq;
        }
        let shared_batch = Arc::new(batch.clone());
        for sub in subs.iter() {
            let mut st = plock(&sub.state);
            if st.closed {
                continue;
            }
            if st.queue.len() >= h.capacity {
                st.queue.pop_front();
                h.dropped.fetch_add(1, Relaxed);
            }
            st.queue.push_back((seq, Arc::clone(&shared_batch)));
            drop(st);
            sub.ready.notify_one();
        }
        seq
    }

    /// Attach a follower. The subscription sees batches published from
    /// now on; history is the anti-entropy loop's job.
    pub fn subscribe(&self) -> Subscription {
        // The closed flag must be sampled *under* the subs lock: with an
        // early read, a close() running between the read (false) and the
        // push would iterate the list without this subscription, leaving
        // it open forever — its recv() then blocks for good. Under the
        // lock, either close() sees the subscription or the subscription
        // sees closed == true (the lock's release/acquire edge makes the
        // relaxed load exact). Found by the subscribe-vs-close loom model
        // in tests/loom_replication.rs; replay schedule in CHANGES.md.
        let mut subs = plock(&self.shared.subs);
        let sub = Arc::new(SubShared {
            id: self.shared.next_id.fetch_add(1, Relaxed),
            state: Mutex::new(SubState {
                queue: VecDeque::new(),
                closed: self.shared.closed.load(Relaxed),
            }),
            ready: Condvar::new(),
            acked: AtomicU64::new(self.shared.published.load(Relaxed)),
        });
        subs.push(Arc::clone(&sub));
        Subscription {
            shared: sub,
            hub: Arc::clone(&self.shared),
        }
    }

    /// Close every subscription (drained, then `recv` returns `None`)
    /// and refuse new traffic. Idempotent.
    pub fn close(&self) {
        self.shared.closed.store(true, Relaxed);
        for sub in plock(&self.shared.subs).iter() {
            plock(&sub.state).closed = true;
            sub.ready.notify_all();
        }
    }

    /// Live follower subscriptions.
    pub fn followers(&self) -> usize {
        plock(&self.shared.subs).len()
    }

    /// Sequence number of the most recently published batch.
    pub fn published_seq(&self) -> u64 {
        self.shared.published.load(Relaxed)
    }

    /// The hub half of the replication stats: follower count, sequence
    /// gauges, per-follower lag, stream counters.
    pub fn stats(&self) -> ReplicationStats {
        let published = self.shared.published.load(Relaxed);
        let mut acked_min = published;
        let mut max_lag = 0u64;
        let subs = plock(&self.shared.subs);
        let mut per_follower = Vec::with_capacity(subs.len());
        for sub in subs.iter() {
            let acked = sub.acked.load(Relaxed);
            acked_min = acked_min.min(acked);
            let lag = published.saturating_sub(acked);
            max_lag = max_lag.max(lag);
            per_follower.push(FollowerStats {
                id: sub.id,
                published,
                acked,
                lag,
            });
        }
        per_follower.sort_unstable_by_key(|f| f.id);
        ReplicationStats {
            followers: subs.len() as u64,
            published_seq: published,
            acked_min,
            max_lag,
            batches_streamed: self.shared.streamed.load(Relaxed),
            batches_dropped: self.shared.dropped.load(Relaxed),
            per_follower,
            lag: self.shared.lag.snapshot(),
            ..ReplicationStats::default()
        }
    }
}

/// One follower's view of the hub: a bounded stream of `(seq, batch)`
/// pairs. Dropping the subscription detaches the follower.
pub struct Subscription {
    shared: Arc<SubShared>,
    hub: Arc<HubShared>,
}

impl Subscription {
    /// Next batch, blocking while the stream is empty. `None` once the
    /// hub has closed and the queue is drained.
    pub fn recv(&self) -> Option<(u64, Arc<Batch>)> {
        let mut st = plock(&self.shared.state);
        loop {
            if let Some(x) = st.queue.pop_front() {
                return Some(x);
            }
            if st.closed {
                return None;
            }
            st = pwait(&self.shared.ready, st);
        }
    }

    /// Next batch if one is already queued (test and drain helper).
    pub fn try_recv(&self) -> Option<(u64, Arc<Batch>)> {
        plock(&self.shared.state).queue.pop_front()
    }

    /// Stable identifier of this subscription within its hub.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// Record the follower's highest applied sequence number. Each ack
    /// also records the instantaneous lag (published − acked) into the
    /// hub's lag distribution.
    pub fn ack(&self, seq: u64) {
        self.shared.acked.fetch_max(seq, Relaxed);
        let published = self.hub.published.load(Relaxed);
        self.hub.lag.record(published.saturating_sub(seq));
    }

    /// Highest acknowledged sequence number.
    pub fn acked(&self) -> u64 {
        self.shared.acked.load(Relaxed)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        plock(&self.hub.subs).retain(|s| !Arc::ptr_eq(s, &self.shared));
    }
}

/// Primary-side sender: stream a subscription's batches to one follower
/// as `Replicate` frames, reading one `ReplicateAck` per frame (the ack
/// carries the follower's highest applied sequence number and feeds the
/// lag gauge). Batches at or below `resume_after` are skipped — the
/// follower already has them. Returns when the hub closes, the follower
/// disconnects, or the transport fails.
pub fn stream_to_follower<T: Transport>(
    transport: &mut T,
    sub: &Subscription,
    resume_after: u64,
) -> Result<(), WireError> {
    let span = tracing::span(
        "replication_stream",
        &[
            ("follower", sub.id().into()),
            ("resume_after", resume_after.into()),
        ],
    );
    let _entered = span.enter();
    while let Some((seq, ops)) = sub.recv() {
        if seq <= resume_after {
            continue;
        }
        transport.send(&encode_replicate(seq, &ops))?;
        sub.hub.streamed.fetch_add(1, Relaxed);
        match transport.recv()? {
            None => break,
            Some(payload) => match decode_request(&payload) {
                Ok(Request::ReplicateAck { seq }) => sub.ack(seq),
                // Anything else on a subscribed connection is a protocol
                // violation; drop the follower (it will reconnect).
                _ => break,
            },
        }
    }
    Ok(())
}

/// What one run of [`apply_replication_stream`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Batches applied to the local service.
    pub applied: u64,
    /// Batches skipped as duplicates or stale reorders.
    pub skipped: u64,
    /// Frames that failed to decode (dropped).
    pub decode_errors: u64,
}

/// Follower-side applier: read `Replicate` frames from `transport`,
/// apply each batch exactly once to `svc` (frames whose sequence number
/// is not strictly greater than `last_applied` are duplicates or stale
/// reorders and are skipped), and answer every frame with a
/// `ReplicateAck` carrying the highest applied sequence number.
///
/// `last_applied` persists across reconnects so a resumed stream cannot
/// double-apply. Frames that fail to decode are counted and dropped —
/// anti-entropy repairs whatever they carried. Returns on clean close,
/// transport error, or when `stop` is raised.
pub fn apply_replication_stream<T: Transport>(
    transport: &mut T,
    svc: &PeelService,
    stop: &AtomicBool,
    last_applied: &AtomicU64,
) -> Result<ApplyOutcome, WireError> {
    let metrics = svc.metrics_handle();
    let mut out = ApplyOutcome::default();
    while !stop.load(Relaxed) {
        let Some(payload) = transport.recv()? else {
            break;
        };
        match decode_response(&payload) {
            Ok(Response::Replicate { seq, ops }) => {
                if seq > last_applied.load(Relaxed) {
                    if !svc.ingest_batch(ops) {
                        // The local service is shutting down and refused
                        // the batch: don't claim it, don't ack it.
                        break;
                    }
                    last_applied.store(seq, Relaxed);
                    metrics.repl_applied.fetch_add(1, Relaxed);
                    out.applied += 1;
                } else {
                    metrics.repl_skipped.fetch_add(1, Relaxed);
                    out.skipped += 1;
                }
                transport.send(&encode_request(&Request::ReplicateAck {
                    seq: last_applied.load(Relaxed),
                }))?;
            }
            Ok(_) | Err(_) => {
                // Torn or foreign frame: count it and move on. No ack is
                // owed — over TCP a frame is either whole or the
                // connection is already dead.
                metrics.repl_decode_errors.fetch_add(1, Relaxed);
                out.decode_errors += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Op;

    fn batch(tag: u64, n: u64) -> Batch {
        (0..n)
            .map(|i| Op {
                key: tag * 1000 + i,
                dir: 1,
            })
            .collect()
    }

    #[test]
    fn publish_fans_out_in_order_with_sequence_numbers() {
        let hub = ReplicationHub::new(8);
        let a = hub.subscribe();
        let b = hub.subscribe();
        assert_eq!(hub.followers(), 2);
        assert_eq!(hub.publish(&batch(1, 3)), 1);
        assert_eq!(hub.publish(&batch(2, 3)), 2);
        for sub in [&a, &b] {
            assert_eq!(sub.try_recv().unwrap().0, 1);
            assert_eq!(sub.try_recv().unwrap().0, 2);
            assert!(sub.try_recv().is_none());
        }
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_drops() {
        let hub = ReplicationHub::new(2);
        let sub = hub.subscribe();
        for i in 0..5 {
            hub.publish(&batch(i, 1));
        }
        // Queue holds the newest two; three were evicted.
        assert_eq!(sub.try_recv().unwrap().0, 4);
        assert_eq!(sub.try_recv().unwrap().0, 5);
        assert!(sub.try_recv().is_none());
        assert_eq!(hub.stats().batches_dropped, 3);
    }

    #[test]
    fn lag_tracks_acks_and_drop_detaches() {
        let hub = ReplicationHub::new(8);
        let sub = hub.subscribe();
        hub.publish(&batch(1, 1));
        hub.publish(&batch(2, 1));
        let s = hub.stats();
        assert_eq!(s.published_seq, 2);
        assert_eq!(s.max_lag, 2);
        sub.ack(2);
        let s = hub.stats();
        assert_eq!(s.max_lag, 0);
        assert_eq!(s.acked_min, 2);
        drop(sub);
        assert_eq!(hub.followers(), 0);
        // With no followers the gauges read "caught up".
        assert_eq!(hub.stats().max_lag, 0);
    }

    #[test]
    fn close_wakes_blocked_receivers() {
        let hub = Arc::new(ReplicationHub::new(4));
        let sub = hub.subscribe();
        let h = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                hub.close();
            })
        };
        assert!(sub.recv().is_none(), "recv must return None after close");
        h.join().unwrap();
        // A post-close subscription is born closed.
        assert!(hub.subscribe().recv().is_none());
    }

    #[test]
    fn subscriptions_start_acked_at_current_seq() {
        // A follower that attaches late must not read as "lagging" by
        // the entire pre-subscription history.
        let hub = ReplicationHub::new(4);
        for i in 0..10 {
            hub.publish(&batch(i, 1));
        }
        let _sub = hub.subscribe();
        assert_eq!(hub.stats().max_lag, 0);
    }
}

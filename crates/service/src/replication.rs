//! Primary→follower replication: the sealed-batch tee and the stream
//! loops on both ends.
//!
//! ## Fast path
//!
//! Every batch the ingest pipeline seals is *published* to the
//! [`ReplicationHub`] — assigned a global sequence number and offered to
//! each live follower [`Subscription`]. Publishing never blocks: a
//! follower whose bounded stream queue is full loses its **oldest**
//! queued item (counted, and healed later by anti-entropy), so a slow
//! or dead follower can never apply backpressure to primary ingest.
//!
//! On a subscribed connection the primary runs [`stream_to_follower`]:
//! keep up to [`StreamConfig::window`] unacknowledged `Replicate` frames
//! in flight, reading cumulative `ReplicateAck`s (each carries the
//! follower's highest applied sequence number, which retires every
//! in-flight frame at or below it and feeds the per-follower lag gauge).
//! An ack that fails to arrive within [`StreamConfig::ack_timeout`]
//! triggers a retransmit of the whole window, up to
//! [`StreamConfig::max_retries`] times. The follower runs
//! [`apply_replication_stream`]: decode, deduplicate by sequence number,
//! apply through its own ingest pipeline, ack.
//!
//! ## Epoch fencing
//!
//! The hub owns the node's **replication epoch** — the monotone counter
//! a failover election bumps to fence a deposed primary. Every
//! `Replicate` frame carries the sender's epoch and every ack carries
//! the receiver's: a follower at a higher epoch refuses the frame and
//! acks its own epoch back, and a sender that sees a higher epoch in an
//! ack stops streaming ([`StreamEnd::Fenced`]). Bumping the epoch also
//! closes every subscription born under an older epoch, so a whole
//! follower chain parts from a stale primary at once.
//!
//! ## Repair path
//!
//! The stream is deliberately best-effort; whatever it drops (queue
//! overflow, follower crash, torn frames) is repaired by the follower's
//! periodic anti-entropy loop ([`crate::follower`]), which digests each
//! local shard against the primary via the existing `Reconcile`
//! machinery and applies the decoded symmetric difference. Both loops
//! are written against [`Transport`](crate::transport::Transport) so the
//! fault-injection tests can drive them over an in-memory double.

use std::collections::VecDeque;
// ordering: all hub atomics are Relaxed. Sequence assignment (published),
// fan-out, and epoch bumps mutate under the subs mutex, whose lock/unlock
// edges give the cross-thread ordering; closed is read back under that
// same mutex (see subscribe), and so is the sub's birth epoch;
// streamed/dropped/acked are monotone gauges whose readers tolerate
// staleness. Checked by the loom models in tests/loom_replication.rs.
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{AtomicBool, AtomicU64, Condvar, Mutex};

use crate::lock::{plock, pwait};
use crate::metrics::{AtomicHistogram, FollowerStats, ReplicationStats};
use crate::queue::Batch;
use crate::service::PeelService;
use crate::transport::{RecvOutcome, Transport};
use crate::wire::{
    decode_request, decode_response, encode_replicate, encode_request, encode_response, Request,
    Response, WireError,
};

/// One item in a follower's stream queue.
#[derive(Debug, Clone)]
pub enum StreamItem {
    /// A sealed batch with its replication sequence number.
    Batch(u64, Arc<Batch>),
    /// The primary committed a reshard: followers that see this notice
    /// adopt the new shard count immediately, cutting a whole chain
    /// over together (a lost notice is healed by the repair loop's
    /// per-round generation adoption).
    Generation {
        /// The new generation number.
        generation: u64,
        /// Shard count of the new generation.
        shards: u32,
    },
}

impl StreamItem {
    /// The batch's sequence number, if this is a batch.
    pub fn seq(&self) -> Option<u64> {
        match self {
            StreamItem::Batch(seq, _) => Some(*seq),
            StreamItem::Generation { .. } => None,
        }
    }
}

struct SubState {
    queue: VecDeque<StreamItem>,
    closed: bool,
}

struct SubShared {
    /// Stable identifier for this subscription (assigned at subscribe
    /// time, never reused) — keys the per-follower stats rows.
    id: u64,
    /// The hub epoch this subscription was born under; an epoch bump
    /// past it closes the subscription (set under the subs lock).
    epoch: u64,
    state: Mutex<SubState>,
    ready: Condvar,
    /// Highest sequence number the follower has acknowledged applying.
    acked: AtomicU64,
}

/// Final rows of recently disconnected followers kept for the stats
/// view, so dashboards see the disconnect instead of a phantom row (or
/// no trace at all).
const DEAD_ROWS_KEPT: usize = 8;

struct HubShared {
    subs: Mutex<Vec<Arc<SubShared>>>,
    /// Sequence number of the most recently published batch (they start
    /// at 1, so this doubles as a published-batch count).
    published: AtomicU64,
    /// Replication epoch this node is fenced at (bumped under the subs
    /// lock; see `bump_epoch`).
    epoch: AtomicU64,
    /// Batches written to follower connections.
    streamed: AtomicU64,
    /// Batches evicted from overflowing follower queues.
    dropped: AtomicU64,
    /// Next subscription id (monotone; mutated under the subs lock).
    next_id: AtomicU64,
    /// Distribution of per-ack replication lag (published − acked
    /// sequence), recorded every time a follower acks.
    lag: AtomicHistogram,
    /// Final rows of recently dropped subscriptions, newest last.
    dead: Mutex<VecDeque<FollowerStats>>,
    closed: AtomicBool,
    capacity: usize,
    /// Wake callbacks fired after items are offered, the hub closes, or
    /// the epoch bumps — how a readiness loop hosting [`WindowedSender`]s
    /// learns there is stream work without blocking in
    /// [`Subscription::recv`]. Fired outside the subs lock.
    notifiers: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
}

/// The fan-out point between the ingest pipeline and follower
/// connections: sealed batches go in, per-follower bounded streams come
/// out. Owned by the [`PeelService`]; followers attach via
/// [`ReplicationHub::subscribe`]. Also the node's replication-epoch
/// authority (see [`ReplicationHub::bump_epoch`]).
pub struct ReplicationHub {
    shared: Arc<HubShared>,
}

impl ReplicationHub {
    /// A hub whose per-follower stream queues hold at most `capacity`
    /// items (overflow evicts the oldest).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "replication queue capacity must be ≥ 1");
        ReplicationHub {
            shared: Arc::new(HubShared {
                subs: Mutex::new(Vec::new()),
                published: AtomicU64::new(0),
                epoch: AtomicU64::new(0),
                streamed: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                next_id: AtomicU64::new(0),
                lag: AtomicHistogram::new(),
                dead: Mutex::new(VecDeque::new()),
                closed: AtomicBool::new(false),
                capacity,
                notifiers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register a callback fired after stream items are offered, the hub
    /// closes, or the epoch bumps. The reactor server installs its poller
    /// waker here so `Replicate` frames flow without a blocked sender
    /// thread per follower. Callbacks must be cheap and non-blocking;
    /// they run on the publishing thread.
    pub fn add_notifier(&self, f: Arc<dyn Fn() + Send + Sync>) {
        plock(&self.shared.notifiers).push(f);
    }

    fn notify(&self) {
        for f in plock(&self.shared.notifiers).iter() {
            f();
        }
    }

    fn offer(&self, sub: &SubShared, item: StreamItem) {
        let mut st = plock(&sub.state);
        if st.closed {
            return;
        }
        if st.queue.len() >= self.shared.capacity {
            st.queue.pop_front();
            self.shared.dropped.fetch_add(1, Relaxed);
        }
        st.queue.push_back(item);
        drop(st);
        sub.ready.notify_one();
    }

    /// Assign the next sequence number to `batch` and offer it to every
    /// live follower. Never blocks on followers; bounded work per
    /// follower (one shared clone of the batch total, not one per
    /// follower).
    pub fn publish(&self, batch: &Batch) -> u64 {
        let h = &self.shared;
        // Sequence assignment and fan-out share one critical section:
        // concurrent publishers serialize here, so queue order always
        // matches sequence order — the follower's high-water dedup
        // would otherwise permanently skip a batch that two racing
        // submitters enqueued out of order.
        let subs = plock(&h.subs);
        let seq = h.published.fetch_add(1, Relaxed) + 1;
        if h.closed.load(Relaxed) || subs.is_empty() {
            return seq;
        }
        let shared_batch = Arc::new(batch.clone());
        for sub in subs.iter() {
            self.offer(sub, StreamItem::Batch(seq, Arc::clone(&shared_batch)));
        }
        drop(subs);
        self.notify();
        seq
    }

    /// Offer an in-stream generation-change notice to every live
    /// follower (called by the service after a reshard commit). Subject
    /// to the same bounded-queue eviction as batches — a follower that
    /// loses the notice adopts the new generation on its next
    /// anti-entropy round instead.
    pub fn publish_generation(&self, generation: u64, shards: u32) {
        let h = &self.shared;
        let subs = plock(&h.subs);
        if h.closed.load(Relaxed) {
            return;
        }
        for sub in subs.iter() {
            self.offer(sub, StreamItem::Generation { generation, shards });
        }
        drop(subs);
        self.notify();
    }

    /// Attach a follower. The subscription sees batches published from
    /// now on; history is the anti-entropy loop's job.
    pub fn subscribe(&self) -> Subscription {
        // The closed flag must be sampled *under* the subs lock: with an
        // early read, a close() running between the read (false) and the
        // push would iterate the list without this subscription, leaving
        // it open forever — its recv() then blocks for good. Under the
        // lock, either close() sees the subscription or the subscription
        // sees closed == true (the lock's release/acquire edge makes the
        // relaxed load exact). Found by the subscribe-vs-close loom model
        // in tests/loom_replication.rs; replay schedule in CHANGES.md.
        // The birth epoch is stamped under the same lock for the same
        // reason: a concurrent bump_epoch either sees the subscription
        // (and closes it) or the subscription is born at the new epoch —
        // never a live subscription pinned to a fenced epoch (checked by
        // the bump-vs-subscribe loom model).
        let mut subs = plock(&self.shared.subs);
        let sub = Arc::new(SubShared {
            id: self.shared.next_id.fetch_add(1, Relaxed),
            epoch: self.shared.epoch.load(Relaxed),
            state: Mutex::new(SubState {
                queue: VecDeque::new(),
                closed: self.shared.closed.load(Relaxed),
            }),
            ready: Condvar::new(),
            acked: AtomicU64::new(self.shared.published.load(Relaxed)),
        });
        subs.push(Arc::clone(&sub));
        Subscription {
            shared: sub,
            hub: Arc::clone(&self.shared),
        }
    }

    /// Raise the replication epoch to `new` (no-op if not higher) and
    /// close every subscription born under an older epoch — their
    /// senders return and the fenced followers re-parent. Returns the
    /// epoch in force afterwards. Monotone and idempotent.
    pub fn bump_epoch(&self, new: u64) -> u64 {
        let subs = plock(&self.shared.subs);
        let cur = self.shared.epoch.load(Relaxed);
        if new <= cur {
            return cur;
        }
        self.shared.epoch.store(new, Relaxed);
        for sub in subs.iter() {
            if sub.epoch < new {
                plock(&sub.state).closed = true;
                sub.ready.notify_all();
            }
        }
        drop(subs);
        self.notify();
        new
    }

    /// The replication epoch this node is fenced at.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Relaxed)
    }

    /// Close every subscription (drained, then `recv` returns `None`)
    /// and refuse new traffic. Idempotent.
    pub fn close(&self) {
        self.shared.closed.store(true, Relaxed);
        for sub in plock(&self.shared.subs).iter() {
            plock(&sub.state).closed = true;
            sub.ready.notify_all();
        }
        self.notify();
    }

    /// Live follower subscriptions.
    pub fn followers(&self) -> usize {
        plock(&self.shared.subs).len()
    }

    /// Sequence number of the most recently published batch.
    pub fn published_seq(&self) -> u64 {
        self.shared.published.load(Relaxed)
    }

    /// The hub half of the replication stats: follower count, epoch,
    /// sequence gauges, per-follower lag, stream counters. Live
    /// followers report `alive = true`; the final rows of the most
    /// recently disconnected followers follow them with `alive = false`
    /// (bounded, oldest expired first) so a disconnect is visible on
    /// dashboards instead of lingering as phantom lag.
    pub fn stats(&self) -> ReplicationStats {
        let published = self.shared.published.load(Relaxed);
        let mut acked_min = published;
        let mut max_lag = 0u64;
        let subs = plock(&self.shared.subs);
        let mut per_follower = Vec::with_capacity(subs.len());
        for sub in subs.iter() {
            let acked = sub.acked.load(Relaxed);
            acked_min = acked_min.min(acked);
            let lag = published.saturating_sub(acked);
            max_lag = max_lag.max(lag);
            per_follower.push(FollowerStats {
                id: sub.id,
                published,
                acked,
                lag,
                alive: true,
            });
        }
        let followers = subs.len() as u64;
        drop(subs);
        per_follower.sort_unstable_by_key(|f| f.id);
        per_follower.extend(plock(&self.shared.dead).iter().copied());
        ReplicationStats {
            followers,
            published_seq: published,
            acked_min,
            max_lag,
            batches_streamed: self.shared.streamed.load(Relaxed),
            batches_dropped: self.shared.dropped.load(Relaxed),
            per_follower,
            lag: self.shared.lag.snapshot(),
            epoch: self.shared.epoch.load(Relaxed),
            ..ReplicationStats::default()
        }
    }
}

/// One follower's view of the hub: a bounded stream of [`StreamItem`]s.
/// Dropping the subscription detaches the follower (its final stats row
/// is kept briefly, marked dead).
pub struct Subscription {
    shared: Arc<SubShared>,
    hub: Arc<HubShared>,
}

impl Subscription {
    /// Next item, blocking while the stream is empty. `None` once the
    /// subscription is closed (hub shutdown or epoch fence) and the
    /// queue is drained.
    pub fn recv(&self) -> Option<StreamItem> {
        let mut st = plock(&self.shared.state);
        loop {
            if let Some(x) = st.queue.pop_front() {
                return Some(x);
            }
            if st.closed {
                return None;
            }
            st = pwait(&self.shared.ready, st);
        }
    }

    /// Next item if one is already queued (test and drain helper).
    pub fn try_recv(&self) -> Option<StreamItem> {
        plock(&self.shared.state).queue.pop_front()
    }

    /// Stable identifier of this subscription within its hub.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// The hub epoch this subscription was born under.
    pub fn stream_epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// The hub's current replication epoch.
    pub fn hub_epoch(&self) -> u64 {
        self.hub.epoch.load(Relaxed)
    }

    /// True once the subscription has been closed (hub shutdown or an
    /// epoch bump past its birth epoch). A closed subscription still
    /// drains its queue.
    pub fn is_closed(&self) -> bool {
        plock(&self.shared.state).closed
    }

    /// Record the follower's highest applied sequence number. Each ack
    /// also records the instantaneous lag (published − acked) into the
    /// hub's lag distribution.
    pub fn ack(&self, seq: u64) {
        self.shared.acked.fetch_max(seq, Relaxed);
        let published = self.hub.published.load(Relaxed);
        self.hub.lag.record(published.saturating_sub(seq));
    }

    /// Highest acknowledged sequence number.
    pub fn acked(&self) -> u64 {
        self.shared.acked.load(Relaxed)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        plock(&self.hub.subs).retain(|s| !Arc::ptr_eq(s, &self.shared));
        // Freeze the final stats row so the disconnect stays visible
        // (briefly) instead of the row simply vanishing mid-dashboard.
        let published = self.hub.published.load(Relaxed);
        let acked = self.shared.acked.load(Relaxed);
        let mut dead = plock(&self.hub.dead);
        if dead.len() >= DEAD_ROWS_KEPT {
            dead.pop_front();
        }
        dead.push_back(FollowerStats {
            id: self.shared.id,
            published,
            acked,
            lag: published.saturating_sub(acked),
            alive: false,
        });
    }
}

/// Tunables for the primary-side windowed sender
/// ([`stream_to_follower`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Maximum unacknowledged `Replicate` frames in flight. 1 restores
    /// the old one-batch-in-flight ack pacing; larger windows hide the
    /// network round-trip (a WAN RTT no longer gates per-batch
    /// throughput).
    pub window: usize,
    /// How long to wait for an ack before retransmitting the window.
    pub ack_timeout: Duration,
    /// Consecutive ack timeouts tolerated before the follower is
    /// declared dead and the sender returns.
    pub max_retries: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 32,
            ack_timeout: Duration::from_secs(1),
            max_retries: 5,
        }
    }
}

/// Why [`stream_to_follower`] returned without a transport error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEnd {
    /// The hub closed, the follower disconnected or misbehaved, or the
    /// retransmit budget ran out.
    Closed,
    /// An ack carried an epoch above ours: this primary has been
    /// deposed by a failover election. The caller should adopt the
    /// fence (stop leading) rather than reconnect.
    Fenced(u64),
}

/// Primary-side sender: stream a subscription's items to one follower,
/// keeping up to [`StreamConfig::window`] unacknowledged `Replicate`
/// frames in flight. Acks are cumulative — one `ReplicateAck` retires
/// every in-flight frame at or below its sequence number — and a
/// missing ack retransmits the window after
/// [`StreamConfig::ack_timeout`], up to [`StreamConfig::max_retries`]
/// consecutive times. Batches at or below `resume_after` are skipped —
/// the follower already has them. Generation-change notices are
/// forwarded immediately and never retransmitted (adoption via
/// anti-entropy is the backstop). Returns [`StreamEnd::Fenced`] when an
/// ack reveals a higher epoch (this primary has been deposed).
pub fn stream_to_follower<T: Transport>(
    transport: &mut T,
    sub: &Subscription,
    resume_after: u64,
    cfg: &StreamConfig,
) -> Result<StreamEnd, WireError> {
    let span = tracing::span(
        "replication_stream",
        &[
            ("follower", sub.id().into()),
            ("resume_after", resume_after.into()),
            ("window", (cfg.window as u64).into()),
        ],
    );
    let _entered = span.enter();
    let window = cfg.window.max(1);
    let mut inflight: VecDeque<(u64, Vec<u8>)> = VecDeque::new();
    let mut retries = 0u32;
    loop {
        // Fill the window: block for the next item only when nothing is
        // in flight (an empty window with an empty queue means there is
        // nothing to wait for but the hub), otherwise take whatever is
        // already queued and fall through to the ack wait.
        while inflight.len() < window {
            let item = if inflight.is_empty() {
                match sub.recv() {
                    Some(x) => x,
                    None => return Ok(StreamEnd::Closed),
                }
            } else {
                match sub.try_recv() {
                    Some(x) => x,
                    None => break,
                }
            };
            match item {
                StreamItem::Batch(seq, ops) => {
                    if seq <= resume_after {
                        continue;
                    }
                    let frame = encode_replicate(sub.hub_epoch(), seq, &ops);
                    transport.send(&frame)?;
                    sub.hub.streamed.fetch_add(1, Relaxed);
                    inflight.push_back((seq, frame));
                }
                StreamItem::Generation { generation, shards } => {
                    transport.send(&encode_response(&Response::GenerationChange {
                        epoch: sub.hub_epoch(),
                        generation,
                        shards,
                    }))?;
                }
            }
        }
        if inflight.is_empty() {
            continue;
        }
        match transport.recv_timeout(cfg.ack_timeout)? {
            RecvOutcome::Frame(payload) => match decode_request(&payload) {
                Ok(Request::ReplicateAck { epoch, seq }) => {
                    if epoch > sub.hub_epoch() {
                        return Ok(StreamEnd::Fenced(epoch));
                    }
                    sub.ack(seq);
                    while inflight.front().is_some_and(|&(s, _)| s <= seq) {
                        inflight.pop_front();
                    }
                    retries = 0;
                }
                // Anything else on a subscribed connection is a protocol
                // violation; drop the follower (it will reconnect).
                _ => return Ok(StreamEnd::Closed),
            },
            RecvOutcome::Closed => return Ok(StreamEnd::Closed),
            RecvOutcome::TimedOut => {
                retries += 1;
                if retries > cfg.max_retries {
                    return Ok(StreamEnd::Closed);
                }
                // Retransmit the whole window in order; the follower's
                // sequence dedup makes duplicates harmless.
                for (_, frame) in &inflight {
                    transport.send(frame)?;
                }
            }
        }
    }
}

/// What feeding one incoming frame to a [`WindowedSender`] concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderFrame {
    /// A valid cumulative ack; keep streaming.
    Continue,
    /// The ack carried an epoch above ours: this primary has been
    /// deposed. The caller should adopt the fence and close the stream.
    Fenced(u64),
    /// The frame was not a `ReplicateAck` — a protocol violation; drop
    /// the follower (it will reconnect).
    Protocol,
}

/// The primary-side windowed sender as a poll-driven state machine — the
/// exact semantics of [`stream_to_follower`] (cumulative acks, window
/// retransmit on ack timeout, epoch fencing, generation pass-through)
/// with the blocking waits factored out, so a single-threaded readiness
/// loop can host one per subscribed connection:
///
/// - [`WindowedSender::pump`] drains whatever the subscription has
///   queued (never blocks) and emits encoded frames;
/// - [`WindowedSender::on_frame`] consumes an incoming ack;
/// - [`WindowedSender::deadline`] exposes the retransmit timer for the
///   loop's poll timeout, and [`WindowedSender::on_deadline`] fires it.
///
/// The loop learns about freshly published batches through
/// [`ReplicationHub::add_notifier`] (typically a poller waker).
pub struct WindowedSender {
    sub: Subscription,
    resume_after: u64,
    cfg: StreamConfig,
    inflight: VecDeque<(u64, Vec<u8>)>,
    retries: u32,
    deadline: Option<Instant>,
}

impl WindowedSender {
    /// Wrap a subscription. Batches at or below `resume_after` are
    /// skipped — the follower already has them.
    pub fn new(sub: Subscription, resume_after: u64, cfg: StreamConfig) -> Self {
        let cfg = StreamConfig {
            window: cfg.window.max(1),
            ..cfg
        };
        WindowedSender {
            sub,
            resume_after,
            cfg,
            inflight: VecDeque::new(),
            retries: 0,
            deadline: None,
        }
    }

    /// The underlying subscription (stats/identity).
    pub fn subscription(&self) -> &Subscription {
        &self.sub
    }

    /// Drain queued stream items into encoded frames (up to the window),
    /// without blocking. Returns `false` once the stream is finished —
    /// the subscription is closed (hub shutdown or epoch fence), its
    /// queue is drained, and nothing is left in flight — at which point
    /// the caller should flush and close the connection.
    pub fn pump(&mut self, now: Instant, emit: &mut dyn FnMut(&[u8])) -> bool {
        let mut drained = false;
        while self.inflight.len() < self.cfg.window {
            match self.sub.try_recv() {
                Some(StreamItem::Batch(seq, ops)) => {
                    if seq <= self.resume_after {
                        continue;
                    }
                    let frame = encode_replicate(self.sub.hub_epoch(), seq, &ops);
                    emit(&frame);
                    self.sub.hub.streamed.fetch_add(1, Relaxed);
                    self.inflight.push_back((seq, frame));
                    if self.deadline.is_none() {
                        self.deadline = Some(now + self.cfg.ack_timeout);
                    }
                }
                Some(StreamItem::Generation { generation, shards }) => {
                    // Forwarded immediately, never retransmitted (lost
                    // notices are healed by anti-entropy adoption).
                    emit(&encode_response(&Response::GenerationChange {
                        epoch: self.sub.hub_epoch(),
                        generation,
                        shards,
                    }));
                }
                None => {
                    drained = true;
                    break;
                }
            }
        }
        !(drained && self.inflight.is_empty() && self.sub.is_closed())
    }

    /// Consume one frame read from the subscribed connection (must be a
    /// cumulative `ReplicateAck`).
    pub fn on_frame(&mut self, payload: &[u8], now: Instant) -> SenderFrame {
        match decode_request(payload) {
            Ok(Request::ReplicateAck { epoch, seq }) => {
                if epoch > self.sub.hub_epoch() {
                    return SenderFrame::Fenced(epoch);
                }
                self.sub.ack(seq);
                while self.inflight.front().is_some_and(|&(s, _)| s <= seq) {
                    self.inflight.pop_front();
                }
                self.retries = 0;
                self.deadline = if self.inflight.is_empty() {
                    None
                } else {
                    Some(now + self.cfg.ack_timeout)
                };
                SenderFrame::Continue
            }
            _ => SenderFrame::Protocol,
        }
    }

    /// When the retransmit timer fires (None while nothing is in
    /// flight). Feed into the readiness loop's poll timeout.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Fire the retransmit timer if it has expired: re-emit the whole
    /// in-flight window in order (the follower's sequence dedup makes
    /// duplicates harmless). Returns `false` once the consecutive-retry
    /// budget is spent — the follower is presumed dead; drop it.
    pub fn on_deadline(&mut self, now: Instant, emit: &mut dyn FnMut(&[u8])) -> bool {
        let Some(at) = self.deadline else { return true };
        if now < at {
            return true;
        }
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            return false;
        }
        for (_, frame) in &self.inflight {
            emit(frame);
        }
        self.deadline = Some(now + self.cfg.ack_timeout);
        true
    }
}

/// What one run of [`apply_replication_stream`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Batches applied to the local service.
    pub applied: u64,
    /// Batches skipped as duplicates or stale reorders.
    pub skipped: u64,
    /// Frames that failed to decode (dropped).
    pub decode_errors: u64,
    /// Frames refused because they carried a stale epoch (a fenced
    /// ex-primary still streaming after a failover).
    pub fenced: u64,
    /// Generation-change notices adopted (local reshards run).
    pub generation_changes: u64,
}

/// Follower-side applier: read `Replicate` frames from `transport`,
/// apply each batch exactly once to `svc` (frames whose sequence number
/// is not strictly greater than `last_applied` are duplicates or stale
/// reorders and are skipped), and answer every frame with a cumulative
/// `ReplicateAck` carrying the highest applied sequence number and the
/// local epoch.
///
/// Epoch fencing happens here: a frame below the local epoch is refused
/// (not applied, counted in [`ApplyOutcome::fenced`]) and the ack's
/// higher epoch tells the stale primary it has been deposed; a frame
/// *above* the local epoch raises the local fence first — the sender is
/// a legitimately elected new primary. In-stream `GenerationChange`
/// notices at or above the local epoch reshard the local service to the
/// primary's new shard count immediately.
///
/// `last_applied` persists across reconnects so a resumed stream cannot
/// double-apply. Frames that fail to decode are counted and dropped —
/// anti-entropy repairs whatever they carried. Returns on clean close,
/// transport error, or when `stop` is raised.
pub fn apply_replication_stream<T: Transport>(
    transport: &mut T,
    svc: &PeelService,
    stop: &AtomicBool,
    last_applied: &AtomicU64,
) -> Result<ApplyOutcome, WireError> {
    let metrics = svc.metrics_handle();
    let mut out = ApplyOutcome::default();
    while !stop.load(Relaxed) {
        let Some(payload) = transport.recv()? else {
            break;
        };
        match decode_response(&payload) {
            Ok(Response::Replicate { epoch, seq, ops }) => {
                let local = svc.repl_epoch();
                if epoch < local {
                    // Stale primary: refuse the batch and let the ack's
                    // higher epoch depose it.
                    metrics.repl_fenced.fetch_add(1, Relaxed);
                    out.fenced += 1;
                    transport.send(&encode_request(&Request::ReplicateAck {
                        epoch: local,
                        seq: last_applied.load(Relaxed),
                    }))?;
                    continue;
                }
                if epoch > local {
                    // A legitimately elected new primary: adopt its
                    // fence before applying anything from it.
                    svc.fence_epoch(epoch);
                }
                svc.note_stream_seq(seq);
                if seq > last_applied.load(Relaxed) {
                    if !svc.ingest_batch(ops) {
                        // The local service is shutting down and refused
                        // the batch: don't claim it, don't ack it.
                        break;
                    }
                    last_applied.store(seq, Relaxed);
                    svc.note_applied_seq(seq);
                    metrics.repl_applied.fetch_add(1, Relaxed);
                    out.applied += 1;
                } else {
                    metrics.repl_skipped.fetch_add(1, Relaxed);
                    out.skipped += 1;
                }
                transport.send(&encode_request(&Request::ReplicateAck {
                    epoch: svc.repl_epoch(),
                    seq: last_applied.load(Relaxed),
                }))?;
            }
            Ok(Response::GenerationChange {
                epoch,
                generation: _,
                shards,
            }) => {
                // A stale primary's reshard is not ours to follow. A
                // failed local reshard is retried by the repair loop's
                // per-round generation adoption.
                if epoch >= svc.repl_epoch()
                    && svc.shards() != shards
                    && svc.reshard(shards).is_ok()
                {
                    out.generation_changes += 1;
                }
            }
            Ok(_) | Err(_) => {
                // Torn or foreign frame: count it and move on. No ack is
                // owed — over TCP a frame is either whole or the
                // connection is already dead.
                metrics.repl_decode_errors.fetch_add(1, Relaxed);
                out.decode_errors += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Op;

    fn batch(tag: u64, n: u64) -> Batch {
        (0..n)
            .map(|i| Op {
                key: tag * 1000 + i,
                dir: 1,
            })
            .collect()
    }

    fn recv_seq(sub: &Subscription) -> Option<u64> {
        sub.try_recv().and_then(|item| item.seq())
    }

    #[test]
    fn publish_fans_out_in_order_with_sequence_numbers() {
        let hub = ReplicationHub::new(8);
        let a = hub.subscribe();
        let b = hub.subscribe();
        assert_eq!(hub.followers(), 2);
        assert_eq!(hub.publish(&batch(1, 3)), 1);
        assert_eq!(hub.publish(&batch(2, 3)), 2);
        for sub in [&a, &b] {
            assert_eq!(recv_seq(sub), Some(1));
            assert_eq!(recv_seq(sub), Some(2));
            assert!(sub.try_recv().is_none());
        }
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_drops() {
        let hub = ReplicationHub::new(2);
        let sub = hub.subscribe();
        for i in 0..5 {
            hub.publish(&batch(i, 1));
        }
        // Queue holds the newest two; three were evicted.
        assert_eq!(recv_seq(&sub), Some(4));
        assert_eq!(recv_seq(&sub), Some(5));
        assert!(sub.try_recv().is_none());
        assert_eq!(hub.stats().batches_dropped, 3);
    }

    #[test]
    fn lag_tracks_acks_and_drop_detaches() {
        let hub = ReplicationHub::new(8);
        let sub = hub.subscribe();
        hub.publish(&batch(1, 1));
        hub.publish(&batch(2, 1));
        let s = hub.stats();
        assert_eq!(s.published_seq, 2);
        assert_eq!(s.max_lag, 2);
        sub.ack(2);
        let s = hub.stats();
        assert_eq!(s.max_lag, 0);
        assert_eq!(s.acked_min, 2);
        drop(sub);
        assert_eq!(hub.followers(), 0);
        // With no followers the gauges read "caught up".
        assert_eq!(hub.stats().max_lag, 0);
    }

    #[test]
    fn close_wakes_blocked_receivers() {
        let hub = Arc::new(ReplicationHub::new(4));
        let sub = hub.subscribe();
        let h = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                hub.close();
            })
        };
        assert!(sub.recv().is_none(), "recv must return None after close");
        h.join().unwrap();
        // A post-close subscription is born closed.
        assert!(hub.subscribe().recv().is_none());
    }

    #[test]
    fn subscriptions_start_acked_at_current_seq() {
        // A follower that attaches late must not read as "lagging" by
        // the entire pre-subscription history.
        let hub = ReplicationHub::new(4);
        for i in 0..10 {
            hub.publish(&batch(i, 1));
        }
        let _sub = hub.subscribe();
        assert_eq!(hub.stats().max_lag, 0);
    }

    #[test]
    fn epoch_bump_fences_older_subscriptions() {
        let hub = ReplicationHub::new(4);
        let old = hub.subscribe();
        assert_eq!(old.stream_epoch(), 0);
        assert_eq!(hub.bump_epoch(3), 3);
        // Monotone: a lower bump is a no-op.
        assert_eq!(hub.bump_epoch(1), 3);
        assert_eq!(hub.epoch(), 3);
        assert!(old.is_closed(), "pre-bump subscription must be fenced");
        assert!(old.recv().is_none());
        // A fresh subscription is born at the new epoch and stays live.
        let new = hub.subscribe();
        assert_eq!(new.stream_epoch(), 3);
        assert!(!new.is_closed());
        hub.publish(&batch(1, 1));
        assert_eq!(recv_seq(&new), Some(1));
    }

    #[test]
    fn dropped_follower_leaves_a_dead_row() {
        let hub = ReplicationHub::new(4);
        let sub = hub.subscribe();
        let id = sub.id();
        hub.publish(&batch(1, 1));
        hub.publish(&batch(2, 1));
        sub.ack(1);
        drop(sub);
        let s = hub.stats();
        assert_eq!(s.followers, 0, "dead rows don't count as followers");
        let row = s.per_follower.iter().find(|f| f.id == id).unwrap();
        assert!(!row.alive);
        assert_eq!(row.acked, 1);
        assert_eq!(row.lag, 1);
        // Dead rows are bounded: old ones expire.
        for _ in 0..(DEAD_ROWS_KEPT + 3) {
            drop(hub.subscribe());
        }
        let s = hub.stats();
        assert_eq!(s.per_follower.len(), DEAD_ROWS_KEPT);
        assert!(s.per_follower.iter().all(|f| !f.alive));
        assert!(!s.per_follower.iter().any(|f| f.id == id));
    }

    #[test]
    fn generation_notice_reaches_followers() {
        let hub = ReplicationHub::new(4);
        let sub = hub.subscribe();
        hub.publish_generation(2, 8);
        match sub.try_recv() {
            Some(StreamItem::Generation { generation, shards }) => {
                assert_eq!(generation, 2);
                assert_eq!(shards, 8);
            }
            other => panic!("expected a generation notice, got {other:?}"),
        }
    }
}

//! Service counters: per-shard op counts, batch occupancy, queue
//! backpressure stalls, and recovery subround traces.
//!
//! All counters are relaxed atomics updated on the hot paths; a
//! [`MetricsSnapshot`] is a plain-data copy that the wire protocol can
//! ship to clients (`Stats` request).

// ordering: all metrics are Relaxed — monotone counters and last-value
// gauges bumped with commutative fetch_add/fetch_max or plain stores.
// Readers (`snapshot`, the Stats frame) are diagnostics that tolerate
// staleness and cross-counter skew by contract; nothing branches on a
// metric for correctness.
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use parking_lot::Mutex;

/// Live service counters (shared between workers, connections, and the
/// recovery scheduler).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Batches drained from the ingest queue and applied.
    pub batches_applied: AtomicU64,
    /// Individual operations applied (inserts + deletes).
    pub ops_applied: AtomicU64,
    /// Times a producer blocked because the bounded queue was full.
    pub queue_stalls: AtomicU64,
    /// Recoveries (reconciliations) run.
    pub recoveries: AtomicU64,
    /// Recoveries that did not decode completely.
    pub recoveries_incomplete: AtomicU64,
    /// Total parallel subrounds across all recoveries.
    pub recovery_subrounds: AtomicU64,
    /// Total wall time spent inside recovery subrounds, in nanoseconds —
    /// with `recoveries`, the mean decode latency a reconcile pays.
    pub recovery_ns: AtomicU64,
    /// Replicated batches applied by this service when acting as a
    /// follower (deduplicated by sequence number).
    pub repl_applied: AtomicU64,
    /// Replicated batches skipped as duplicates or stale reorders.
    pub repl_skipped: AtomicU64,
    /// Replication frames that failed to decode (dropped; healed by
    /// anti-entropy).
    pub repl_decode_errors: AtomicU64,
    /// Anti-entropy repair rounds completed against the primary.
    pub anti_entropy_rounds: AtomicU64,
    /// Keys healed (inserted or deleted) by anti-entropy repair.
    pub anti_entropy_keys: AtomicU64,
    /// Reshards committed (generation cutovers) on this service.
    pub reshards_completed: AtomicU64,
    /// Reshards aborted (migration dropped, old generation kept).
    pub reshards_aborted: AtomicU64,
    /// Per-subround trace of the most recent recovery: key counts (the
    /// paper's Table 5/6 trace) and wall times in ns, as parallel
    /// vectors under one lock so a concurrent snapshot can never observe
    /// counts from one recovery paired with times from another.
    last_trace: Mutex<(Vec<u64>, Vec<u64>)>,
}

impl Metrics {
    /// Record one finished recovery with its per-subround key counts and
    /// wall times (parallel slices of the same productive subrounds).
    pub fn record_recovery(
        &self,
        complete: bool,
        subrounds: u32,
        per_subround: &[u64],
        per_subround_ns: &[u64],
    ) {
        self.recoveries.fetch_add(1, Relaxed);
        if !complete {
            self.recoveries_incomplete.fetch_add(1, Relaxed);
        }
        self.recovery_subrounds.fetch_add(subrounds as u64, Relaxed);
        self.recovery_ns
            .fetch_add(per_subround_ns.iter().sum::<u64>(), Relaxed);
        // Overwrite in place: the trace buffers keep their capacity, so
        // steady-state recording never allocates.
        let mut t = self.last_trace.lock();
        t.0.clear();
        t.0.extend_from_slice(per_subround);
        t.1.clear();
        t.1.extend_from_slice(per_subround_ns);
    }

    /// Plain-data copy of the global counters. Per-shard stats, the hub
    /// half of the replication stats, and the live reshard gauges are
    /// filled in by the service, which owns the shards, the replication
    /// hub, and the generation state; the follower-side replication
    /// counters and the reshard outcome counters live here and are
    /// merged in.
    pub fn snapshot(
        &self,
        shards: Vec<ShardStats>,
        hub: ReplicationStats,
        reshard: ReshardStats,
    ) -> MetricsSnapshot {
        let (trace, trace_ns) = self.last_trace.lock().clone();
        let replication = ReplicationStats {
            batches_applied: self.repl_applied.load(Relaxed),
            batches_skipped: self.repl_skipped.load(Relaxed),
            decode_errors: self.repl_decode_errors.load(Relaxed),
            anti_entropy_rounds: self.anti_entropy_rounds.load(Relaxed),
            anti_entropy_keys: self.anti_entropy_keys.load(Relaxed),
            ..hub
        };
        let reshard = ReshardStats {
            completed: self.reshards_completed.load(Relaxed),
            aborted: self.reshards_aborted.load(Relaxed),
            ..reshard
        };
        MetricsSnapshot {
            batches_applied: self.batches_applied.load(Relaxed),
            ops_applied: self.ops_applied.load(Relaxed),
            queue_stalls: self.queue_stalls.load(Relaxed),
            recoveries: self.recoveries.load(Relaxed),
            recoveries_incomplete: self.recoveries_incomplete.load(Relaxed),
            recovery_subrounds: self.recovery_subrounds.load(Relaxed),
            recovery_ns: self.recovery_ns.load(Relaxed),
            last_recovery_trace: trace,
            last_recovery_trace_ns: trace_ns,
            shards,
            replication,
            reshard,
        }
    }
}

/// Reshard state at snapshot time: the live migration gauges (phase,
/// generation, shard counts, keys moved, shards verified) come from the
/// service's generation state; the outcome counters (completed/aborted)
/// from the service's own metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReshardStats {
    /// Generation number of the serving shard set (0 at boot, +1 per
    /// committed reshard).
    pub generation: u64,
    /// True while a migration to a new generation is in flight.
    pub resharding: bool,
    /// Shard count of the serving generation.
    pub serving_shards: u32,
    /// Shard count of the migration target (equals `serving_shards` when
    /// not resharding).
    pub to_shards: u32,
    /// Keys re-keyed into the new generation by the in-flight (or most
    /// recent) migration.
    pub keys_moved: u64,
    /// New-generation shards whose contents have verified cell-identical
    /// to their projection (cutover-ready when all of them have).
    pub shards_verified: u32,
    /// Reshards committed over this service's lifetime.
    pub completed: u64,
    /// Reshards aborted over this service's lifetime.
    pub aborted: u64,
}

/// Replication state at snapshot time: the primary half (follower count,
/// sequence numbers, per-follower lag, stream drops) comes from the
/// replication hub; the follower half (applied/skipped batches, decode
/// errors, anti-entropy repairs) from the service's own counters. Lag is
/// measured in sealed batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Live follower subscriptions.
    pub followers: u64,
    /// Highest batch sequence number sealed (and offered to followers).
    pub published_seq: u64,
    /// Lowest acknowledged sequence number across followers
    /// (= `published_seq` when there are no followers).
    pub acked_min: u64,
    /// Largest per-follower replication lag, in batches:
    /// `published_seq − acked`, maximized over followers.
    pub max_lag: u64,
    /// Batches written to follower connections.
    pub batches_streamed: u64,
    /// Batches dropped because a follower's stream queue overflowed
    /// (healed later by anti-entropy).
    pub batches_dropped: u64,
    /// Follower side: replicated batches applied (deduplicated).
    pub batches_applied: u64,
    /// Follower side: replicated batches skipped (duplicate or stale).
    pub batches_skipped: u64,
    /// Follower side: replication frames that failed to decode.
    pub decode_errors: u64,
    /// Follower side: anti-entropy repair rounds completed.
    pub anti_entropy_rounds: u64,
    /// Follower side: keys healed by anti-entropy repair.
    pub anti_entropy_keys: u64,
}

/// Per-shard counters at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Batches applied to this shard (the shard's epoch).
    pub epoch: u64,
    /// Keys inserted into this shard.
    pub inserts: u64,
    /// Keys deleted from this shard.
    pub deletes: u64,
}

/// Point-in-time copy of all service counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Batches drained from the ingest queue and applied.
    pub batches_applied: u64,
    /// Individual operations applied.
    pub ops_applied: u64,
    /// Producer stalls on the bounded queue (backpressure events).
    pub queue_stalls: u64,
    /// Recoveries run.
    pub recoveries: u64,
    /// Recoveries that did not decode completely.
    pub recoveries_incomplete: u64,
    /// Total subrounds across all recoveries.
    pub recovery_subrounds: u64,
    /// Total wall time spent in recovery subrounds, nanoseconds.
    pub recovery_ns: u64,
    /// Per-subround key counts of the most recent recovery.
    pub last_recovery_trace: Vec<u64>,
    /// Per-subround wall times (ns) of the most recent recovery, aligned
    /// with `last_recovery_trace`.
    pub last_recovery_trace_ns: Vec<u64>,
    /// One entry per shard (of the serving generation).
    pub shards: Vec<ShardStats>,
    /// Replication state (primary and follower halves).
    pub replication: ReplicationStats,
    /// Reshard state (live migration gauges + outcome counters).
    pub reshard: ReshardStats,
}

impl MetricsSnapshot {
    /// Mean ops per applied batch (the batching layer's occupancy).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches_applied == 0 {
            return 0.0;
        }
        self.ops_applied as f64 / self.batches_applied as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = Metrics::default();
        m.batches_applied.store(3, Relaxed);
        m.ops_applied.store(12, Relaxed);
        m.record_recovery(true, 9, &[4, 2, 1], &[900, 300, 100]);
        m.record_recovery(false, 5, &[1], &[250]);
        m.repl_applied.store(6, Relaxed);
        m.anti_entropy_keys.store(17, Relaxed);
        m.reshards_completed.store(2, Relaxed);
        m.reshards_aborted.store(1, Relaxed);
        let hub = ReplicationStats {
            followers: 2,
            published_seq: 10,
            acked_min: 8,
            max_lag: 2,
            ..ReplicationStats::default()
        };
        let reshard = ReshardStats {
            generation: 3,
            resharding: true,
            serving_shards: 2,
            to_shards: 8,
            keys_moved: 41,
            shards_verified: 5,
            ..ReshardStats::default()
        };
        let s = m.snapshot(vec![ShardStats::default(); 2], hub, reshard);
        assert_eq!(s.batches_applied, 3);
        assert_eq!(s.ops_applied, 12);
        assert_eq!(s.recoveries, 2);
        assert_eq!(s.recoveries_incomplete, 1);
        assert_eq!(s.recovery_subrounds, 14);
        assert_eq!(s.recovery_ns, 900 + 300 + 100 + 250);
        assert_eq!(s.last_recovery_trace, vec![1]);
        assert_eq!(s.last_recovery_trace_ns, vec![250]);
        assert_eq!(s.shards.len(), 2);
        assert!((s.mean_batch_occupancy() - 4.0).abs() < 1e-12);
        // The replication block merges hub gauges with local counters.
        assert_eq!(s.replication.followers, 2);
        assert_eq!(s.replication.max_lag, 2);
        assert_eq!(s.replication.batches_applied, 6);
        assert_eq!(s.replication.anti_entropy_keys, 17);
        // The reshard block merges live gauges with outcome counters.
        assert!(s.reshard.resharding);
        assert_eq!(s.reshard.generation, 3);
        assert_eq!(s.reshard.to_shards, 8);
        assert_eq!(s.reshard.keys_moved, 41);
        assert_eq!(s.reshard.completed, 2);
        assert_eq!(s.reshard.aborted, 1);
    }

    #[test]
    fn empty_snapshot_has_zero_occupancy() {
        let s = Metrics::default().snapshot(
            Vec::new(),
            ReplicationStats::default(),
            ReshardStats::default(),
        );
        assert_eq!(s.mean_batch_occupancy(), 0.0);
    }
}

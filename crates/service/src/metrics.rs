//! Service counters and latency distributions: per-shard op counts,
//! batch occupancy, queue backpressure stalls, recovery subround traces,
//! and lock-free log-bucketed histograms for every latency the service
//! pays (request handling per frame class, batch queue wait, batch
//! apply, recovery decode) plus the per-follower replication lag.
//!
//! All counters are relaxed atomics updated on the hot paths; a
//! [`MetricsSnapshot`] is a plain-data copy that the wire protocol can
//! ship to clients (`Stats` request) and the Prometheus renderer
//! (`prom` module) can format.

// ordering: all metrics are Relaxed — monotone counters, last-value
// gauges, and histogram buckets bumped with commutative fetch_add or
// plain stores. Readers (`snapshot`, the Stats frame) are diagnostics
// that tolerate staleness and cross-counter skew by contract; nothing
// branches on a metric for correctness.
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use parking_lot::Mutex;

/// Bucket count of [`AtomicHistogram`]: 2 sub-buckets per power of two
/// across the full `u64` range (see [`bucket_index`]), so relative
/// error is bounded at ~25% — plenty for latency quantiles.
pub const HISTOGRAM_BUCKETS: usize = 128;

/// The bucket a value lands in: 0 and 1 get exact buckets; larger
/// values split each octave `[2^o, 2^(o+1))` into two half-octave
/// sub-buckets keyed by the bit below the most significant one.
pub fn bucket_index(v: u64) -> usize {
    if v < 2 {
        return v as usize;
    }
    let o = 63 - v.leading_zeros() as usize;
    let half = (v >> (o - 1)) & 1;
    (2 * o + half as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i` (the inverse of
/// [`bucket_index`]): the smallest value that lands in the bucket.
pub fn bucket_floor(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        _ => {
            let o = i / 2;
            (1u64 << o) + (((i % 2) as u64) << (o - 1))
        }
    }
}

/// A lock-free log-bucketed latency histogram (HDR-style): fixed
/// [`HISTOGRAM_BUCKETS`] relaxed counters, ~2 buckets per octave, plus
/// a running count and sum. Recording is two `fetch_add`s and one
/// bucket bump — safe on every hot path. Quantile readout happens on
/// plain-data [`HistogramSnapshot`] copies.
#[derive(Debug)]
pub struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl AtomicHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        if let Some(b) = self.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Relaxed);
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Fold `other`'s counts into `self` (bucket-wise addition), so
    /// per-worker histograms can collapse into one. Equivalent to
    /// having recorded both value streams into `self`.
    pub fn merge_from(&self, other: &AtomicHistogram) {
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Relaxed);
            if v != 0 {
                dst.fetch_add(v, Relaxed);
            }
        }
    }

    /// Plain-data copy: sparse non-empty `(bucket, count)` pairs in
    /// bucket order, plus the running count and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let v = b.load(Relaxed);
            if v != 0 {
                buckets.push((i as u32, v));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of an [`AtomicHistogram`]: sparse non-empty
/// buckets, total count, and sum. This is what the `Stats` wire frame
/// carries and what quantile readout runs on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty `(bucket index, count)` pairs, ascending by index.
    /// Indexes are capped at [`HISTOGRAM_BUCKETS`] − 1 on decode.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` ∈ [0, 1]: the lower bound of the
    /// bucket containing the ⌈q·count⌉-th observation (0 when empty).
    /// Monotone in `q`; accurate to the half-octave bucket width.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum = cum.saturating_add(c);
            if cum >= target {
                return bucket_floor(i as usize);
            }
        }
        // Sparse buckets should always cover `count`; fall back to the
        // largest recorded bucket if a decoded frame disagrees.
        self.buckets
            .last()
            .map_or(0, |&(i, _)| bucket_floor(i as usize))
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Fold another snapshot into this one (bucket-wise addition).
    /// Sums wrap on overflow — the same behavior as the atomic
    /// `fetch_add` recording path, so merging snapshots is exactly
    /// equivalent to having recorded both value streams into one
    /// histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca.wrapping_add(cb)));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

/// Request frame classes, indexing the per-class request-latency
/// histograms. `Request::class_index` (wire module) maps each frame to
/// a class; the class name becomes the `class` label in the Prometheus
/// rendering.
pub const REQUEST_CLASSES: [&str; 8] = [
    "hello",
    "ingest",
    "flush",
    "digest",
    "reconcile",
    "stats",
    "reshard",
    "admin",
];

/// Live service counters (shared between workers, connections, and the
/// recovery scheduler).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Batches drained from the ingest queue and applied.
    pub batches_applied: AtomicU64,
    /// Individual operations applied (inserts + deletes).
    pub ops_applied: AtomicU64,
    /// Times a producer blocked because the bounded queue was full.
    pub queue_stalls: AtomicU64,
    /// Recoveries (reconciliations) run.
    pub recoveries: AtomicU64,
    /// Recoveries that did not decode completely.
    pub recoveries_incomplete: AtomicU64,
    /// Total parallel subrounds across all recoveries.
    pub recovery_subrounds: AtomicU64,
    /// Total wall time spent inside recovery subrounds, in nanoseconds —
    /// with `recoveries`, the mean decode latency a reconcile pays.
    /// Kept alongside the `recovery_latency` histogram for backward
    /// compatibility (pre-v5 clients read only this sum).
    pub recovery_ns: AtomicU64,
    /// Replicated batches applied by this service when acting as a
    /// follower (deduplicated by sequence number).
    pub repl_applied: AtomicU64,
    /// Replicated batches skipped as duplicates or stale reorders.
    pub repl_skipped: AtomicU64,
    /// Replication frames that failed to decode (dropped; healed by
    /// anti-entropy).
    pub repl_decode_errors: AtomicU64,
    /// Anti-entropy repair rounds completed against the primary.
    pub anti_entropy_rounds: AtomicU64,
    /// Keys healed (inserted or deleted) by anti-entropy repair.
    pub anti_entropy_keys: AtomicU64,
    /// Replication frames rejected because they carried a stale epoch
    /// (a fenced ex-primary still streaming after a failover).
    pub repl_fenced: AtomicU64,
    /// Reshards committed (generation cutovers) on this service.
    pub reshards_completed: AtomicU64,
    /// Reshards aborted (migration dropped, old generation kept).
    pub reshards_aborted: AtomicU64,
    /// Currently open client connections (gauge; incremented at accept,
    /// decremented at close).
    pub conns_live: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub conns_accepted: AtomicU64,
    /// Connections refused because the connection cap was reached (the
    /// peer gets a protocol `Error` response, then a close).
    pub conns_refused: AtomicU64,
    /// Idle connections reaped by the server's idle-timeout sweep.
    pub conns_idle_reaped: AtomicU64,
    /// `accept(2)` failures (`EMFILE`/`ENFILE`, aborts, resets…). Each
    /// failure backs the accept loop off with a bounded delay instead of
    /// spinning hot.
    pub accept_errors: AtomicU64,
    /// Request handling latency (ns), one histogram per frame class
    /// (indexed by `REQUEST_CLASSES`). Recorded around the server's
    /// dispatch, so it covers decode-to-encode, not socket time.
    pub request_latency: [AtomicHistogram; REQUEST_CLASSES.len()],
    /// Time sealed batches wait in the bounded queue before a worker
    /// picks them up (ns).
    pub queue_wait: AtomicHistogram,
    /// Time a worker spends applying one batch to its shards (ns).
    pub batch_apply: AtomicHistogram,
    /// Per-recovery wall time (ns) — the distribution behind the
    /// `recovery_ns` lifetime sum.
    pub recovery_latency: AtomicHistogram,
    /// Per-subround trace of the most recent recovery: key counts (the
    /// paper's Table 5/6 trace) and wall times in ns, as parallel
    /// vectors under one lock so a concurrent snapshot can never observe
    /// counts from one recovery paired with times from another.
    last_trace: Mutex<(Vec<u64>, Vec<u64>)>,
}

impl Metrics {
    /// Record one finished recovery with its per-subround key counts and
    /// wall times (parallel slices of the same productive subrounds).
    pub fn record_recovery(
        &self,
        complete: bool,
        subrounds: u32,
        per_subround: &[u64],
        per_subround_ns: &[u64],
    ) {
        self.recoveries.fetch_add(1, Relaxed);
        if !complete {
            self.recoveries_incomplete.fetch_add(1, Relaxed);
        }
        self.recovery_subrounds.fetch_add(subrounds as u64, Relaxed);
        let total_ns = per_subround_ns.iter().sum::<u64>();
        self.recovery_ns.fetch_add(total_ns, Relaxed);
        self.recovery_latency.record(total_ns);
        // Overwrite in place: the trace buffers keep their capacity, so
        // steady-state recording never allocates.
        let mut t = self.last_trace.lock();
        t.0.clear();
        t.0.extend_from_slice(per_subround);
        t.1.clear();
        t.1.extend_from_slice(per_subround_ns);
    }

    /// Record one handled request of the given frame class (ns spent in
    /// dispatch). Out-of-range classes clamp to the last ("admin").
    pub fn record_request(&self, class: usize, ns: u64) {
        let i = class.min(REQUEST_CLASSES.len() - 1);
        if let Some(h) = self.request_latency.get(i) {
            h.record(ns);
        }
    }

    /// Plain-data copy of the global counters. Per-shard stats, the hub
    /// half of the replication stats, and the live reshard gauges are
    /// filled in by the service, which owns the shards, the replication
    /// hub, and the generation state; the follower-side replication
    /// counters and the reshard outcome counters live here and are
    /// merged in.
    pub fn snapshot(
        &self,
        shards: Vec<ShardStats>,
        hub: ReplicationStats,
        reshard: ReshardStats,
    ) -> MetricsSnapshot {
        let (trace, trace_ns) = self.last_trace.lock().clone();
        let replication = ReplicationStats {
            batches_applied: self.repl_applied.load(Relaxed),
            batches_skipped: self.repl_skipped.load(Relaxed),
            decode_errors: self.repl_decode_errors.load(Relaxed),
            anti_entropy_rounds: self.anti_entropy_rounds.load(Relaxed),
            anti_entropy_keys: self.anti_entropy_keys.load(Relaxed),
            fenced: self.repl_fenced.load(Relaxed),
            ..hub
        };
        let reshard = ReshardStats {
            completed: self.reshards_completed.load(Relaxed),
            aborted: self.reshards_aborted.load(Relaxed),
            ..reshard
        };
        MetricsSnapshot {
            batches_applied: self.batches_applied.load(Relaxed),
            ops_applied: self.ops_applied.load(Relaxed),
            queue_stalls: self.queue_stalls.load(Relaxed),
            recoveries: self.recoveries.load(Relaxed),
            recoveries_incomplete: self.recoveries_incomplete.load(Relaxed),
            recovery_subrounds: self.recovery_subrounds.load(Relaxed),
            recovery_ns: self.recovery_ns.load(Relaxed),
            last_recovery_trace: trace,
            last_recovery_trace_ns: trace_ns,
            shards,
            replication,
            reshard,
            request_latency: self.request_latency.iter().map(|h| h.snapshot()).collect(),
            queue_wait: self.queue_wait.snapshot(),
            batch_apply: self.batch_apply.snapshot(),
            recovery_latency: self.recovery_latency.snapshot(),
            connections: ConnectionStats {
                live: self.conns_live.load(Relaxed),
                accepted: self.conns_accepted.load(Relaxed),
                refused: self.conns_refused.load(Relaxed),
                idle_reaped: self.conns_idle_reaped.load(Relaxed),
                accept_errors: self.accept_errors.load(Relaxed),
            },
        }
    }
}

/// Server front-door state at snapshot time (protocol v7 block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Currently open client connections.
    pub live: u64,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections refused at the connection cap.
    pub refused: u64,
    /// Idle connections reaped by the timeout sweep.
    pub idle_reaped: u64,
    /// `accept(2)` failures, each absorbed by bounded backoff.
    pub accept_errors: u64,
}

/// Reshard state at snapshot time: the live migration gauges (phase,
/// generation, shard counts, keys moved, shards verified) come from the
/// service's generation state; the outcome counters (completed/aborted)
/// from the service's own metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReshardStats {
    /// Generation number of the serving shard set (0 at boot, +1 per
    /// committed reshard).
    pub generation: u64,
    /// True while a migration to a new generation is in flight.
    pub resharding: bool,
    /// Shard count of the serving generation.
    pub serving_shards: u32,
    /// Shard count of the migration target (equals `serving_shards` when
    /// not resharding).
    pub to_shards: u32,
    /// Keys re-keyed into the new generation by the in-flight (or most
    /// recent) migration.
    pub keys_moved: u64,
    /// New-generation shards whose contents have verified cell-identical
    /// to their projection (cutover-ready when all of them have).
    pub shards_verified: u32,
    /// Reshards committed over this service's lifetime.
    pub completed: u64,
    /// Reshards aborted over this service's lifetime.
    pub aborted: u64,
}

/// One follower's replication progress at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FollowerStats {
    /// Stable per-subscription ID (assigned at subscribe, never reused).
    pub id: u64,
    /// Highest sequence number published while this follower was live.
    pub published: u64,
    /// Highest sequence number this follower has acknowledged.
    pub acked: u64,
    /// `published − acked`, in sealed batches.
    pub lag: u64,
    /// True for a live subscription; false for a recently disconnected
    /// follower's final row (kept briefly so dashboards see the
    /// disconnect instead of a phantom frozen lag).
    pub alive: bool,
}

/// Replication state at snapshot time: the primary half (follower count,
/// sequence numbers, per-follower lag, stream drops) comes from the
/// replication hub; the follower half (applied/skipped batches, decode
/// errors, anti-entropy repairs) from the service's own counters. Lag is
/// measured in sealed batches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Live follower subscriptions.
    pub followers: u64,
    /// Highest batch sequence number sealed (and offered to followers).
    pub published_seq: u64,
    /// Lowest acknowledged sequence number across followers
    /// (= `published_seq` when there are no followers).
    pub acked_min: u64,
    /// Largest per-follower replication lag, in batches:
    /// `published_seq − acked`, maximized over followers.
    pub max_lag: u64,
    /// Batches written to follower connections.
    pub batches_streamed: u64,
    /// Batches dropped because a follower's stream queue overflowed
    /// (healed later by anti-entropy).
    pub batches_dropped: u64,
    /// Follower side: replicated batches applied (deduplicated).
    pub batches_applied: u64,
    /// Follower side: replicated batches skipped (duplicate or stale).
    pub batches_skipped: u64,
    /// Follower side: replication frames that failed to decode.
    pub decode_errors: u64,
    /// Follower side: anti-entropy repair rounds completed.
    pub anti_entropy_rounds: u64,
    /// Follower side: keys healed by anti-entropy repair.
    pub anti_entropy_keys: u64,
    /// One row per live follower (the distribution `max_lag` collapses).
    pub per_follower: Vec<FollowerStats>,
    /// Replication lag observed at each follower acknowledgment, in
    /// sealed batches — the lag *distribution* over time, where
    /// `per_follower` is only the instantaneous view.
    pub lag: HistogramSnapshot,
    /// Replication epoch this node is fenced at (protocol v6).
    pub epoch: u64,
    /// Replication frames rejected for carrying a stale epoch.
    pub fenced: u64,
    /// True iff this node currently believes it is the primary.
    pub leading: bool,
    /// This node's own replication lag as a serving replica, in sealed
    /// batches (0 when leading) — the gauge converged reads consult.
    pub read_lag: u64,
}

/// Per-shard counters at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Batches applied to this shard (the shard's epoch).
    pub epoch: u64,
    /// Keys inserted into this shard.
    pub inserts: u64,
    /// Keys deleted from this shard.
    pub deletes: u64,
}

/// Point-in-time copy of all service counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Batches drained from the ingest queue and applied.
    pub batches_applied: u64,
    /// Individual operations applied.
    pub ops_applied: u64,
    /// Producer stalls on the bounded queue (backpressure events).
    pub queue_stalls: u64,
    /// Recoveries run.
    pub recoveries: u64,
    /// Recoveries that did not decode completely.
    pub recoveries_incomplete: u64,
    /// Total subrounds across all recoveries.
    pub recovery_subrounds: u64,
    /// Total wall time spent in recovery subrounds, nanoseconds.
    pub recovery_ns: u64,
    /// Per-subround key counts of the most recent recovery.
    pub last_recovery_trace: Vec<u64>,
    /// Per-subround wall times (ns) of the most recent recovery, aligned
    /// with `last_recovery_trace`.
    pub last_recovery_trace_ns: Vec<u64>,
    /// One entry per shard (of the serving generation).
    pub shards: Vec<ShardStats>,
    /// Replication state (primary and follower halves).
    pub replication: ReplicationStats,
    /// Reshard state (live migration gauges + outcome counters).
    pub reshard: ReshardStats,
    /// Request latency distributions, aligned with `REQUEST_CLASSES`.
    pub request_latency: Vec<HistogramSnapshot>,
    /// Batch queue-wait distribution (ns).
    pub queue_wait: HistogramSnapshot,
    /// Batch apply-time distribution (ns).
    pub batch_apply: HistogramSnapshot,
    /// Per-recovery wall-time distribution (ns).
    pub recovery_latency: HistogramSnapshot,
    /// Server connection counters (protocol v7).
    pub connections: ConnectionStats,
}

impl MetricsSnapshot {
    /// Mean ops per applied batch (the batching layer's occupancy).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches_applied == 0 {
            return 0.0;
        }
        self.ops_applied as f64 / self.batches_applied as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = Metrics::default();
        m.batches_applied.store(3, Relaxed);
        m.ops_applied.store(12, Relaxed);
        m.record_recovery(true, 9, &[4, 2, 1], &[900, 300, 100]);
        m.record_recovery(false, 5, &[1], &[250]);
        m.repl_applied.store(6, Relaxed);
        m.anti_entropy_keys.store(17, Relaxed);
        m.reshards_completed.store(2, Relaxed);
        m.reshards_aborted.store(1, Relaxed);
        let hub = ReplicationStats {
            followers: 2,
            published_seq: 10,
            acked_min: 8,
            max_lag: 2,
            ..ReplicationStats::default()
        };
        let reshard = ReshardStats {
            generation: 3,
            resharding: true,
            serving_shards: 2,
            to_shards: 8,
            keys_moved: 41,
            shards_verified: 5,
            ..ReshardStats::default()
        };
        let s = m.snapshot(vec![ShardStats::default(); 2], hub, reshard);
        assert_eq!(s.batches_applied, 3);
        assert_eq!(s.ops_applied, 12);
        assert_eq!(s.recoveries, 2);
        assert_eq!(s.recoveries_incomplete, 1);
        assert_eq!(s.recovery_subrounds, 14);
        assert_eq!(s.recovery_ns, 900 + 300 + 100 + 250);
        assert_eq!(s.last_recovery_trace, vec![1]);
        assert_eq!(s.last_recovery_trace_ns, vec![250]);
        assert_eq!(s.shards.len(), 2);
        assert!((s.mean_batch_occupancy() - 4.0).abs() < 1e-12);
        // The replication block merges hub gauges with local counters.
        assert_eq!(s.replication.followers, 2);
        assert_eq!(s.replication.max_lag, 2);
        assert_eq!(s.replication.batches_applied, 6);
        assert_eq!(s.replication.anti_entropy_keys, 17);
        // The reshard block merges live gauges with outcome counters.
        assert!(s.reshard.resharding);
        assert_eq!(s.reshard.generation, 3);
        assert_eq!(s.reshard.to_shards, 8);
        assert_eq!(s.reshard.keys_moved, 41);
        assert_eq!(s.reshard.completed, 2);
        assert_eq!(s.reshard.aborted, 1);
        // The recovery histogram tracks both recoveries' total ns.
        assert_eq!(s.recovery_latency.count, 2);
        assert_eq!(s.recovery_latency.sum, 1300 + 250);
    }

    #[test]
    fn empty_snapshot_has_zero_occupancy() {
        let s = Metrics::default().snapshot(
            Vec::new(),
            ReplicationStats::default(),
            ReshardStats::default(),
        );
        assert_eq!(s.mean_batch_occupancy(), 0.0);
    }

    #[test]
    fn bucket_index_and_floor_are_inverse_bounds() {
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 100, 1000, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(bucket_floor(i) <= v, "floor({i}) > {v}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert!(bucket_floor(i + 1) > v, "next floor({}) <= {v}", i + 1);
            }
        }
        // Bucket floors are strictly increasing.
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_floor(i) > bucket_floor(i - 1));
        }
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = AtomicHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        let p50 = s.quantile(0.5);
        // p50 of 1..=1000 is 500; the half-octave bucket [384, 512)
        // contains it, so the readout is its floor.
        assert!((256..=512).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(0.0) <= p50);
        assert!(p50 <= s.quantile(1.0));
        assert!(s.quantile(1.0) <= 1000);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        let combined = AtomicHistogram::new();
        for v in [0u64, 1, 7, 7, 100, 4096] {
            a.record(v);
            combined.record(v);
        }
        for v in [3u64, 7, 65_535, u64::MAX] {
            b.record(v);
            combined.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), combined.snapshot());
    }

    #[test]
    fn snapshot_merge_matches_atomic_merge() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        for v in [1u64, 2, 300] {
            a.record(v);
        }
        for v in [2u64, 4_000_000] {
            b.record(v);
        }
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        a.merge_from(&b);
        assert_eq!(sa, a.snapshot());
    }
}

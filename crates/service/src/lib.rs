//! # peel-service — a sharded, batched set-reconciliation service on the
//! atomic IBLT
//!
//! The paper's headline application of parallel peeling is IBLT recovery
//! under concurrent atomic-XOR updates (Section 6). This crate wraps that
//! kernel — [`peel_iblt::AtomicIblt`] plus its subround parallel recovery
//! — in the layers a servable system needs:
//!
//! * **Shard router** ([`router`]): a keyspace partitioned across `S`
//!   independent IBLT shards, each with its own hash seed and a per-shard
//!   epoch counter. Routing is pure arithmetic over handshake values, so
//!   clients shard identically without coordination.
//! * **Batched ingest** ([`service`], [`queue`]): submitted insert/delete
//!   ops accumulate into fixed-size batches, flow through a bounded queue
//!   (backpressure), and are applied by a worker pool via the atomic
//!   `fetch_add`/`fetch_xor` paths — the paper's concurrent-update model,
//!   operated as a pipeline.
//! * **Epoch-based recovery scheduler** ([`service`]): reconciliation
//!   snapshots a shard (a gated cell copy, not a stop-the-world), subtracts
//!   the peer's digest, and runs subround parallel recovery on the frozen
//!   copy while ingest keeps flowing. Results carry the snapshot epoch.
//! * **Wire protocol** ([`wire`]): length-prefixed binary frames over
//!   `std::net` TCP — `Hello`/`Insert`/`Delete`/`Flush`/`Digest`/
//!   `Reconcile`/`Stats`/`Shutdown` — with total, panic-free decoding.
//! * **Server & client** ([`server`], [`client`]): a blocking TCP server
//!   (`peel-server` binary) and a typed client whose
//!   [`client::Client::reconcile`] runs the whole per-shard protocol.
//! * **Replication** ([`replication`], [`follower`], [`transport`]):
//!   primary→follower replication with the sealed-batch stream as the
//!   fast path (`Subscribe`/`Replicate`/`ReplicateAck` frames, teed off
//!   the ingest pipeline without blocking it) and periodic IBLT
//!   anti-entropy via the existing `Reconcile` machinery as the repair
//!   path — a follower that missed arbitrary frames provably converges.
//!   `peel-server --follow <addr>` runs a serving follower.
//! * **Live resharding** ([`service`], [`router`]): the shard count is
//!   a mutable property of a running service. A reshard re-keys the
//!   contents into a new *generation* of shards through the same
//!   decode/re-route machinery reconciliation uses: snapshot under the
//!   apply gates, dual-apply racing writes to both generations, verify
//!   each new shard cell-identical to its projection, then cut over
//!   atomically — driven over the wire by the protocol-v4
//!   `ReshardBegin`/`ReshardDigest`/`ReshardCommit`/`ReshardAbort`
//!   frames ([`client::Client::reshard`]). Followers adopt a primary's
//!   new generation automatically.
//! * **Metrics & observability** ([`metrics`], [`prom`], [`recorder`]):
//!   per-shard op counts and epochs, batch occupancy, queue stalls,
//!   per-follower replication lag, reshard phase/keys-moved/generation
//!   gauges, and the per-subround recovery traces the paper's
//!   Tables 5–6 analyze — observable over the wire via `Stats` — plus
//!   lock-free log-bucketed latency histograms (request by frame class,
//!   queue wait, batch apply, recovery, replication lag), structured
//!   tracing spans through every layer (`vendor/tracing`), Prometheus
//!   text exposition (the `MetricsText` frame and `peel-server
//!   --metrics-addr`), and a seqlock-ring flight recorder dumped by the
//!   `DebugDump` frame and the server's panic hook.
//!
//! ## Why the table stays small
//!
//! A shard's IBLT is sized for the expected *difference* against a peer,
//! not for the ingested volume: inserting a million keys into a
//! 2 000-cell shard is fine, because reconciliation subtracts a peer
//! digest that cancels everything common before recovery runs. That is
//! the Eppstein et al. O(d) set-reconciliation guarantee, served.
//!
//! ## Example (in-process; see `examples/reconcile_service.rs` for the
//! two-process version)
//!
//! ```
//! use peel_service::server::Server;
//! use peel_service::client::Client;
//! use peel_service::service::ServiceConfig;
//!
//! let server = Server::bind("127.0.0.1:0", ServiceConfig::for_diff_budget(4, 256)).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! // Server holds keys 0..1000 and 5000; client holds 0..1000 and 6000.
//! let mut server_keys: Vec<u64> = (0..1000).collect();
//! server_keys.push(5000);
//! client.insert(&server_keys).unwrap();
//! client.flush().unwrap();
//!
//! let mut client_keys: Vec<u64> = (0..1000).collect();
//! client_keys.push(6000);
//! let diff = client.reconcile(&client_keys).unwrap();
//! assert!(diff.complete);
//! assert_eq!(diff.only_server, vec![5000]);
//! assert_eq!(diff.only_client, vec![6000]);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod follower;
// The lock helpers and the sync indirection are implementation details,
// but the loom model suites (tests/loom_lock.rs and friends) need to
// drive them directly — so under the model-checking cfg they are public.
#[cfg(loom)]
pub mod lock;
#[cfg(not(loom))]
mod lock;
pub mod metrics;
pub mod prom;
pub mod queue;
pub mod reactor;
pub mod recorder;
pub mod replication;
pub mod router;
pub mod server;
pub mod service;
#[cfg(loom)]
pub mod sync;
#[cfg(not(loom))]
pub(crate) mod sync;
pub mod transport;
pub mod wire;

pub use client::{read_from_mesh, Client, ReadOutcome, ServiceDiff};
pub use follower::{
    anti_entropy_round, apply_repairs, collect_repairs, elect, Candidate, Follower, FollowerConfig,
};
pub use metrics::{
    AtomicHistogram, FollowerStats, HistogramSnapshot, Metrics, MetricsSnapshot, ReplicationStats,
    ReshardStats, ShardStats,
};
pub use reactor::ReactorConfig;
pub use recorder::{FlightRecord, FlightRecorder};
pub use replication::{
    apply_replication_stream, stream_to_follower, ReplicationHub, StreamConfig, StreamEnd,
    StreamItem, Subscription,
};
pub use router::{build_shard_digests, shard_iblt_config, GenerationRouter, ShardRouter};
pub use server::{handle_request, BlockingServer, Server};
pub use service::{PeelService, ServiceConfig, ServiceError, MAX_RESHARD_SHARDS};
pub use transport::{
    sim_duplex, FaultPlan, FramedTcp, RecvOutcome, SimDuplex, SimTransport, Transport,
};
pub use wire::{HelloInfo, ReplicaStatus, Request, Response, ShardDiff, WireError};

//! Prometheus text-exposition rendering of the service metrics.
//!
//! [`render`] turns a [`MetricsSnapshot`] into the plain-text format
//! scraped by Prometheus-compatible collectors. The same body is served
//! two ways: as the `MetricsText` wire frame, and over plain HTTP by
//! the optional `peel-server --metrics-addr` listener.
//!
//! Every exported family is declared in [`REGISTRY`] with its type and
//! help string. `cargo xtask lint` cross-checks the registry against
//! the metric table in README.md's "Observability" section, so a
//! metric cannot ship unrenamed, undocumented, or undescribed.

use std::fmt::Write as _;

use crate::metrics::{bucket_floor, HistogramSnapshot, MetricsSnapshot, REQUEST_CLASSES};

/// Every exported metric family: `(name, type, help)`. The xtask
/// metrics-registry pass parses this table textually — keep every
/// entry a plain string-literal tuple (no consts, no concatenation).
pub const REGISTRY: &[(&str, &str, &str)] = &[
    (
        "peel_batches_applied_total",
        "counter",
        "Batches drained from the ingest queue and applied",
    ),
    (
        "peel_ops_applied_total",
        "counter",
        "Individual operations applied (inserts + deletes)",
    ),
    (
        "peel_queue_stalls_total",
        "counter",
        "Producer stalls on the full bounded ingest queue",
    ),
    (
        "peel_recoveries_total",
        "counter",
        "IBLT recoveries (reconciliations) run",
    ),
    (
        "peel_recoveries_incomplete_total",
        "counter",
        "Recoveries that did not decode completely",
    ),
    (
        "peel_recovery_subrounds_total",
        "counter",
        "Parallel subrounds across all recoveries",
    ),
    (
        "peel_recovery_ns_total",
        "counter",
        "Wall time inside recovery subrounds, nanoseconds",
    ),
    (
        "peel_shard_epoch",
        "gauge",
        "Batches applied to the shard (its epoch)",
    ),
    (
        "peel_shard_inserts_total",
        "counter",
        "Keys inserted into the shard",
    ),
    (
        "peel_shard_deletes_total",
        "counter",
        "Keys deleted from the shard",
    ),
    (
        "peel_replication_followers",
        "gauge",
        "Live follower subscriptions",
    ),
    (
        "peel_replication_epoch",
        "gauge",
        "Replication epoch this node is fenced at",
    ),
    (
        "peel_replication_fenced_total",
        "counter",
        "Replication frames refused for carrying a stale epoch",
    ),
    (
        "peel_replica_leading",
        "gauge",
        "1 while this node believes it is the primary",
    ),
    (
        "peel_replica_read_lag_batches",
        "gauge",
        "This replica's own serving lag in sealed batches (0 when leading)",
    ),
    (
        "peel_replication_published_seq",
        "gauge",
        "Highest sealed batch sequence number",
    ),
    (
        "peel_replication_acked_min",
        "gauge",
        "Lowest acknowledged sequence across followers",
    ),
    (
        "peel_replication_max_lag",
        "gauge",
        "Largest per-follower replication lag, in batches",
    ),
    (
        "peel_replication_batches_streamed_total",
        "counter",
        "Batches written to follower connections",
    ),
    (
        "peel_replication_batches_dropped_total",
        "counter",
        "Batches dropped on follower queue overflow",
    ),
    (
        "peel_replication_batches_applied_total",
        "counter",
        "Follower side: replicated batches applied",
    ),
    (
        "peel_replication_batches_skipped_total",
        "counter",
        "Follower side: duplicate or stale batches skipped",
    ),
    (
        "peel_replication_decode_errors_total",
        "counter",
        "Follower side: replication frames that failed to decode",
    ),
    (
        "peel_replication_anti_entropy_rounds_total",
        "counter",
        "Follower side: anti-entropy repair rounds completed",
    ),
    (
        "peel_replication_anti_entropy_keys_total",
        "counter",
        "Follower side: keys healed by anti-entropy repair",
    ),
    (
        "peel_replication_follower_published",
        "gauge",
        "Per follower: highest sequence published while it was live",
    ),
    (
        "peel_replication_follower_acked",
        "gauge",
        "Per follower: highest sequence acknowledged",
    ),
    (
        "peel_replication_follower_lag",
        "gauge",
        "Per follower: published minus acked, in batches",
    ),
    (
        "peel_replication_follower_alive",
        "gauge",
        "Per follower: 1 while connected, 0 on a disconnected final row",
    ),
    (
        "peel_replication_lag_batches",
        "histogram",
        "Replication lag observed at each follower ack, in batches",
    ),
    (
        "peel_replication_lag_batches_quantile",
        "gauge",
        "Replication-lag quantile readout (labelled by q)",
    ),
    (
        "peel_reshard_generation",
        "gauge",
        "Generation number of the serving shard set",
    ),
    (
        "peel_reshard_active",
        "gauge",
        "1 while a migration to a new generation is in flight",
    ),
    (
        "peel_reshard_serving_shards",
        "gauge",
        "Shard count of the serving generation",
    ),
    (
        "peel_reshard_target_shards",
        "gauge",
        "Shard count of the migration target",
    ),
    (
        "peel_reshard_keys_moved",
        "gauge",
        "Keys re-keyed by the in-flight or most recent migration",
    ),
    (
        "peel_reshard_shards_verified",
        "gauge",
        "New-generation shards verified cell-identical",
    ),
    (
        "peel_reshards_completed_total",
        "counter",
        "Reshards committed (generation cutovers)",
    ),
    (
        "peel_reshards_aborted_total",
        "counter",
        "Reshards aborted (old generation kept)",
    ),
    (
        "peel_request_latency_ns",
        "histogram",
        "Request dispatch latency by frame class, nanoseconds",
    ),
    (
        "peel_request_latency_ns_quantile",
        "gauge",
        "Request-latency quantile readout (labelled by class and q)",
    ),
    (
        "peel_queue_wait_ns",
        "histogram",
        "Time sealed batches wait in the ingest queue, nanoseconds",
    ),
    (
        "peel_queue_wait_ns_quantile",
        "gauge",
        "Queue-wait quantile readout (labelled by q)",
    ),
    (
        "peel_batch_apply_ns",
        "histogram",
        "Time a worker spends applying one batch, nanoseconds",
    ),
    (
        "peel_batch_apply_ns_quantile",
        "gauge",
        "Batch-apply quantile readout (labelled by q)",
    ),
    (
        "peel_recovery_latency_ns",
        "histogram",
        "Per-recovery wall time, nanoseconds",
    ),
    (
        "peel_recovery_latency_ns_quantile",
        "gauge",
        "Recovery-latency quantile readout (labelled by q)",
    ),
    (
        "peel_connections_live",
        "gauge",
        "Client connections currently open on the server",
    ),
    (
        "peel_connections_accepted_total",
        "counter",
        "Client connections accepted since start",
    ),
    (
        "peel_connections_refused_total",
        "counter",
        "Connections refused at the connection cap",
    ),
    (
        "peel_connections_idle_reaped_total",
        "counter",
        "Connections closed by the idle-timeout reaper",
    ),
    (
        "peel_accept_errors_total",
        "counter",
        "Persistent accept() failures (EMFILE and friends) that triggered backoff",
    ),
];

/// The quantiles rendered for each histogram's `_quantile` companion.
const QUANTILES: &[(&str, f64)] = &[("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)];

fn header(out: &mut String, name: &str) {
    if let Some((_, ty, help)) = REGISTRY.iter().find(|(n, _, _)| *n == name) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {ty}");
    }
}

fn scalar(out: &mut String, name: &str, value: u64) {
    header(out, name);
    let _ = writeln!(out, "{name} {value}");
}

/// Render one histogram family: cumulative `_bucket{{le=…}}` lines,
/// `_sum`, `_count`, and a `_quantile` companion gauge so a plain
/// scrape shows latency percentiles without server-side math.
fn histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    header(out, name);
    let mut cum = 0u64;
    for &(i, c) in &h.buckets {
        cum = cum.saturating_add(c);
        let le = bucket_floor(i as usize + 1);
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count);
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum);
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
    }
    let qname = format!("{name}_quantile");
    header(out, &qname);
    for (label, q) in QUANTILES {
        let _ = writeln!(
            out,
            "{qname}{{{labels}{sep}q=\"{label}\"}} {}",
            h.quantile(*q)
        );
    }
}

/// Render the snapshot in Prometheus text exposition format.
pub fn render(s: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(8192);
    scalar(&mut out, "peel_batches_applied_total", s.batches_applied);
    scalar(&mut out, "peel_ops_applied_total", s.ops_applied);
    scalar(&mut out, "peel_queue_stalls_total", s.queue_stalls);
    scalar(&mut out, "peel_recoveries_total", s.recoveries);
    scalar(
        &mut out,
        "peel_recoveries_incomplete_total",
        s.recoveries_incomplete,
    );
    scalar(
        &mut out,
        "peel_recovery_subrounds_total",
        s.recovery_subrounds,
    );
    scalar(&mut out, "peel_recovery_ns_total", s.recovery_ns);

    let c = &s.connections;
    scalar(&mut out, "peel_connections_live", c.live);
    scalar(&mut out, "peel_connections_accepted_total", c.accepted);
    scalar(&mut out, "peel_connections_refused_total", c.refused);
    scalar(
        &mut out,
        "peel_connections_idle_reaped_total",
        c.idle_reaped,
    );
    scalar(&mut out, "peel_accept_errors_total", c.accept_errors);

    for (name, pick) in [
        ("peel_shard_epoch", 0usize),
        ("peel_shard_inserts_total", 1),
        ("peel_shard_deletes_total", 2),
    ] {
        header(&mut out, name);
        for (i, sh) in s.shards.iter().enumerate() {
            let v = match pick {
                0 => sh.epoch,
                1 => sh.inserts,
                _ => sh.deletes,
            };
            let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {v}");
        }
    }

    let r = &s.replication;
    scalar(&mut out, "peel_replication_followers", r.followers);
    scalar(&mut out, "peel_replication_epoch", r.epoch);
    scalar(&mut out, "peel_replication_fenced_total", r.fenced);
    scalar(&mut out, "peel_replica_leading", r.leading as u64);
    scalar(&mut out, "peel_replica_read_lag_batches", r.read_lag);
    scalar(&mut out, "peel_replication_published_seq", r.published_seq);
    scalar(&mut out, "peel_replication_acked_min", r.acked_min);
    scalar(&mut out, "peel_replication_max_lag", r.max_lag);
    scalar(
        &mut out,
        "peel_replication_batches_streamed_total",
        r.batches_streamed,
    );
    scalar(
        &mut out,
        "peel_replication_batches_dropped_total",
        r.batches_dropped,
    );
    scalar(
        &mut out,
        "peel_replication_batches_applied_total",
        r.batches_applied,
    );
    scalar(
        &mut out,
        "peel_replication_batches_skipped_total",
        r.batches_skipped,
    );
    scalar(
        &mut out,
        "peel_replication_decode_errors_total",
        r.decode_errors,
    );
    scalar(
        &mut out,
        "peel_replication_anti_entropy_rounds_total",
        r.anti_entropy_rounds,
    );
    scalar(
        &mut out,
        "peel_replication_anti_entropy_keys_total",
        r.anti_entropy_keys,
    );
    for (name, pick) in [
        ("peel_replication_follower_published", 0usize),
        ("peel_replication_follower_acked", 1),
        ("peel_replication_follower_lag", 2),
        ("peel_replication_follower_alive", 3),
    ] {
        header(&mut out, name);
        for f in &r.per_follower {
            let v = match pick {
                0 => f.published,
                1 => f.acked,
                2 => f.lag,
                _ => f.alive as u64,
            };
            let _ = writeln!(out, "{name}{{follower=\"{}\"}} {v}", f.id);
        }
    }
    histogram(&mut out, "peel_replication_lag_batches", "", &r.lag);

    let g = &s.reshard;
    scalar(&mut out, "peel_reshard_generation", g.generation);
    scalar(&mut out, "peel_reshard_active", g.resharding as u64);
    scalar(
        &mut out,
        "peel_reshard_serving_shards",
        g.serving_shards as u64,
    );
    scalar(&mut out, "peel_reshard_target_shards", g.to_shards as u64);
    scalar(&mut out, "peel_reshard_keys_moved", g.keys_moved);
    scalar(
        &mut out,
        "peel_reshard_shards_verified",
        g.shards_verified as u64,
    );
    scalar(&mut out, "peel_reshards_completed_total", g.completed);
    scalar(&mut out, "peel_reshards_aborted_total", g.aborted);

    // Per-class request latency: one histogram family, class label.
    // Emit the HELP/TYPE headers once, then every class's series.
    header(&mut out, "peel_request_latency_ns");
    let mut quantile_block = String::new();
    header(&mut quantile_block, "peel_request_latency_ns_quantile");
    for (class, h) in REQUEST_CLASSES.iter().zip(s.request_latency.iter()) {
        let labels = format!("class=\"{class}\"");
        let mut cum = 0u64;
        for &(i, c) in &h.buckets {
            cum = cum.saturating_add(c);
            let le = bucket_floor(i as usize + 1);
            let _ = writeln!(
                out,
                "peel_request_latency_ns_bucket{{{labels},le=\"{le}\"}} {cum}"
            );
        }
        let _ = writeln!(
            out,
            "peel_request_latency_ns_bucket{{{labels},le=\"+Inf\"}} {}",
            h.count
        );
        let _ = writeln!(out, "peel_request_latency_ns_sum{{{labels}}} {}", h.sum);
        let _ = writeln!(out, "peel_request_latency_ns_count{{{labels}}} {}", h.count);
        for (label, q) in QUANTILES {
            let _ = writeln!(
                quantile_block,
                "peel_request_latency_ns_quantile{{{labels},q=\"{label}\"}} {}",
                h.quantile(*q)
            );
        }
    }
    out.push_str(&quantile_block);

    histogram(&mut out, "peel_queue_wait_ns", "", &s.queue_wait);
    histogram(&mut out, "peel_batch_apply_ns", "", &s.batch_apply);
    histogram(
        &mut out,
        "peel_recovery_latency_ns",
        "",
        &s.recovery_latency,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FollowerStats, Metrics, ReplicationStats, ReshardStats, ShardStats};
    // ordering: Relaxed — single-threaded test fixture setup; no
    // cross-thread publication happens in these tests.
    use std::sync::atomic::Ordering::Relaxed;

    fn sample() -> MetricsSnapshot {
        let m = Metrics::default();
        m.batches_applied.store(5, Relaxed);
        m.record_recovery(true, 3, &[2, 1], &[600, 400]);
        m.record_request(1, 1200);
        m.record_request(1, 90_000);
        m.queue_wait.record(450);
        m.batch_apply.record(7_000);
        let mut hub = ReplicationStats {
            followers: 1,
            published_seq: 9,
            acked_min: 7,
            max_lag: 2,
            ..ReplicationStats::default()
        };
        hub.per_follower.push(FollowerStats {
            id: 1,
            published: 9,
            acked: 7,
            lag: 2,
            alive: true,
        });
        hub.lag.merge(&{
            let h = crate::metrics::AtomicHistogram::new();
            h.record(2);
            h.record(0);
            h.snapshot()
        });
        m.snapshot(vec![ShardStats::default(); 2], hub, ReshardStats::default())
    }

    #[test]
    fn every_registry_family_is_rendered() {
        let body = render(&sample());
        for (name, ty, _) in REGISTRY {
            assert!(
                body.contains(&format!("# TYPE {name} {ty}")),
                "missing TYPE line for {name}"
            );
        }
    }

    #[test]
    fn histograms_render_buckets_and_quantiles() {
        let body = render(&sample());
        assert!(body.contains("peel_request_latency_ns_bucket{class=\"ingest\",le=\""));
        assert!(body.contains("peel_request_latency_ns_count{class=\"ingest\"} 2"));
        assert!(body.contains("peel_request_latency_ns_quantile{class=\"ingest\",q=\"0.5\"}"));
        assert!(body.contains("peel_replication_lag_batches_quantile{q=\"0.99\"}"));
        assert!(body.contains("peel_replication_lag_batches_count 2"));
        assert!(body.contains("peel_replication_follower_lag{follower=\"1\"} 2"));
        assert!(body.contains("peel_replication_follower_alive{follower=\"1\"} 1"));
        assert!(body.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn registry_names_are_unique_and_prefixed() {
        let mut seen = std::collections::HashSet::new();
        for (name, ty, help) in REGISTRY {
            assert!(seen.insert(name), "duplicate registry entry {name}");
            assert!(name.starts_with("peel_"), "{name} lacks the peel_ prefix");
            assert!(!help.is_empty(), "{name} has an empty help string");
            assert!(matches!(*ty, "counter" | "gauge" | "histogram"));
        }
    }
}

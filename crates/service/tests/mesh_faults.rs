//! Seeded multi-node mesh scenarios: partition, heal, primary kill,
//! election, fence, converge.
//!
//! Each scenario builds an in-process mesh (one primary, N-1 followers,
//! 3- and 5-node shapes) and drives the real replication machinery over
//! scripted transports: sealed batches are recorded as v6 `Replicate`
//! frames, a seeded [`FaultPlan`] mangles each follower's copy of the
//! stream independently, odd seeds fully partition one follower, and
//! anti-entropy repairs the rest. Then the primary "dies": the
//! survivors run the deterministic election ([`elect`]), the winner
//! bumps the epoch, the losers adopt the fence, and a stale-epoch frame
//! from the deposed ex-primary must be refused outright. Every scenario
//! must end with one epoch, one leader, and every survivor cell-identical
//! to a from-scratch build of the surviving key set.

use std::sync::atomic::{AtomicBool, AtomicU64};

use peel_service::queue::Op;
use peel_service::wire::{decode_request, encode_replicate, Request};
use peel_service::{
    apply_replication_stream, elect, Candidate, FaultPlan, PeelService, ServiceConfig,
    SimTransport, StreamItem,
};

fn keys(n: u64, tag: u64) -> Vec<u64> {
    (0..n)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

fn cfg(node_id: u64) -> ServiceConfig {
    ServiceConfig {
        batch_size: 64,
        queue_depth: 8,
        workers: 2,
        // Room for the whole workload: the only stream losses are the
        // ones the fault plan (or the partition) injects.
        repl_queue_depth: 4096,
        node_id,
        ..ServiceConfig::for_diff_budget(4, 2_048)
    }
}

/// True iff every shard's frozen cell array is identical on both sides.
fn digests_identical(a: &PeelService, b: &PeelService) -> bool {
    (0..a.config().shards).all(|shard| {
        let (_ea, da) = a.snapshot_shard(shard).unwrap();
        let (_eb, db) = b.snapshot_shard(shard).unwrap();
        da == db
    })
}

/// One in-process anti-entropy round, exactly as the TCP repair driver
/// runs it: reconcile every follower shard against the source and apply
/// the decoded difference.
fn anti_entropy(source: &PeelService, follower: &PeelService) {
    for shard in 0..follower.config().shards {
        let (_epoch, snap) = follower.snapshot_shard(shard).unwrap();
        let diff = source.reconcile_shard(shard, &snap).unwrap();
        if !diff.only_local.is_empty() {
            follower.insert(&diff.only_local);
        }
        if !diff.only_remote.is_empty() {
            follower.delete(&diff.only_remote);
        }
    }
    follower.flush();
}

/// Repair `follower` from `source` until cell-identical, within the
/// bounded round budget the convergence proof allows.
fn heal(source: &PeelService, follower: &PeelService, what: &str) {
    let mut rounds = 0;
    while !digests_identical(source, follower) {
        assert!(rounds < 16, "{what}: no convergence after {rounds} rounds");
        anti_entropy(source, follower);
        rounds += 1;
    }
}

/// One full mesh scenario for a (seed, size) pair; see the module doc.
fn run_mesh(seed: u64, n: usize) {
    let tag = format!("seed {seed}, {n}-node mesh");
    let nodes: Vec<PeelService> = (0..n).map(|i| PeelService::start(cfg(i as u64))).collect();
    for follower in &nodes[1..] {
        follower.set_leading(false);
    }
    let subs: Vec<_> = (1..n).map(|_| nodes[0].replication().subscribe()).collect();

    // A per-seed workload with churn in both directions.
    let ks = keys(1_200, 0xae5b_0000 | seed);
    nodes[0].insert(&ks);
    nodes[0].delete(&ks[..150]);
    nodes[0].flush();

    // Odd seeds fully partition follower 1: none of its stream arrives.
    let partitioned = (seed % 2 == 1).then_some(1usize);
    let lasts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    for (i, sub) in subs.iter().enumerate() {
        let node = i + 1;
        let mut frames = Vec::new();
        while let Some(item) = sub.try_recv() {
            if let StreamItem::Batch(seq, ops) = item {
                frames.push(encode_replicate(sub.hub_epoch(), seq, &ops));
            }
        }
        assert!(frames.len() >= 15, "{tag}: workload too small");
        if partitioned == Some(node) {
            continue;
        }
        // Each follower's link fails in its own seeded way.
        let plan = FaultPlan::for_seed(seed.wrapping_mul(31).wrapping_add(node as u64));
        let stop = AtomicBool::new(false);
        let mut transport = SimTransport::new(plan.mangle(&frames));
        apply_replication_stream(&mut transport, &nodes[node], &stop, &lasts[node])
            .expect("scripted transport never errors");
        nodes[node].flush();
    }

    // Anti-entropy heals every *connected* follower while the primary
    // is still alive; the partitioned one stays dark and divergent.
    for node in 1..n {
        if partitioned != Some(node) {
            heal(&nodes[0], &nodes[node], &tag);
        }
    }
    if let Some(p) = partitioned {
        assert!(
            !digests_identical(&nodes[0], &nodes[p]),
            "{tag}: the partition must actually have cost the follower data"
        );
    }

    // The primary dies. Survivors probe each other and elect: the most
    // caught-up candidate wins, lowest node id breaking ties.
    let survivors: Vec<usize> = (1..n).collect();
    let candidates: Vec<Candidate> = survivors
        .iter()
        .map(|&i| {
            let st = nodes[i].replica_status();
            Candidate {
                node_id: st.node_id,
                last_applied: st.last_applied,
                epoch: st.epoch,
                leading: st.leading,
            }
        })
        .collect();
    let winner = survivors[elect(&candidates).expect("non-empty candidate set")];
    if let Some(p) = partitioned {
        assert_ne!(winner, p, "{tag}: a partitioned laggard must not win");
    }

    // The winner fences the old regime out with an epoch bump; the
    // losers adopt the fence (as they would from the winner's Hello).
    let old_epoch = candidates.iter().map(|c| c.epoch).max().unwrap();
    let new_epoch = nodes[winner].fence_epoch(old_epoch + 1);
    nodes[winner].set_leading(true);
    for &i in &survivors {
        if i != winner {
            nodes[i].fence_epoch(new_epoch);
        }
    }

    // Fencing: a stale-epoch frame from the deposed ex-primary — with
    // garbage keys that would corrupt the digests — is refused outright,
    // and the ack tells the sender which epoch deposed it.
    let garbage: Vec<Op> = (0..8)
        .map(|i| Op {
            key: 0xdead_beef + i,
            dir: 1,
        })
        .collect();
    let before: Vec<_> = (0..nodes[winner].config().shards)
        .map(|s| nodes[winner].snapshot_shard(s).unwrap().1)
        .collect();
    let stop = AtomicBool::new(false);
    let stale = AtomicU64::new(0);
    let mut transport = SimTransport::new(vec![encode_replicate(0, u64::MAX, &garbage)]);
    let out = apply_replication_stream(&mut transport, &nodes[winner], &stop, &stale).unwrap();
    nodes[winner].flush();
    assert_eq!(out.fenced, 1, "{tag}: stale frame must be counted fenced");
    assert_eq!(out.applied, 0, "{tag}: stale frame must not apply");
    match decode_request(&transport.sent[0]) {
        Ok(Request::ReplicateAck { epoch, .. }) => {
            assert_eq!(
                epoch, new_epoch,
                "{tag}: the deposing ack carries the fence"
            )
        }
        other => panic!("{tag}: expected a deposing ack, got {other:?}"),
    }
    let after: Vec<_> = (0..nodes[winner].config().shards)
        .map(|s| nodes[winner].snapshot_shard(s).unwrap().1)
        .collect();
    assert_eq!(
        before, after,
        "{tag}: fenced garbage must not touch the cells"
    );

    // Heal the mesh from its new primary — including the partitioned
    // follower, whose first contact with the new regime this is.
    for &i in &survivors {
        if i != winner {
            heal(&nodes[winner], &nodes[i], &tag);
        }
    }

    // End state: one epoch, one leader, and every survivor
    // cell-identical to a from-scratch build of the surviving keys.
    for &i in &survivors {
        assert_eq!(nodes[i].repl_epoch(), new_epoch, "{tag}: split epoch");
    }
    let leaders: Vec<usize> = survivors
        .iter()
        .copied()
        .filter(|&i| nodes[i].is_leading())
        .collect();
    assert_eq!(leaders, vec![winner], "{tag}: exactly one leader");
    let fresh = PeelService::start(cfg(u64::MAX));
    fresh.insert(&ks[150..]);
    fresh.flush();
    for &i in &survivors {
        assert!(
            digests_identical(&fresh, &nodes[i]),
            "{tag}: node {i} diverges from the from-scratch build"
        );
    }
}

#[test]
fn three_node_meshes_converge_to_one_fenced_epoch() {
    for seed in 0..8 {
        run_mesh(seed, 3);
    }
}

#[test]
fn five_node_meshes_converge_to_one_fenced_epoch() {
    for seed in 0..8 {
        run_mesh(seed, 5);
    }
}

//! End-to-end exercises of the TCP server/client pair on loopback:
//! the full request surface, error paths, and clean shutdown.

use std::sync::Arc;
use std::time::{Duration, Instant};

use peel_iblt::{Iblt, IbltConfig};
use peel_service::{
    Client, Follower, FollowerConfig, PeelService, Server, ServiceConfig, WireError,
};

fn test_cfg() -> ServiceConfig {
    ServiceConfig {
        batch_size: 128,
        workers: 2,
        ..ServiceConfig::for_diff_budget(4, 256)
    }
}

#[test]
fn full_request_surface() {
    let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
    let mut c = Client::connect_retry(server.local_addr(), Duration::from_secs(5)).unwrap();

    let hello = c.hello().unwrap();
    assert_eq!(hello.shards, 4);

    let keys: Vec<u64> = (0..500u64).map(|i| i * 7 + 3).collect();
    assert_eq!(c.insert(&keys).unwrap(), 500);
    assert_eq!(c.delete(&keys[..100]).unwrap(), 100);
    c.flush().unwrap();

    // Digest: the four shard snapshots decode to the net content.
    let mut total = 0;
    for shard in 0..4 {
        let (epoch, iblt) = c.digest(shard).unwrap();
        assert!(epoch > 0);
        let rec = iblt.recover();
        assert!(rec.complete);
        assert!(rec.negative.is_empty());
        total += rec.positive.len();
    }
    assert_eq!(total, 400);

    // Reconcile against our own view of the key set: empty difference.
    let diff = c.reconcile(&keys[100..]).unwrap();
    assert!(diff.complete);
    assert!(diff.only_server.is_empty());
    assert!(diff.only_client.is_empty());
    assert_eq!(diff.shards.len(), 4);

    let stats = c.stats().unwrap();
    assert_eq!(stats.ops_applied, 600);
    assert_eq!(stats.shards.len(), 4);
    assert_eq!(stats.recoveries, 4);
    assert!(stats.mean_batch_occupancy() > 0.0);
}

#[test]
fn service_errors_come_back_as_remote_errors() {
    let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();

    // Shard out of range.
    match c.digest(99) {
        Err(WireError::Remote(msg)) => assert!(msg.contains("out of range"), "{msg}"),
        other => panic!("expected remote error, got {other:?}"),
    }
    // Digest with the wrong config.
    let bogus = Iblt::new(IbltConfig::new(3, 17, 1));
    match c.reconcile_shard(0, &bogus) {
        Err(WireError::Remote(msg)) => assert!(msg.contains("does not match"), "{msg}"),
        other => panic!("expected remote error, got {other:?}"),
    }
    // The connection survives errors: a normal call still works.
    assert!(c.hello().is_ok());
}

#[test]
fn shutdown_request_stops_the_server() {
    let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.insert(&[1, 2, 3]).unwrap();
    c.shutdown_server().unwrap();
    // wait() returns because the client's Shutdown fired.
    server.wait();
    // The pending partial batch was flushed during shutdown.
    drop(c);
}

#[test]
fn closed_connections_are_reaped() {
    let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
    let addr = server.local_addr();
    for _ in 0..20 {
        let mut c = Client::connect(addr).unwrap();
        c.hello().unwrap();
        drop(c);
    }
    // Handlers remove their connection entry on exit; give them a beat.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.live_connections() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "{} connections still tracked after close",
            server.live_connections()
        );
        std::thread::yield_now();
    }
}

#[test]
fn follower_driver_replicates_over_tcp() {
    // Budget headroom over the planned churn so anti-entropy could heal
    // even a fully missed stream window.
    let cfg = ServiceConfig {
        batch_size: 128,
        workers: 2,
        ..ServiceConfig::for_diff_budget(4, 4_000)
    };
    let primary = Server::bind("127.0.0.1:0", cfg).unwrap();
    let fsvc = Arc::new(PeelService::start(cfg));
    let mut follower = Follower::start(
        Arc::clone(&fsvc),
        primary.local_addr(),
        FollowerConfig {
            anti_entropy_interval: Duration::from_millis(50),
            ..FollowerConfig::default()
        },
    );

    let mut c = Client::connect_retry(primary.local_addr(), Duration::from_secs(5)).unwrap();
    // Let the stream subscription attach before traffic flows, so the
    // fast path (not just repair) is exercised.
    let deadline = Instant::now() + Duration::from_secs(10);
    while c.stats().unwrap().replication.followers == 0 {
        assert!(Instant::now() < deadline, "follower never subscribed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let keys: Vec<u64> = (0..2_000u64)
        .map(|i| i.wrapping_mul(0x9e37) ^ 0xf0)
        .collect();
    c.insert(&keys).unwrap();
    c.delete(&keys[..250]).unwrap();
    c.flush().unwrap();

    // The follower converges to cell-identical shard digests (stream
    // fast path, with anti-entropy mopping up whatever raced).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let identical = (0..4u32).all(|shard| {
            let (_e, p) = primary.service().snapshot_shard(shard).unwrap();
            let (_e, f) = fsvc.snapshot_shard(shard).unwrap();
            p == f
        });
        if identical {
            break;
        }
        assert!(Instant::now() < deadline, "follower never converged");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The primary sees its follower; the follower accounted the stream.
    let stats = c.stats().unwrap();
    assert_eq!(stats.replication.followers, 1);
    assert!(stats.replication.batches_streamed > 0);
    let fm = fsvc.metrics();
    assert!(
        fm.replication.batches_applied > 0,
        "stream applied nothing; convergence came only from repair"
    );
    follower.stop();
}

#[test]
fn reshard_round_trips_over_tcp() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig {
            batch_size: 128,
            workers: 2,
            ..ServiceConfig::for_diff_budget(1, 2_048)
        },
    )
    .unwrap();
    let mut c = Client::connect_retry(server.local_addr(), Duration::from_secs(5)).unwrap();
    assert_eq!(c.hello().unwrap().shards, 1);
    let keys: Vec<u64> = (0..800u64).map(|i| i * 11 + 5).collect();
    c.insert(&keys).unwrap();
    c.flush().unwrap();

    // Begin, inspect a sparse new-generation digest, commit.
    let status = c.reshard_begin(4).unwrap();
    assert!(status.resharding);
    assert_eq!(status.keys_moved, 800);
    let (_epoch, d0) = c.reshard_digest(0).unwrap();
    let rec = d0.recover();
    assert!(rec.complete);
    assert!(!rec.positive.is_empty(), "new shard 0 got no keys");
    let status = c.reshard_commit().unwrap();
    assert!(!status.resharding);
    assert_eq!(status.serving_shards, 4);
    assert_eq!(status.completed, 1);

    // The refreshed handshake advertises the new count, and the full
    // content survived the re-keying.
    assert_eq!(c.hello().unwrap().shards, 4);
    let diff = c.reconcile(&keys).unwrap();
    assert!(diff.complete);
    assert!(diff.only_server.is_empty());
    assert!(diff.only_client.is_empty());
    assert_eq!(diff.shards.len(), 4);

    // Control frames outside a migration are clean remote errors.
    match c.reshard_commit() {
        Err(WireError::Remote(msg)) => assert!(msg.contains("no reshard"), "{msg}"),
        other => panic!("expected remote error, got {other:?}"),
    }
    // The whole-reshard driver works too (merge 4 → 2).
    let status = c.reshard(2).unwrap();
    assert_eq!(status.serving_shards, 2);
    assert_eq!(c.hello().unwrap().shards, 2);
}

/// Version negotiation, downward: a protocol-v3 client (pre-reshard
/// frame surface) against today's v5 server. The graceful-degradation
/// contract covers the data plane: every keyspace frame a v3 client can
/// send (`Hello`/`Insert`/`Delete`/`Flush`/`Digest`/`Reconcile`/
/// `Shutdown` and the replication stream) is byte-identical in v5 and
/// must work unchanged. `Stats` is the deliberate exception — its
/// payload grows with the server's revision (v3 itself appended the
/// recovery-timing fields, v5 the histogram tail), so a
/// version-mismatched `Stats` decodes to a clean `TrailingBytes` error,
/// never corruption.
#[test]
fn v3_client_against_v4_server_degrades_gracefully() {
    let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    // The server advertises v7; a v3 client ignores the higher number
    // and keeps to its own frame surface.
    assert_eq!(c.hello().unwrap().version, 7);
    let keys: Vec<u64> = (0..300u64).map(|i| i * 13).collect();
    assert_eq!(c.insert(&keys).unwrap(), 300);
    c.flush().unwrap();
    let diff = c.reconcile(&keys).unwrap();
    assert!(diff.complete && diff.only_server.is_empty() && diff.only_client.is_empty());
    let (_epoch, iblt) = c.digest(0).unwrap();
    assert!(iblt.recover().complete);
}

/// Version negotiation, upward: a v4 client against a v3 server (mocked
/// with the v3 frame surface: it answers `Hello` with version 3 and any
/// unknown tag with a protocol `Error`, exactly as the real v3 server's
/// total decoder did). `Client::reshard` must refuse cleanly before
/// sending any reshard frame, and a raw reshard frame must come back as
/// a remote error — never a hang, panic, or dropped connection.
#[test]
fn v4_client_against_v3_server_degrades_gracefully() {
    use peel_service::wire::{encode_response, read_frame, write_frame, HelloInfo, Response};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let v3_hello = HelloInfo {
        version: 3,
        shards: 2,
        router_seed: 7,
        base_config: peel_iblt::IbltConfig::for_load(4, 64, 0.5, 1),
        batch_size: 128,
        epoch: 0,
    };
    let mock = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = stream.try_clone().unwrap();
        let mut writer = std::io::BufWriter::new(stream);
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            // The v3 request surface ends at tag 0x0a (ReplicateAck).
            let resp = match payload.first().copied() {
                Some(0x01) => Response::Hello(v3_hello),
                Some(tag) if tag >= 0x0b => {
                    Response::Error(format!("bad request: unknown message tag {tag:#04x}"))
                }
                _ => Response::Ok { accepted: 0 },
            };
            if write_frame(&mut writer, &encode_response(&resp)).is_err() {
                break;
            }
        }
    });

    let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
    // The driver sees version 3 in the handshake and refuses up front.
    match c.reshard(4) {
        Err(WireError::Remote(msg)) => assert!(msg.contains("needs v4"), "{msg}"),
        other => panic!("expected clean version refusal, got {other:?}"),
    }
    // A raw v4 frame surfaces the server's tag error as a remote error
    // on a connection that stays usable.
    match c.reshard_begin(4) {
        Err(WireError::Remote(msg)) => assert!(msg.contains("unknown message tag"), "{msg}"),
        other => panic!("expected remote tag error, got {other:?}"),
    }
    assert_eq!(c.hello().unwrap().version, 3);
    drop(c);
    mock.join().unwrap();
}

#[test]
fn concurrent_clients_share_one_service() {
    let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
    let addr = server.local_addr();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let keys: Vec<u64> = (0..250u64).map(|i| t * 1_000 + i).collect();
                assert_eq!(c.insert(&keys).unwrap(), 250);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut c = Client::connect(addr).unwrap();
    c.flush().unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.ops_applied, 1_000);
    assert_eq!(stats.shards.iter().map(|s| s.inserts).sum::<u64>(), 1_000);
}

//! Exhaustive interleaving models for
//! [`peel_service::replication::ReplicationHub`].
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p peel-service
//! --test loom_replication`. Three properties:
//!
//! * **Drop-oldest sequencing**: under publisher ∥ consumer races on a
//!   capacity-1 stream, received sequence numbers are strictly
//!   increasing and every published batch is either received or counted
//!   in `batches_dropped` — evicted from the *old* end, never lost
//!   silently, never delivered out of order.
//! * **Subscribe ∥ close**: a subscription racing `close` always
//!   terminates its `recv` — either `close` saw it in the list, or it
//!   was born closed. The *buggy* variant (sampling the closed flag
//!   before taking the subs lock — what `subscribe` did before the PR-6
//!   audit) is modeled inline below; the checker finds the lost-close
//!   interleaving, proving the model is sharp enough to have caught the
//!   bug, and its replay schedule is recorded in CHANGES.md.
//! * **Epoch bump ∥ subscribe**: a subscription racing an election's
//!   `bump_epoch` is either stamped with the post-bump epoch or closed
//!   — never left alive pinned to the fenced epoch, which would orphan
//!   a follower on a stream no fence will ever cut again.
//! * **Transport smoke**: `stream_to_follower` over a seeded
//!   [`SimTransport`] ack script (clean and fault-mangled) never
//!   panics, and everything it sends is a well-formed `Replicate` frame
//!   with strictly increasing sequence numbers.

#![cfg(loom)]

use loom::sync::Arc;
use peel_service::queue::Op;
use peel_service::replication::{stream_to_follower, ReplicationHub, StreamConfig, StreamItem};
use peel_service::transport::{FaultPlan, SimTransport};
use peel_service::wire::{decode_response, encode_request, Request, Response};

fn batch(key: u64) -> Vec<Op> {
    vec![Op { key, dir: 1 }]
}

/// Publisher ∥ consumer on a capacity-1 subscription: strict sequence
/// order, and received + dropped accounts for every publish.
#[test]
fn drop_oldest_keeps_sequence_order_and_accounts_for_every_batch() {
    loom::model(|| {
        let hub = Arc::new(ReplicationHub::new(1));
        let sub = hub.subscribe();
        let publisher = {
            let hub = Arc::clone(&hub);
            loom::thread::spawn(move || {
                assert_eq!(hub.publish(&batch(10)), 1);
                assert_eq!(hub.publish(&batch(20)), 2);
                hub.close();
            })
        };
        let mut seqs = Vec::new();
        while let Some(item) = sub.recv() {
            if let StreamItem::Batch(seq, _) = item {
                seqs.push(seq);
            }
        }
        publisher.join().unwrap();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "sequence numbers must be strictly increasing, got {seqs:?}"
        );
        let dropped = hub.stats().batches_dropped;
        assert_eq!(
            seqs.len() as u64 + dropped,
            2,
            "every publish is received or counted dropped (got {seqs:?}, dropped {dropped})"
        );
    });
}

/// Regression model for the subscribe-vs-close race fixed in this PR:
/// with `subscribe` sampling the closed flag under the subs lock, a
/// subscription can never miss the close — `recv` always terminates.
/// (A lost close parks `recv` forever; the checker reports it as a
/// deadlock, so an exhaustive pass *is* the proof.)
#[test]
fn subscribe_racing_close_always_terminates() {
    loom::model(|| {
        let hub = Arc::new(ReplicationHub::new(1));
        let closer = {
            let hub = Arc::clone(&hub);
            loom::thread::spawn(move || hub.close())
        };
        let sub = hub.subscribe();
        assert!(sub.recv().is_none(), "a closed hub streams nothing");
        closer.join().unwrap();
    });
}

/// Election fencing racing a late subscriber — the interleaving behind
/// a failover while a follower chain is still attaching. `bump_epoch`
/// stamps the new epoch and closes older-epoch subscriptions under the
/// same lock `subscribe` stamps birth epochs under, so once the bump
/// returns every subscription is either at the new epoch or closed.
/// The broken alternative (stamping the birth epoch outside the lock)
/// leaves a live subscription pinned to the fenced epoch: its follower
/// keeps applying a stream the rest of the mesh has deposed.
#[test]
fn epoch_bump_racing_subscribe_never_orphans_a_subscription() {
    loom::model(|| {
        let hub = Arc::new(ReplicationHub::new(1));
        let bumper = {
            let hub = Arc::clone(&hub);
            loom::thread::spawn(move || hub.bump_epoch(2))
        };
        let sub = hub.subscribe();
        bumper.join().unwrap();
        assert!(
            sub.stream_epoch() == hub.epoch() || sub.is_closed(),
            "subscription alive at fenced epoch {} while the hub is at {}",
            sub.stream_epoch(),
            hub.epoch()
        );
    });
}

/// The pre-fix `subscribe`, distilled onto the loom primitives: the
/// closed flag is sampled *before* the list lock. The checker must find
/// the interleaving where `close` runs entirely inside that window —
/// the subscription is born open and never notified, and its receiver
/// deadlocks — and must reproduce it from the recorded schedule. (The
/// schedule string for this model is the one quoted in CHANGES.md.)
#[test]
fn early_closed_sample_loses_the_close_and_replays() {
    // ordering: Relaxed is the point of this model — the buggy subscribe
    // samples `closed` with no ordering relative to the subs lock, which
    // is exactly the window the checker must drive `close` through.
    use loom::sync::atomic::{AtomicBool, Ordering::Relaxed};
    use loom::sync::{Condvar, Mutex};

    struct MiniSub {
        closed: Mutex<bool>,
        ready: Condvar,
    }
    struct MiniHub {
        closed: AtomicBool,
        subs: Mutex<Vec<Arc<MiniSub>>>,
    }

    let buggy = || {
        let hub = Arc::new(MiniHub {
            closed: AtomicBool::new(false),
            subs: Mutex::new(Vec::new()),
        });
        let closer = {
            let hub = Arc::clone(&hub);
            loom::thread::spawn(move || {
                hub.closed.store(true, Relaxed);
                for sub in hub.subs.lock().unwrap().iter() {
                    *sub.closed.lock().unwrap() = true;
                    sub.ready.notify_all();
                }
            })
        };
        // BUG (the pre-fix subscribe): sample closed before the lock.
        let born_closed = hub.closed.load(Relaxed);
        let sub = Arc::new(MiniSub {
            closed: Mutex::new(born_closed),
            ready: Condvar::new(),
        });
        hub.subs.lock().unwrap().push(Arc::clone(&sub));
        // recv(): park until closed. With the lost close nobody ever
        // notifies — the model deadlocks here.
        let mut closed = sub.closed.lock().unwrap();
        while !*closed {
            closed = sub.ready.wait(closed).unwrap();
        }
        drop(closed);
        closer.join().unwrap();
    };

    let failure = loom::explore(buggy).expect_err("the checker must find the lost-close deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {}",
        failure.message
    );
    eprintln!("lost-close replay schedule: {}", failure.schedule);
    let replayed = loom::model::Builder {
        replay: Some(failure.schedule.clone()),
        ..Default::default()
    }
    .explore(buggy)
    .expect_err("replaying the schedule must reproduce the deadlock");
    assert!(replayed.message.contains("deadlock"));
}

/// `stream_to_follower` over a scripted `SimTransport`: with clean acks
/// and with seed-mangled acks, the sender never panics and every frame
/// it emits is a well-formed `Replicate` in strictly increasing
/// sequence order, under every publisher interleaving.
#[test]
fn sim_transport_stream_smoke() {
    for plan in [FaultPlan::clean(42), FaultPlan::for_seed(7)] {
        loom::model(move || {
            let hub = Arc::new(ReplicationHub::new(1));
            let sub = hub.subscribe();
            let publisher = {
                let hub = Arc::clone(&hub);
                loom::thread::spawn(move || {
                    hub.publish(&batch(1));
                    hub.publish(&batch(2));
                    hub.close();
                })
            };
            let acks: Vec<Vec<u8>> = (1..=2u64)
                .map(|seq| encode_request(&Request::ReplicateAck { epoch: 0, seq }))
                .collect();
            let mut transport = SimTransport::new(plan.mangle(&acks));
            stream_to_follower(&mut transport, &sub, 0, &StreamConfig::default())
                .expect("SimTransport never errors");
            publisher.join().unwrap();
            let mut last = 0u64;
            for frame in &transport.sent {
                match decode_response(frame) {
                    Ok(Response::Replicate { seq, .. }) => {
                        assert!(seq > last, "stream went backwards: {seq} after {last}");
                        last = seq;
                    }
                    other => panic!("sender emitted a non-Replicate frame: {other:?}"),
                }
            }
        });
    }
}

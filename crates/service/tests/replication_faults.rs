//! Deterministic fault-injection proof of replication convergence.
//!
//! The replication stream is driven over the in-memory [`SimTransport`]
//! double: the primary's sealed batches are recorded as `Replicate`
//! frames, a seeded [`FaultPlan`] mangles the sequence (drops,
//! duplicates, reorders, truncations), and the follower applies
//! whatever survives. Anti-entropy — the same per-shard
//! digest/subtract/recover path `Reconcile` serves — must then converge
//! the follower to *cell-identical* shard digests, for every fault
//! pattern.

use std::sync::atomic::{AtomicBool, AtomicU64};

use peel_service::wire::encode_replicate;
use peel_service::{
    apply_replication_stream, FaultPlan, PeelService, ServiceConfig, SimTransport, StreamItem,
};

fn keys(n: u64, tag: u64) -> Vec<u64> {
    (0..n)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

fn cfg() -> ServiceConfig {
    ServiceConfig {
        batch_size: 64,
        queue_depth: 8,
        workers: 2,
        // Room for every sealed batch of the test workload, so the only
        // losses are the ones the fault plan injects.
        repl_queue_depth: 4096,
        ..ServiceConfig::for_diff_budget(4, 2_048)
    }
}

/// True iff every shard's frozen cell array is identical on both sides.
fn digests_identical(a: &PeelService, b: &PeelService) -> bool {
    (0..a.config().shards).all(|shard| {
        let (_ea, da) = a.snapshot_shard(shard).unwrap();
        let (_eb, db) = b.snapshot_shard(shard).unwrap();
        da == db
    })
}

/// One in-process anti-entropy round: reconcile every follower shard
/// against the primary and apply the decoded difference, exactly as the
/// TCP repair driver does.
fn anti_entropy(primary: &PeelService, follower: &PeelService) {
    for shard in 0..follower.config().shards {
        let (_epoch, snap) = follower.snapshot_shard(shard).unwrap();
        let diff = primary.reconcile_shard(shard, &snap).unwrap();
        if !diff.only_local.is_empty() {
            follower.insert(&diff.only_local);
        }
        if !diff.only_remote.is_empty() {
            follower.delete(&diff.only_remote);
        }
    }
    follower.flush();
}

#[test]
fn anti_entropy_converges_under_every_fault_pattern() {
    for seed in 0..8u64 {
        let primary = PeelService::start(cfg());
        let follower = PeelService::start(cfg());
        let sub = primary.replication().subscribe();

        // A per-seed workload with genuine churn: inserts plus a slice
        // of deletes, so batches carry both op directions.
        let ks = keys(1_500, 0xbad0_0000 | seed);
        primary.insert(&ks);
        primary.delete(&ks[..200]);
        primary.flush();

        // Record the replication stream as wire frames…
        let mut frames = Vec::new();
        while let Some(item) = sub.try_recv() {
            if let StreamItem::Batch(seq, ops) = item {
                frames.push(encode_replicate(sub.hub_epoch(), seq, &ops));
            }
        }
        assert!(frames.len() >= 20, "workload too small to stress faults");

        // …mangle it deterministically…
        let plan = FaultPlan::for_seed(seed);
        let mangled = plan.mangle(&frames);

        // …and apply what survives on the follower.
        let stop = AtomicBool::new(false);
        let last = AtomicU64::new(0);
        let mut transport = SimTransport::new(mangled);
        let outcome =
            apply_replication_stream(&mut transport, &follower, &stop, &last).expect("apply");
        follower.flush();
        // Every applied frame was acked (the double records the acks).
        assert_eq!(
            transport.sent.len() as u64,
            outcome.applied + outcome.skipped,
            "seed {seed}: one ack per decodable frame"
        );

        // The faulty stream alone generally does NOT converge (that is
        // the point of the repair path); anti-entropy must, within a
        // small number of rounds.
        let mut rounds = 0;
        while !digests_identical(&primary, &follower) {
            assert!(
                rounds < 16,
                "seed {seed}: no convergence after {rounds} anti-entropy rounds \
                 (stream applied {}, skipped {}, torn {})",
                outcome.applied,
                outcome.skipped,
                outcome.decode_errors
            );
            anti_entropy(&primary, &follower);
            rounds += 1;
        }

        // Converged: every shard digest is cell-identical, and the
        // follower's content decodes to exactly the primary's key set.
        assert!(digests_identical(&primary, &follower), "seed {seed}");
        let mut content = Vec::new();
        for shard in 0..follower.config().shards {
            let (_e, snap) = follower.snapshot_shard(shard).unwrap();
            let rec = snap.recover();
            assert!(rec.complete, "seed {seed}: follower shard {shard}");
            assert!(rec.negative.is_empty(), "seed {seed}: phantom deletions");
            content.extend(rec.positive);
        }
        content.sort_unstable();
        let mut want = ks[200..].to_vec();
        want.sort_unstable();
        assert_eq!(content, want, "seed {seed}: follower content diverged");

        println!(
            "seed {seed}: {:?} → applied {}, skipped {}, torn {}, {} repair rounds",
            plan, outcome.applied, outcome.skipped, outcome.decode_errors, rounds
        );
    }
}

/// A clean (fault-free) stream needs no repair at all: after applying
/// every frame the digests are already identical — the fast path alone
/// fully replicates.
#[test]
fn clean_stream_replicates_without_repair() {
    let primary = PeelService::start(cfg());
    let follower = PeelService::start(cfg());
    let sub = primary.replication().subscribe();
    primary.insert(&keys(2_000, 0xc1ea));
    primary.flush();

    let mut frames = Vec::new();
    while let Some(item) = sub.try_recv() {
        if let StreamItem::Batch(seq, ops) = item {
            frames.push(encode_replicate(sub.hub_epoch(), seq, &ops));
        }
    }
    let stop = AtomicBool::new(false);
    let last = AtomicU64::new(0);
    let mut transport = SimTransport::new(frames);
    let outcome = apply_replication_stream(&mut transport, &follower, &stop, &last).unwrap();
    follower.flush();

    assert_eq!(outcome.skipped, 0);
    assert_eq!(outcome.decode_errors, 0);
    assert!(digests_identical(&primary, &follower));
    let m = follower.metrics();
    assert_eq!(m.replication.batches_applied, outcome.applied);
}

//! Property tests for the lock-free log-bucketed latency histogram:
//! bucket boundaries invert correctly, quantiles are monotone and
//! bracket the recorded values, and merging histograms is equivalent to
//! recording their union.

use proptest::prelude::*;

use peel_service::metrics::{bucket_floor, bucket_index, AtomicHistogram, HISTOGRAM_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket whose floor is ≤ the value, and the
    /// next bucket's floor is > the value (except in the saturated top
    /// bucket, which absorbs everything past its floor).
    #[test]
    fn bucket_boundaries_bracket_the_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(bucket_floor(i) <= v, "floor({i}) > {v}");
        if i + 1 < HISTOGRAM_BUCKETS {
            prop_assert!(v < bucket_floor(i + 1), "{v} >= floor({})", i + 1);
        }
    }

    /// `bucket_index` is monotone: a larger value never lands in an
    /// earlier bucket.
    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Quantile readout is monotone in q and stays within the recorded
    /// range (as bucket floors, which lower-bound the true values).
    #[test]
    fn quantiles_are_monotone_and_bracketed(
        values in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let h = AtomicHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        let max = *values.iter().max().expect("non-empty");
        let min = *values.iter().min().expect("non-empty");
        let mut prev = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let x = snap.quantile(q);
            prop_assert!(x >= prev, "quantile({q}) went backwards");
            // A quantile is a bucket floor: ≤ the true max, and never
            // below the floor of the minimum's bucket.
            prop_assert!(x <= max);
            prop_assert!(x >= bucket_floor(bucket_index(min)));
            prev = x;
        }
    }

    /// Recording a ∪ b into one histogram equals recording a and b into
    /// two and merging them — for both the atomic merge
    /// (`merge_from`) and the snapshot merge.
    #[test]
    fn merge_is_equivalent_to_recording_the_union(
        a in proptest::collection::vec(any::<u64>(), 0..150),
        b in proptest::collection::vec(any::<u64>(), 0..150),
    ) {
        let combined = AtomicHistogram::new();
        for &v in a.iter().chain(&b) {
            combined.record(v);
        }
        let ha = AtomicHistogram::new();
        let hb = AtomicHistogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        // Atomic merge.
        let merged = AtomicHistogram::new();
        merged.merge_from(&ha);
        merged.merge_from(&hb);
        prop_assert_eq!(merged.snapshot(), combined.snapshot());
        // Snapshot merge.
        let mut snap = ha.snapshot();
        snap.merge(&hb.snapshot());
        prop_assert_eq!(snap, combined.snapshot());
    }

    /// The wire sum survives the histogram (sums wrap rather than
    /// saturate, matching the counter contract) and `mean` never panics.
    #[test]
    fn sum_and_mean_agree(values in proptest::collection::vec(any::<u64>(), 0..100)) {
        let h = AtomicHistogram::new();
        let mut want_sum = 0u64;
        for &v in &values {
            h.record(v);
            want_sum = want_sum.wrapping_add(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.sum, want_sum);
        let _ = snap.mean();
        if values.is_empty() {
            prop_assert_eq!(snap.quantile(0.5), 0);
        }
    }
}

//! Deterministic fault-injection proof of reshard convergence.
//!
//! A well-behaved coordinator's frame script — `ReshardBegin`, a
//! verification `ReshardDigest` per new shard, `ReshardCommit`, repeated
//! for a few retry cycles — is recorded as encoded wire frames, mangled
//! by a seeded [`FaultPlan`] (drops, duplicates, reorders, truncations),
//! and replayed through [`handle_request`] — the exact dispatch the TCP
//! handler runs — over the [`SimTransport`] double, while deterministic
//! racing ingest (inserts *and* deletes) lands between frames.
//!
//! Whatever the faults do to the control stream, the state machine must
//! never corrupt state: every run must end (after at most one clean
//! resume pass, which is what a restarted coordinator would do) with all
//! generations retired and shard contents **cell-identical** to a
//! from-scratch build at the new shard count — for a split 1 → 4 and a
//! merge 4 → 2, across seeds 0..8.

use peel_service::wire::{decode_request, encode_request, encode_response, Request};
use peel_service::{
    handle_request, FaultPlan, PeelService, ServiceConfig, SimTransport, Transport,
};

fn keys(n: u64, tag: u64) -> Vec<u64> {
    (0..n)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

fn cfg(shards: u32) -> ServiceConfig {
    ServiceConfig {
        batch_size: 64,
        queue_depth: 8,
        workers: 2,
        // Budget for the full resident set: a reshard decodes whole
        // shards, not just diffs.
        ..ServiceConfig::for_diff_budget(shards, 8_192)
    }
}

/// The coordinator's happy-path script: begin, verify every new shard,
/// commit — repeated `cycles` times so that even heavy frame loss leaves
/// at least one complete Begin → Commit ordering. Every frame is
/// idempotent or cleanly rejected, so duplicates and reorders are safe
/// by construction.
fn coordinator_script(to_shards: u32, cycles: usize) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for _ in 0..cycles {
        frames.push(encode_request(&Request::ReshardBegin { to_shards }));
        for shard in 0..to_shards {
            frames.push(encode_request(&Request::ReshardDigest { shard }));
        }
        frames.push(encode_request(&Request::ReshardCommit));
    }
    frames
}

/// Replay a (possibly mangled) control-frame stream against the
/// service, interleaving one chunk of churn between frames: undecodable
/// frames are skipped (exactly as the TCP handler answers them with an
/// `Error` and moves on), decodable ones go through the real dispatch.
fn drive(svc: &PeelService, frames: Vec<Vec<u8>>, churn: &mut ChurnSchedule) {
    let mut transport = SimTransport::new(frames);
    while let Some(frame) = transport.recv().unwrap() {
        churn.step(svc);
        if let Ok(req) = decode_request(&frame) {
            let (resp, _stop) = handle_request(svc, req);
            transport.send(&encode_response(&resp)).unwrap();
        }
    }
}

/// Deterministic racing ingest: a fixed list of inserts and a fixed
/// slice of base keys to delete, applied one chunk per control frame.
/// Whatever the fault pattern leaves of the script, `finish` applies the
/// remainder, so the final key set is identical across seeds.
struct ChurnSchedule {
    inserts: Vec<u64>,
    deletes: Vec<u64>,
    cursor: usize,
    chunk: usize,
}

impl ChurnSchedule {
    fn new(inserts: Vec<u64>, deletes: Vec<u64>, chunk: usize) -> ChurnSchedule {
        ChurnSchedule {
            inserts,
            deletes,
            cursor: 0,
            chunk,
        }
    }

    fn step(&mut self, svc: &PeelService) {
        let lo = self.cursor;
        self.cursor += self.chunk;
        let ins = &self.inserts[lo.min(self.inserts.len())..self.cursor.min(self.inserts.len())];
        if !ins.is_empty() {
            svc.insert(ins);
        }
        let del = &self.deletes[lo.min(self.deletes.len())..self.cursor.min(self.deletes.len())];
        if !del.is_empty() {
            svc.delete(del);
        }
    }

    fn finish(&mut self, svc: &PeelService) {
        if self.cursor < self.inserts.len() {
            svc.insert(&self.inserts[self.cursor..]);
        }
        if self.cursor < self.deletes.len() {
            svc.delete(&self.deletes[self.cursor..]);
        }
        self.cursor = usize::MAX;
        svc.flush();
    }
}

/// Drive one mangled reshard under churn and return the service.
fn mangled_reshard(
    from: u32,
    to: u32,
    seed: u64,
    base: &[u64],
    churn_in: &[u64],
    churn_del: &[u64],
) -> PeelService {
    let svc = PeelService::start(cfg(from));
    svc.insert(base);
    svc.flush();

    let script = coordinator_script(to, 4);
    let mangled = FaultPlan::for_seed(seed).mangle(&script);
    let mut churn = ChurnSchedule::new(churn_in.to_vec(), churn_del.to_vec(), 40);
    drive(&svc, mangled, &mut churn);
    churn.finish(&svc);

    // A restarted coordinator's resume pass: whatever the mangled stream
    // left behind — mid-migration, aborted, or already committed — one
    // clean script must land the service at the target, with every
    // generation retired.
    if svc.shards() != to || svc.reshard_status().resharding {
        drive(
            &svc,
            coordinator_script(to, 1),
            &mut ChurnSchedule::new(Vec::new(), Vec::new(), 1),
        );
    }
    svc.flush();
    svc
}

/// Expected final key set: base + churn inserts − churn deletes.
fn expected_keys(base: &[u64], churn_in: &[u64], churn_del: &[u64]) -> Vec<u64> {
    let mut want: Vec<u64> = base.iter().chain(churn_in.iter()).copied().collect();
    want.retain(|k| !churn_del.contains(k));
    want.sort_unstable();
    want
}

fn assert_converged(svc: &PeelService, to: u32, want: &[u64], label: &str) {
    // All generations retired…
    let status = svc.reshard_status();
    assert!(!status.resharding, "{label}: migration still in flight");
    assert_eq!(svc.shards(), to, "{label}: wrong final shard count");
    assert!(status.completed >= 1, "{label}: no reshard ever committed");
    // …and the shard contents are cell-identical to a from-scratch
    // build at the new count (same base geometry — reshard never
    // resizes tables, per-shard budgets are a config property).
    let fresh = PeelService::start(ServiceConfig {
        shards: to,
        ..*svc.config()
    });
    fresh.insert(want);
    fresh.flush();
    let mut content = Vec::new();
    for shard in 0..to {
        let (_e, a) = svc.snapshot_shard(shard).unwrap();
        let (_e, b) = fresh.snapshot_shard(shard).unwrap();
        assert_eq!(a, b, "{label}: shard {shard} not cell-identical");
        let rec = a.recover();
        assert!(rec.complete, "{label}: shard {shard} undecodable");
        assert!(rec.negative.is_empty(), "{label}: phantom deletes");
        content.extend(rec.positive);
    }
    content.sort_unstable();
    assert_eq!(content, want, "{label}: content diverged");
}

#[test]
fn split_converges_under_every_fault_pattern() {
    for seed in 0..8u64 {
        let base = keys(1_200, 0x5bad_0000 | seed);
        let churn_in = keys(600, 0xc4a0_0000 | seed);
        let churn_del = base[..150].to_vec();
        let svc = mangled_reshard(1, 4, seed, &base, &churn_in, &churn_del);
        let want = expected_keys(&base, &churn_in, &churn_del);
        assert_converged(&svc, 4, &want, &format!("split seed {seed}"));
        println!(
            "split seed {seed}: gen {} ({} committed, {} aborted, {} keys moved)",
            svc.generation(),
            svc.reshard_status().completed,
            svc.reshard_status().aborted,
            svc.reshard_status().keys_moved,
        );
    }
}

#[test]
fn merge_converges_under_every_fault_pattern() {
    for seed in 0..8u64 {
        let base = keys(1_200, 0x6bad_0000 | seed);
        let churn_in = keys(600, 0xd4a0_0000 | seed);
        let churn_del = base[..150].to_vec();
        let svc = mangled_reshard(4, 2, seed, &base, &churn_in, &churn_del);
        let want = expected_keys(&base, &churn_in, &churn_del);
        assert_converged(&svc, 2, &want, &format!("merge seed {seed}"));
    }
}

/// The same seed twice produces identical final cells — the whole run
/// (fault pattern, churn schedule, reshard outcome) is deterministic at
/// the content level even though worker scheduling is not.
#[test]
fn mangled_reshard_is_deterministic_per_seed() {
    for seed in [0u64, 4] {
        let base = keys(800, 0x7bad_0000 | seed);
        let churn_in = keys(300, 0xe4a0_0000 | seed);
        let churn_del = base[..80].to_vec();
        let a = mangled_reshard(1, 4, seed, &base, &churn_in, &churn_del);
        let b = mangled_reshard(1, 4, seed, &base, &churn_in, &churn_del);
        for shard in 0..4 {
            assert_eq!(
                a.snapshot_shard(shard).unwrap().1,
                b.snapshot_shard(shard).unwrap().1,
                "seed {seed}: shard {shard} differs between identical runs"
            );
        }
    }
}

/// A clean (fault-free) script needs exactly one cycle: the first
/// Begin/Digest×N/Commit commits, and the retry cycles are cleanly
/// rejected no-ops.
#[test]
fn clean_script_commits_on_the_first_cycle() {
    let svc = PeelService::start(cfg(1));
    let base = keys(1_000, 0xc1ea);
    svc.insert(&base);
    svc.flush();
    let mut churn = ChurnSchedule::new(Vec::new(), Vec::new(), 1);
    drive(&svc, coordinator_script(4, 3), &mut churn);
    let status = svc.reshard_status();
    assert_eq!(status.completed, 1, "retry cycles must not re-commit");
    assert_eq!(status.keys_moved, 1_000);
    assert_eq!(svc.generation(), 1);
    let want = expected_keys(&base, &[], &[]);
    assert_converged(&svc, 4, &want, "clean script");
}

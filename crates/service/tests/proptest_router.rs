//! Property tests for generation-aware routing: every key routes to
//! exactly one shard per generation, the (old, new) pair a migration
//! answers is stable across calls, and a split followed by the inverse
//! merge round-trips to the identity mapping.

use proptest::prelude::*;

use peel_service::{GenerationRouter, ShardRouter};

fn arb_shards() -> impl Strategy<Value = u32> {
    1u32..64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Per generation, a key routes to exactly one shard, always in
    /// range, and deterministically (an independently constructed
    /// router with the same parameters agrees).
    #[test]
    fn one_shard_per_generation(shards in arb_shards(), seed in any::<u64>(), key in any::<u64>()) {
        let r = ShardRouter::new(shards, seed);
        let s = r.shard_of(key);
        prop_assert!(s < shards as usize);
        prop_assert_eq!(s, ShardRouter::new(shards, seed).shard_of(key));
    }

    /// During a migration the (old, new) routing pair is a pure function
    /// of the key: stable across calls, consistent with the two
    /// generations routed separately, and `None` on the new side only
    /// when the view is stable.
    #[test]
    fn migration_pairs_are_stable(
        from in arb_shards(),
        to in arb_shards(),
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let old = ShardRouter::new(from, seed);
        let new = old.resharded(to);
        let mig = GenerationRouter::migrating(old, new);
        let stable = GenerationRouter::stable(old);
        for &key in &keys {
            let (o, n) = mig.route(key);
            prop_assert_eq!(mig.route(key), (o, n), "pair must be stable across calls");
            prop_assert_eq!(o, old.shard_of(key));
            prop_assert_eq!(n, Some(new.shard_of(key)));
            prop_assert!(o < from as usize);
            prop_assert!(n.unwrap() < to as usize);
            prop_assert_eq!(stable.route(key), (o, None));
        }
    }

    /// Split-then-merge round-trips to the identity: resharding to any
    /// count and back reproduces the original router exactly, key by
    /// key. (The routing seed is preserved across generations, so a
    /// reshard is a pure range rescaling of the same key hash.)
    #[test]
    fn split_then_merge_is_identity(
        from in arb_shards(),
        via in arb_shards(),
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let r = ShardRouter::new(from, seed);
        let round_trip = r.resharded(via).resharded(from);
        prop_assert_eq!(round_trip, r);
        for &key in &keys {
            prop_assert_eq!(round_trip.shard_of(key), r.shard_of(key));
        }
    }

    /// Resharding only rescales the range: a key's shard under the new
    /// count is the multiply-shift image of the same hash, so a split to
    /// a multiple of the old count refines the old mapping (every key in
    /// old shard i lands in one of the new shards whose range overlaps
    /// i's — in particular, merging back can never mix foreign keys in).
    #[test]
    fn doubling_split_refines_the_old_mapping(
        from in 1u32..32,
        factor in 1u32..8,
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let old = ShardRouter::new(from, seed);
        let new = old.resharded(from * factor);
        let o = old.shard_of(key) as u64;
        let n = new.shard_of(key) as u64;
        // Multiply-shift ranges nest for exact multiples: new shard n
        // covers old shard n / factor.
        prop_assert_eq!(n / factor as u64, o);
    }
}

//! End-to-end failover over real TCP: a 3-node mesh (primary + two
//! follower replicas, each also serving reads) loses its primary
//! mid-ingest. The survivors must detect the death, run the
//! deterministic election, fence the old epoch, re-parent onto the
//! winner, converge cell-identically, and serve reads — including
//! accepting fresh writes at the new primary and replicating them to
//! the remaining follower.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use peel_service::service::PeelService;
use peel_service::{read_from_mesh, Client, Follower, FollowerConfig, Server, ServiceConfig};

fn keys(range: std::ops::Range<u64>, tag: u64) -> Vec<u64> {
    range
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag)
        .collect()
}

fn cfg(node_id: u64) -> ServiceConfig {
    ServiceConfig {
        batch_size: 64,
        queue_depth: 16,
        workers: 2,
        node_id,
        ..ServiceConfig::for_diff_budget(4, 4_000)
    }
}

/// A follower tuned for test-speed failure detection: two quick
/// reconnect failures trigger an election over the mesh peers.
fn mesh_follower(peers: Vec<SocketAddr>, advertise: SocketAddr) -> FollowerConfig {
    FollowerConfig {
        anti_entropy_interval: Duration::from_millis(50),
        reconnect_backoff: Duration::from_millis(25),
        max_reconnect_backoff: Duration::from_millis(200),
        failover_threshold: 2,
        peers,
        advertise: advertise.to_string(),
        ..FollowerConfig::default()
    }
}

/// True iff every shard's frozen cells are identical across both
/// survivors.
fn survivors_identical(a: &PeelService, b: &PeelService) -> bool {
    (0..a.config().shards).all(|shard| {
        let (_ea, da) = a.snapshot_shard(shard).unwrap();
        let (_eb, db) = b.snapshot_shard(shard).unwrap();
        da == db
    })
}

fn await_true(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "{what}: condition never held");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn primary_death_mid_ingest_elects_a_survivor_that_serves_reads() {
    // Node 0: the doomed primary.
    let mut primary = Server::bind("127.0.0.1:0", cfg(0)).unwrap();
    let primary_addr = primary.local_addr();

    // Nodes 1 and 2: replicas — each a service shared between a read
    // server and a follower driver, meshed to probe each other.
    let f1svc = Arc::new(PeelService::start(cfg(1)));
    let f2svc = Arc::new(PeelService::start(cfg(2)));
    let mut s1 = Server::bind_with("127.0.0.1:0", Arc::clone(&f1svc)).unwrap();
    let mut s2 = Server::bind_with("127.0.0.1:0", Arc::clone(&f2svc)).unwrap();
    let (a1, a2) = (s1.local_addr(), s2.local_addr());
    let mut f1 = Follower::start(
        Arc::clone(&f1svc),
        primary_addr,
        mesh_follower(vec![a2], a1),
    );
    let mut f2 = Follower::start(
        Arc::clone(&f2svc),
        primary_addr,
        mesh_follower(vec![a1], a2),
    );

    // Phase 1: both replicas converge on an initial corpus.
    let phase1 = keys(0..800, 0xf001_0000_0000_0000);
    let mut c = Client::connect_retry(primary_addr, Duration::from_secs(5)).unwrap();
    c.insert(&phase1).unwrap();
    c.flush().unwrap();
    await_true("phase 1 convergence", Duration::from_secs(60), || {
        survivors_identical(&f1svc, &f2svc) && {
            let (_e, p) = c.digest(0).unwrap();
            let (_e2, f) = f1svc.snapshot_shard(0).unwrap();
            p == f
        }
    });

    // Phase 2: kill the primary mid-ingest. Writes race the shutdown;
    // whatever the primary never replicated dies with it, and that is
    // fine — the mesh converges on the surviving prefix.
    let ingester = std::thread::spawn(move || {
        let mut c2 = Client::connect(primary_addr).unwrap();
        for chunk in keys(0..400, 0xf002_0000_0000_0000).chunks(20) {
            if c2.insert(chunk).is_err() || c2.flush().is_err() {
                break; // the primary died under us — expected
            }
        }
    });
    std::thread::sleep(Duration::from_millis(30));
    drop(c);
    primary.shutdown();
    ingester.join().unwrap();

    // The survivors must elect exactly one leader, agree on a bumped
    // epoch, and converge with each other.
    await_true("election", Duration::from_secs(60), || {
        let leaders = u32::from(f1svc.is_leading()) + u32::from(f2svc.is_leading());
        leaders == 1
            && f1svc.repl_epoch() == f2svc.repl_epoch()
            && f1svc.repl_epoch() > 0
            && survivors_identical(&f1svc, &f2svc)
    });
    let epoch = f1svc.repl_epoch();
    let (leader_svc, leader_addr) = if f1svc.is_leading() {
        (&f1svc, a1)
    } else {
        (&f2svc, a2)
    };

    // The new primary accepts writes and replicates them to the
    // remaining follower.
    let phase3 = keys(0..300, 0xf003_0000_0000_0000);
    let mut cl = Client::connect_retry(leader_addr, Duration::from_secs(5)).unwrap();
    cl.insert(&phase3).unwrap();
    cl.flush().unwrap();
    await_true("post-failover replication", Duration::from_secs(60), || {
        survivors_identical(&f1svc, &f2svc)
    });

    // The epoch stayed put through the new regime's normal operation —
    // one election, one fence.
    assert_eq!(
        f1svc.repl_epoch(),
        epoch,
        "epoch churned after the election"
    );
    assert_eq!(f2svc.repl_epoch(), epoch);

    // Reads are served from the mesh: every shard digest read over the
    // wire equals the leader's own snapshot, and the surviving content
    // contains phase 1 and phase 3 in full.
    for shard in 0..leader_svc.config().shards {
        let (_e, iblt) =
            read_from_mesh(&[a1, a2], shard, 0, Duration::from_secs(5)).expect("mesh read");
        let (_le, want) = leader_svc.snapshot_shard(shard).unwrap();
        assert_eq!(
            iblt, want,
            "mesh read of shard {shard} diverges from the leader"
        );
    }
    let mut content = Vec::new();
    for shard in 0..leader_svc.config().shards {
        let (_e, snap) = leader_svc.snapshot_shard(shard).unwrap();
        let rec = snap.recover();
        assert!(rec.complete, "leader shard {shard} undecodable");
        assert!(rec.negative.is_empty());
        content.extend(rec.positive);
    }
    content.sort_unstable();
    for k in phase1.iter().chain(phase3.iter()) {
        assert!(
            content.binary_search(k).is_ok(),
            "surviving content lost a fully-acknowledged key"
        );
    }

    f1.stop();
    f2.stop();
    s1.shutdown();
    s2.shutdown();
}

//! Exhaustive interleaving models for [`peel_service::queue::BoundedQueue`].
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p peel-service
//! --test loom_queue`. The queue is the ingest pipeline's backpressure
//! point; the property under test is **no lost, no torn, no reordered
//! batch**: every batch whose `push` returned `true` is popped exactly
//! once, in order, under every interleaving of producer, consumer, and
//! shutdown — and every rejected push happened after `close`.

#![cfg(loom)]

use loom::sync::Arc;
use peel_service::queue::{BoundedQueue, Op};

fn batch(key: u64) -> Vec<Op> {
    vec![Op { key, dir: 1 }]
}

/// Producer ∥ consumer ∥ shutdown on a capacity-1 queue: accepted and
/// consumed batch sets must match exactly, in order, no matter where
/// `close` lands — including between a producer's closed-check and its
/// enqueue, and between the consumer's last pop and its exit.
#[test]
fn close_races_lose_no_accepted_batch() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(1));
        let producer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                let mut accepted = Vec::new();
                for k in 0..2u64 {
                    if q.push(batch(k)) {
                        accepted.push(k);
                    }
                }
                accepted
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(b) = q.pop() {
                    got.push(b[0].key);
                    q.task_done();
                }
                got
            })
        };
        q.close();
        let accepted = producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(
            got, accepted,
            "every accepted batch must be consumed exactly once, in order"
        );
    });
}

/// Backpressure under shutdown: a producer blocked on a full queue must
/// be woken by `close` and see its push rejected — never stay parked
/// (the lost-wakeup would deadlock the model) and never have the
/// rejected batch surface downstream.
#[test]
fn blocked_producer_is_unblocked_by_close() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push(batch(0)));
        let producer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || q.push(batch(1)))
        };
        q.close();
        let second_accepted = producer.join().unwrap();
        // The pre-close batch is still drainable; the racing one is
        // delivered iff its push was accepted.
        assert_eq!(q.pop().unwrap()[0].key, 0);
        q.task_done();
        match q.pop() {
            Some(b) => {
                assert!(second_accepted);
                assert_eq!(b[0].key, 1);
                q.task_done();
            }
            None => assert!(!second_accepted),
        }
        assert!(q.pop().is_none());
    });
}

/// `wait_idle` ∥ `task_done`: the drain waiter must see the queue idle
/// once the last in-flight batch completes — the notify must not be
/// lost between the waiter's emptiness check and its park.
#[test]
fn wait_idle_sees_the_last_task_done() {
    loom::model(|| {
        let q = Arc::new(BoundedQueue::new(1));
        assert!(q.push(batch(0)));
        let b = q.pop().unwrap();
        let worker = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                drop(b);
                q.task_done();
            })
        };
        q.wait_idle();
        worker.join().unwrap();
        assert_eq!(q.depth(), 0);
    });
}

//! Reactor-server integration tests on loopback: prompt shutdown with
//! no inbound connection (the stall this PR fixed), the connection cap
//! refusing politely, the idle reaper, and heavy single-connection
//! pipelining answered strictly in order.

use std::io::{BufWriter, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use peel_service::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use peel_service::{Client, PeelService, ReactorConfig, Server, ServiceConfig};

fn test_cfg() -> ServiceConfig {
    ServiceConfig {
        batch_size: 128,
        workers: 2,
        ..ServiceConfig::for_diff_budget(2, 256)
    }
}

/// The regression this PR's waker fixed: `shutdown()` must return
/// promptly even when no connection ever arrives to nudge the accept
/// loop. (The blocking server needs a throwaway connect for this; the
/// reactor must not.)
#[test]
fn shutdown_completes_promptly_with_no_inbound_connection() {
    let mut server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
    // Never connect. The reactor thread is parked in poll() with no
    // traffic; only the waker can get shutdown through.
    let start = Instant::now();
    server.shutdown();
    let took = start.elapsed();
    assert!(
        took < Duration::from_secs(5),
        "shutdown with zero inbound connections took {took:?} — the reactor stalled"
    );
}

/// Shutdown must also complete while clients are still attached and
/// silent: the grace drain flushes and closes them rather than waiting
/// for the peers to hang up first.
#[test]
fn shutdown_completes_with_silent_clients_attached() {
    let mut server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
    let addr = server.local_addr();
    let mut idlers: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
    // Wait until the reactor has actually accepted the idlers so the
    // shutdown below really races live connections.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.live_connections() < idlers.len() {
        assert!(Instant::now() < deadline, "idlers never accepted");
        std::thread::sleep(Duration::from_millis(10));
    }
    let start = Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "shutdown stalled behind silent attached clients"
    );
    // Every idler observes the close instead of hanging.
    for s in &mut idlers {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 64];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue, // leftover flushed bytes
                Err(e) => panic!("idler did not observe server close: {e}"),
            }
        }
    }
}

/// Past `max_connections`, an accept is answered with a best-effort
/// protocol `Error` frame, closed, and counted — not silently dropped
/// and not allowed to grow the connection table.
#[test]
fn connection_cap_refuses_politely_and_counts() {
    let service = std::sync::Arc::new(PeelService::start(test_cfg()));
    let rcfg = ReactorConfig {
        max_connections: 2,
        ..ReactorConfig::default()
    };
    let mut server = Server::bind_with_cfg("127.0.0.1:0", service, rcfg).unwrap();
    let addr = server.local_addr();

    let mut keeper = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
    keeper.hello().unwrap();
    let _second = TcpStream::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.live_connections() < 2 {
        assert!(
            Instant::now() < deadline,
            "first two connections never accepted"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Third connection: over the cap. It must be refused — an Error
    // frame if the kernel buffered our courtesy write, then EOF.
    let mut refused = TcpStream::connect(addr).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match read_frame(&mut refused) {
        Ok(Some(payload)) => {
            let resp = decode_response(&payload).unwrap();
            assert!(
                matches!(resp, Response::Error(_)),
                "refusal frame was not an Error response: {resp:?}"
            );
            // After the courtesy frame the socket closes.
            let mut buf = [0u8; 16];
            assert_eq!(refused.read(&mut buf).unwrap_or(0), 0);
        }
        Ok(None) => {} // closed before the frame — acceptable
        Err(e) => panic!("refused connection read failed oddly: {e}"),
    }

    // The refusal is visible in the stats a surviving client reads,
    // and the live gauge never exceeded the cap.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = keeper.stats().unwrap();
        if snap.connections.refused >= 1 {
            assert!(snap.connections.live <= 2, "live gauge exceeded the cap");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "refused counter never ticked: {:?}",
            snap.connections
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// A connection with no traffic for longer than `idle_timeout` is
/// closed by the reaper and counted; fresh connections still work.
#[test]
fn idle_connections_are_reaped() {
    let service = std::sync::Arc::new(PeelService::start(test_cfg()));
    let rcfg = ReactorConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ReactorConfig::default()
    };
    let mut server = Server::bind_with_cfg("127.0.0.1:0", service, rcfg).unwrap();
    let addr = server.local_addr();

    let mut idler = TcpStream::connect(addr).unwrap();
    idler
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // The reaper closes us: read unblocks with EOF (or a reset), not a
    // 30-second hang.
    let start = Instant::now();
    let mut buf = [0u8; 16];
    match idler.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("idle connection received {n} unsolicited bytes"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "idle reap did not happen in time"
    );

    // A new (active) client still connects fine and sees the reap
    // counted. It keeps itself alive by the stats polling itself.
    let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = c.stats().unwrap();
        if snap.connections.idle_reaped >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "idle_reaped never ticked: {:?}",
            snap.connections
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// Heavy single-connection pipelining: many frames written before any
/// response is read, answered strictly in request order.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let mut server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
    let addr = server.local_addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    let hello = encode_request(&Request::Hello);
    let stats = encode_request(&Request::Stats);
    let insert = encode_request(&Request::Insert(vec![1, 2, 3]));
    const ROUNDS: usize = 64;
    {
        let mut w = BufWriter::new(s.try_clone().unwrap());
        for k in 0..ROUNDS {
            let frame = match k % 3 {
                0 => &hello,
                1 => &insert,
                _ => &stats,
            };
            write_frame(&mut w, frame).unwrap();
        }
        w.flush().unwrap();
    }
    for k in 0..ROUNDS {
        let payload = read_frame(&mut s)
            .unwrap()
            .unwrap_or_else(|| panic!("connection closed before response {k}"));
        let resp = decode_response(&payload).unwrap();
        let ok = matches!(
            (k % 3, &resp),
            (0, Response::Hello(_)) | (1, Response::Ok { .. }) | (2, Response::Stats(_))
        );
        assert!(ok, "response {k} out of order or wrong variant: {resp:?}");
    }
    server.shutdown();
}

//! Exhaustive interleaving models for the poison-tolerant lock helpers
//! in `peel_service::lock` (public only under `--cfg loom`).
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p peel-service
//! --test loom_lock`. The property: a handler thread that panics while
//! holding a lock must never cascade into a shutdown-path panic or a
//! lost wakeup — `plock`/`pwait`/`pwait_timeout` recover the guard from
//! the `PoisonError` under every interleaving of the panic, the
//! shutdown signal, and the waiters.

#![cfg(loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use loom::sync::Arc;
use peel_service::lock::{plock, pwait, pwait_timeout};
use peel_service::sync::{Condvar, Mutex};

/// A worker panics mid-update with the lock held (poisoning it) while
/// the shutdown path takes the same lock via `plock`: the shutdown must
/// proceed under every interleaving, and the final state is one of the
/// two writes — never a panic, never a wedged lock.
#[test]
fn shutdown_survives_a_poisoning_handler() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u32));
        let worker = {
            let m = Arc::clone(&m);
            loom::thread::spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let mut g = m.lock().unwrap();
                    *g = 1;
                    panic!("handler dies mid-update");
                }));
            })
        };
        *plock(&m) = 2;
        worker.join().unwrap();
        let v = *plock(&m);
        assert!(
            v == 1 || v == 2,
            "final value must be one of the writes, got {v}"
        );
    });
}

/// The stop-signal handoff (the `Server::wait` shape): a waiter parked
/// in `pwait` must see the flag flip even when the raiser's thread
/// panicked earlier with the lock held. No lost wakeup: if the notify
/// could be missed, the model would deadlock and the checker would
/// report it.
#[test]
fn pwait_handoff_survives_poison() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let poisoner = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let _g = pair.0.lock().unwrap();
                    panic!("poison the stop lock");
                }));
            })
        };
        let raiser = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                *plock(&pair.0) = true;
                pair.1.notify_all();
            })
        };
        let mut stopped = plock(&pair.0);
        while !*stopped {
            stopped = pwait(&pair.1, stopped);
        }
        drop(stopped);
        poisoner.join().unwrap();
        raiser.join().unwrap();
    });
}

/// The follower `StopSignal::sleep` shape: one bounded `pwait_timeout`
/// (modeled as an immediate timeout) racing the raiser. The timed wait
/// must return — poisoned or not — and the caller's re-check loop then
/// observes the flag after the join fence.
#[test]
fn pwait_timeout_returns_under_poison_and_races() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let raiser = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let mut g = pair.0.lock().unwrap();
                    *g = true;
                    pair.1.notify_all();
                    panic!("raise then die with the lock held");
                }));
            })
        };
        let guard = plock(&pair.0);
        let (guard, _res) = pwait_timeout(&pair.1, guard, Duration::from_millis(1));
        drop(guard);
        raiser.join().unwrap();
        assert!(*plock(&pair.0), "the raise must be visible after the join");
    });
}

//! Wire-format property tests: every protocol message and serialized
//! IBLT round-trips to an equal value, and truncated or corrupted frames
//! return errors instead of panicking.

use proptest::prelude::*;

use peel_iblt::{Iblt, IbltConfig};
use peel_service::metrics::{
    ConnectionStats, FollowerStats, HistogramSnapshot, MetricsSnapshot, ReplicationStats,
    ReshardStats, ShardStats, HISTOGRAM_BUCKETS, REQUEST_CLASSES,
};
use peel_service::queue::Op;
use peel_service::recorder::FlightRecord;
use peel_service::wire::{
    decode_request, decode_response, encode_request, encode_response, iblt_from_bytes,
    iblt_from_sparse_bytes, iblt_to_bytes, iblt_to_sparse_bytes, read_frame, write_frame,
    FrameDecoder, HelloInfo, Request, Response, ShardDiff, WireError, PROTOCOL_VERSION,
};

// --- Strategies -------------------------------------------------------------

fn arb_config() -> impl Strategy<Value = IbltConfig> {
    (2usize..6, 1usize..40, any::<u64>())
        .prop_map(|(hashes, cells, seed)| IbltConfig::new(hashes, cells, seed))
}

fn arb_iblt() -> impl Strategy<Value = Iblt> {
    (
        arb_config(),
        proptest::collection::vec(any::<u64>(), 0..60),
        proptest::collection::vec(any::<u64>(), 0..20),
    )
        .prop_map(|(cfg, inserts, deletes)| {
            let mut t = Iblt::new(cfg);
            for k in inserts {
                t.insert(k);
            }
            for k in deletes {
                t.delete(k);
            }
            t
        })
}

fn arb_keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..200)
}

/// A replicated ingest batch: signed ops whose direction is ±1, exactly
/// as the queue seals them.
fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (any::<u64>(), any::<bool>()).prop_map(|(key, ins)| Op {
            key,
            dir: if ins { 1 } else { -1 },
        }),
        0..100,
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Hello),
        arb_keys().prop_map(Request::Insert),
        arb_keys().prop_map(Request::Delete),
        Just(Request::Flush),
        (0u32..16).prop_map(|shard| Request::Digest { shard }),
        (0u32..16, arb_iblt()).prop_map(|(shard, digest)| Request::Reconcile { shard, digest }),
        Just(Request::Stats),
        Just(Request::Shutdown),
        any::<u64>().prop_map(|last_seq| Request::Subscribe { last_seq }),
        (any::<u64>(), any::<u64>()).prop_map(|(epoch, seq)| Request::ReplicateAck { epoch, seq }),
        any::<u32>().prop_map(|to_shards| Request::ReshardBegin { to_shards }),
        any::<u32>().prop_map(|shard| Request::ReshardDigest { shard }),
        Just(Request::ReshardCommit),
        Just(Request::ReshardAbort),
        Just(Request::MetricsText),
        Just(Request::DebugDump),
        Just(Request::ReplicaStatus),
        (0u32..64, any::<u64>())
            .prop_map(|(shard, max_lag)| Request::ReadDigest { shard, max_lag }),
    ]
}

fn arb_replica_status() -> impl Strategy<Value = peel_service::ReplicaStatus> {
    (
        (any::<u64>(), any::<u64>(), any::<bool>()),
        (any::<u64>(), any::<bool>(), any::<u32>()),
        proptest::collection::vec(any::<u8>(), 0..24),
    )
        .prop_map(|(a, b, primary)| peel_service::ReplicaStatus {
            node_id: a.0,
            epoch: a.1,
            leading: a.2,
            last_applied: b.0,
            converged: b.1,
            shards: b.2,
            primary: String::from_utf8_lossy(&primary).into_owned(),
        })
}

fn arb_reshard_stats() -> impl Strategy<Value = ReshardStats> {
    (
        (any::<u64>(), any::<bool>(), any::<u32>(), any::<u32>()),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|(a, b)| ReshardStats {
            generation: a.0,
            resharding: a.1,
            serving_shards: a.2,
            to_shards: a.3,
            keys_moved: b.0,
            shards_verified: b.1,
            completed: b.2,
            aborted: b.3,
        })
}

fn arb_shard_diff() -> impl Strategy<Value = ShardDiff> {
    (
        (0u32..64, any::<u64>(), any::<bool>(), 0u32..1000),
        arb_keys(),
        arb_keys(),
        any::<u64>(),
    )
        .prop_map(|(a, only_local, only_remote, as_of_seq)| ShardDiff {
            shard: a.0,
            epoch: a.1,
            complete: a.2,
            subrounds: a.3,
            only_local,
            only_remote,
            as_of_seq,
        })
}

/// A wire-valid histogram snapshot: sparse buckets with strictly
/// ascending indices below [`HISTOGRAM_BUCKETS`] (the decoder rejects
/// anything else as malformed).
fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::btree_map(0u32..HISTOGRAM_BUCKETS as u32, 1u64..u64::MAX, 0..12),
    )
        .prop_map(|(count, sum, buckets)| HistogramSnapshot {
            count,
            sum,
            buckets: buckets.into_iter().collect(),
        })
}

fn arb_follower_rows() -> impl Strategy<Value = Vec<FollowerStats>> {
    proptest::collection::vec(
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
        )
            .prop_map(|(id, published, acked, lag, alive)| FollowerStats {
                id,
                published,
                acked,
                lag,
                alive,
            }),
        0..8,
    )
}

/// A flight-recorder event row. Names and field strings are arbitrary
/// UTF-8 (synthesized by lossy conversion, as for `Response::Error`).
fn arb_flight_records() -> impl Strategy<Value = Vec<FlightRecord>> {
    proptest::collection::vec(
        (
            (any::<u64>(), any::<u64>(), any::<u8>(), any::<u64>()),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..24),
            proptest::collection::vec(any::<u8>(), 0..40),
        )
            .prop_map(|(a, parent, name, fields)| FlightRecord {
                seq: a.0,
                at_us: a.1,
                kind: a.2,
                span: a.3,
                parent,
                name: String::from_utf8_lossy(&name).into_owned(),
                fields: String::from_utf8_lossy(&fields).into_owned(),
            }),
        0..10,
    )
}

fn arb_replication() -> impl Strategy<Value = ReplicationStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<bool>(), any::<u64>()),
        arb_follower_rows(),
        arb_histogram(),
    )
        .prop_map(|(a, b, c, d, per_follower, lag)| ReplicationStats {
            followers: a.0,
            published_seq: a.1,
            acked_min: a.2,
            max_lag: a.3,
            batches_streamed: b.0,
            batches_dropped: b.1,
            batches_applied: b.2,
            batches_skipped: b.3,
            decode_errors: c.0,
            anti_entropy_rounds: c.1,
            anti_entropy_keys: c.2,
            epoch: d.0,
            fenced: d.1,
            leading: d.2,
            read_lag: d.3,
            per_follower,
            lag,
        })
}

fn arb_connection_stats() -> impl Strategy<Value = ConnectionStats> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(live, accepted, refused, idle_reaped, accept_errors)| ConnectionStats {
                live,
                accepted,
                refused,
                idle_reaped,
                accept_errors,
            },
        )
}

fn arb_stats() -> impl Strategy<Value = MetricsSnapshot> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        proptest::collection::vec(any::<u64>(), 0..32),
        proptest::collection::vec(any::<u64>(), 0..32),
        proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..16),
        (
            (arb_replication(), arb_reshard_stats()),
            proptest::collection::vec(arb_histogram(), 0..REQUEST_CLASSES.len() + 1),
            arb_histogram(),
            arb_histogram(),
            arb_histogram(),
            arb_connection_stats(),
        ),
    )
        .prop_map(
            |(a, b, trace, trace_ns, shards, ((replication, reshard), hv, h1, h2, h3, conns))| {
                let hists = (hv, h1, h2, h3);
                MetricsSnapshot {
                    batches_applied: a.0,
                    ops_applied: a.1,
                    queue_stalls: a.2,
                    recoveries: b.0,
                    recoveries_incomplete: b.1,
                    recovery_subrounds: b.2,
                    recovery_ns: b.3,
                    last_recovery_trace: trace,
                    last_recovery_trace_ns: trace_ns,
                    shards: shards
                        .into_iter()
                        .map(|(epoch, inserts, deletes)| ShardStats {
                            epoch,
                            inserts,
                            deletes,
                        })
                        .collect(),
                    replication,
                    reshard,
                    request_latency: hists.0,
                    queue_wait: hists.1,
                    batch_apply: hists.2,
                    recovery_latency: hists.3,
                    connections: conns,
                }
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u64>(),
            arb_config(),
            any::<u32>(),
            any::<u64>()
        )
            .prop_map(|(shards, router_seed, base_config, batch_size, epoch)| {
                Response::Hello(HelloInfo {
                    version: PROTOCOL_VERSION,
                    shards,
                    router_seed,
                    base_config,
                    batch_size,
                    epoch,
                })
            }),
        any::<u64>().prop_map(|accepted| Response::Ok { accepted }),
        (any::<u64>(), arb_iblt()).prop_map(|(epoch, iblt)| Response::Digest { epoch, iblt }),
        arb_shard_diff().prop_map(Response::Diff),
        arb_stats().prop_map(|s| Response::Stats(Box::new(s))),
        (any::<u64>(), any::<u64>(), arb_ops()).prop_map(|(epoch, seq, ops)| Response::Replicate {
            epoch,
            seq,
            ops
        }),
        arb_replica_status().prop_map(Response::ReplicaStatus),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..24)).prop_map(
            |(lag, redirect)| Response::ReadStale {
                lag,
                redirect: String::from_utf8_lossy(&redirect).into_owned(),
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(epoch, generation, shards)| {
            Response::GenerationChange {
                epoch,
                generation,
                shards,
            }
        }),
        arb_reshard_stats().prop_map(Response::Reshard),
        (any::<u64>(), arb_iblt()).prop_map(|(epoch, iblt)| Response::DigestSparse { epoch, iblt }),
        // The shim has no string strategies; synthesize UTF-8 (including
        // multi-byte chars) from arbitrary bytes via lossy conversion.
        proptest::collection::vec(any::<u8>(), 0..40)
            .prop_map(|b| Response::Error(String::from_utf8_lossy(&b).into_owned())),
        proptest::collection::vec(any::<u8>(), 0..200)
            .prop_map(|b| Response::MetricsText(String::from_utf8_lossy(&b).into_owned())),
        arb_flight_records().prop_map(Response::DebugDump),
    ]
}

// --- Properties -------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// decode(encode(request)) == request, and the encoding survives a
    /// framed trip through a byte buffer.
    #[test]
    fn request_roundtrip(req in arb_request()) {
        let payload = encode_request(&req);
        prop_assert_eq!(decode_request(&payload).unwrap(), req.clone());

        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(framed);
        let back = read_frame(&mut cursor).unwrap().unwrap();
        prop_assert_eq!(decode_request(&back).unwrap(), req);
    }

    /// decode(encode(response)) == response.
    #[test]
    fn response_roundtrip(resp in arb_response()) {
        let payload = encode_response(&resp);
        prop_assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    /// Serialized IBLTs decode to an equal table (config, cells, and the
    /// derived item counter all agree).
    #[test]
    fn iblt_roundtrip(t in arb_iblt()) {
        let bytes = iblt_to_bytes(&t);
        let back = iblt_from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(back.items(), t.items());
        prop_assert_eq!(back.config(), t.config());
    }

    /// Every strict prefix of an encoded message fails to decode with an
    /// error — never a panic, and never a bogus success.
    #[test]
    fn truncated_requests_error(req in arb_request(), cut in 0.0f64..1.0) {
        let payload = encode_request(&req);
        prop_assume!(!payload.is_empty());
        let cut = (payload.len() as f64 * cut) as usize; // < len
        prop_assert!(decode_request(&payload[..cut]).is_err());
    }

    /// Same for responses.
    #[test]
    fn truncated_responses_error(resp in arb_response(), cut in 0.0f64..1.0) {
        let payload = encode_response(&resp);
        prop_assume!(!payload.is_empty());
        let cut = (payload.len() as f64 * cut) as usize;
        prop_assert!(decode_response(&payload[..cut]).is_err());
    }

    /// The sparse (skip-empty-cells) encoding decodes to the same table
    /// the dense one does, and every strict prefix of it errors instead
    /// of panicking or mis-decoding.
    #[test]
    fn sparse_iblt_roundtrip_and_truncation(t in arb_iblt(), cut in 0.0f64..1.0) {
        let sparse = iblt_to_sparse_bytes(&t);
        prop_assert_eq!(&iblt_from_sparse_bytes(&sparse).unwrap(), &t);
        // Equivalence with the dense path on the same table.
        prop_assert_eq!(&iblt_from_bytes(&iblt_to_bytes(&t)).unwrap(), &t);
        let cut = (sparse.len() as f64 * cut) as usize; // < len
        prop_assert!(iblt_from_sparse_bytes(&sparse[..cut]).is_err());
    }

    /// Arbitrary byte soup never panics the decoders (errors are fine;
    /// an accidental clean decode of random bytes is fine too).
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = iblt_from_bytes(&bytes);
        let _ = iblt_from_sparse_bytes(&bytes);
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = read_frame(&mut cursor);
    }

    /// Single-byte corruption of a valid encoding never panics, and
    /// corrupting the *tag* byte of a non-tag-colliding value errors.
    #[test]
    fn corrupted_requests_never_panic(
        req in arb_request(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut payload = encode_request(&req);
        prop_assume!(!payload.is_empty());
        let pos = (payload.len() as f64 * pos_frac) as usize % payload.len();
        payload[pos] ^= flip;
        let _ = decode_request(&payload); // must not panic
    }

    /// Same for responses — in particular the `Replicate` stream frames,
    /// whose corruption a follower must survive (it skips the frame and
    /// lets anti-entropy heal the loss).
    #[test]
    fn corrupted_responses_never_panic(
        resp in arb_response(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut payload = encode_response(&resp);
        prop_assume!(!payload.is_empty());
        let pos = (payload.len() as f64 * pos_frac) as usize % payload.len();
        payload[pos] ^= flip;
        let _ = decode_response(&payload); // must not panic
    }

    /// Version negotiation refuses cleanly both ways on the handshake
    /// frame, for *every* v6 `Hello`: the v5 wire image (the v6 bytes
    /// minus the appended epoch tail) is an UnexpectedEof to a v6
    /// decoder, and a longer-than-v6 image (a hypothetical v7 tail) is a
    /// TrailingBytes — so a mixed-version pair always gets a clean error
    /// on the very first frame, never a mis-decoded handshake.
    #[test]
    fn hello_version_negotiation_refuses_both_ways(
        shards in any::<u32>(),
        router_seed in any::<u64>(),
        base_config in arb_config(),
        batch_size in any::<u32>(),
        epoch in any::<u64>(),
    ) {
        let hello = Response::Hello(HelloInfo {
            version: PROTOCOL_VERSION,
            shards,
            router_seed,
            base_config,
            batch_size,
            epoch,
        });
        let v6 = encode_response(&hello);
        prop_assert!(matches!(
            decode_response(&v6[..v6.len() - 8]),
            Err(WireError::UnexpectedEof)
        ));
        let mut v7ish = v6.clone();
        v7ish.extend_from_slice(&[0u8; 8]);
        prop_assert!(matches!(
            decode_response(&v7ish),
            Err(WireError::TrailingBytes(8))
        ));
    }

    /// A truncated *frame* (length prefix promising more bytes than
    /// arrive) is an UnexpectedEof, not a hang or panic.
    #[test]
    fn truncated_frames_error(req in arb_request(), keep in 0.0f64..1.0) {
        let payload = encode_request(&req);
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let keep = 4 + ((framed.len() - 4) as f64 * keep) as usize;
        prop_assume!(keep < framed.len());
        framed.truncate(keep);
        let mut cursor = std::io::Cursor::new(framed);
        prop_assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::UnexpectedEof)
        ));
    }
}

// --- Incremental frame decoder (the reactor's reassembly path) --------------

/// Drain every currently-complete frame out of the decoder.
fn drain(dec: &mut FrameDecoder) -> Result<Vec<Vec<u8>>, WireError> {
    let mut out = Vec::new();
    while let Some(frame) = dec.next_frame()? {
        out.push(frame);
    }
    Ok(out)
}

/// Concatenate the wire encoding of a batch of requests, returning the
/// byte stream and the expected frame payloads.
fn framed_stream(reqs: &[Request]) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut stream = Vec::new();
    let mut payloads = Vec::new();
    for req in reqs {
        let payload = encode_request(req);
        write_frame(&mut stream, &payload).unwrap();
        payloads.push(payload);
    }
    (stream, payloads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding the stream one byte at a time — every byte boundary is a
    /// push boundary — decodes the identical frame sequence to the
    /// one-shot `read_frame` path, pipelined frames included.
    #[test]
    fn decoder_byte_at_a_time_matches_one_shot(
        reqs in proptest::collection::vec(arb_request(), 1..4),
    ) {
        let (stream, payloads) = framed_stream(&reqs);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.push(std::slice::from_ref(b));
            got.extend(drain(&mut dec).unwrap());
        }
        prop_assert_eq!(&got, &payloads);
        prop_assert!(dec.is_empty());
        // And the one-shot reference path agrees.
        let mut cursor = std::io::Cursor::new(stream);
        for payload in &payloads {
            prop_assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(payload));
        }
    }

    /// Any two-chunk split of a pipelined stream — including splits
    /// inside a length prefix and inside a payload — decodes
    /// identically to the unsplit stream.
    #[test]
    fn decoder_split_anywhere_matches(
        first in arb_request(),
        trailing in arb_request(),
        cut in 0.0f64..1.0,
    ) {
        let (stream, payloads) = framed_stream(&[first, trailing]);
        let cut = ((stream.len() as f64) * cut) as usize;
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..cut]);
        let mut got = drain(&mut dec).unwrap();
        dec.push(&stream[cut..]);
        got.extend(drain(&mut dec).unwrap());
        prop_assert_eq!(got, payloads);
        prop_assert!(dec.is_empty());
    }

    /// A truncated stream yields exactly the complete frames and then
    /// waits (Ok(None)) — no error, no panic, no partial frame.
    #[test]
    fn decoder_truncation_yields_only_complete_frames(
        reqs in proptest::collection::vec(arb_request(), 1..4),
        keep in 0.0f64..1.0,
    ) {
        let (stream, payloads) = framed_stream(&reqs);
        let keep = ((stream.len() as f64) * keep) as usize;
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..keep]);
        let got = drain(&mut dec).unwrap();
        prop_assert_eq!(&got[..], &payloads[..got.len()]);
        // Everything delivered was a complete frame; the remainder (if
        // any) is still buffered, not fabricated.
        prop_assert!(got.len() <= payloads.len());
        prop_assert_eq!(dec.next_frame().unwrap(), None);
    }

    /// Arbitrary garbage never panics the decoder: every outcome is a
    /// frame, a wait, or a `FrameTooLarge` error.
    #[test]
    fn decoder_garbage_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..64,
    ) {
        let mut dec = FrameDecoder::new();
        'feed: for piece in bytes.chunks(chunk) {
            dec.push(piece);
            loop {
                match dec.next_frame() {
                    Ok(Some(frame)) => {
                        // Whatever came out must at least decode
                        // *without panicking* (errors are fine).
                        let _ = decode_request(&frame);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        prop_assert!(matches!(e, WireError::FrameTooLarge(_)));
                        // The decoder poisons the stream after an
                        // oversized prefix; stop feeding.
                        break 'feed;
                    }
                }
            }
        }
    }

    /// A corrupted length prefix either re-frames the stream (yielding
    /// differently-sliced frames) or errors as `FrameTooLarge` — the
    /// decoder never panics and never yields a frame longer than the
    /// bytes it was given.
    #[test]
    fn decoder_corrupted_length_never_panics(
        req in arb_request(),
        flip_byte in 0usize..4,
        xor in 1u8..=255,
    ) {
        let (mut stream, _) = framed_stream(&[req]);
        stream[flip_byte] ^= xor;
        let total = stream.len();
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => prop_assert!(frame.len() <= total),
                Ok(None) => break,
                Err(e) => {
                    prop_assert!(matches!(e, WireError::FrameTooLarge(_)));
                    break;
                }
            }
        }
    }
}

/// Exhaustive split sweep: a representative pipelined stream split into
/// two pushes at *every* byte boundary decodes identically to the
/// one-shot path. (The proptest above samples arbitrary requests; this
/// nails down every boundary for one fixed stream, cheaply.)
#[test]
fn decoder_every_split_boundary_exhaustive() {
    let reqs = [
        Request::Hello,
        Request::Insert(vec![1, 2, 3, u64::MAX]),
        Request::Digest { shard: 7 },
        Request::Flush,
    ];
    let (stream, payloads) = framed_stream(&reqs);
    for cut in 0..=stream.len() {
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..cut]);
        let mut got = drain(&mut dec).unwrap();
        dec.push(&stream[cut..]);
        got.extend(drain(&mut dec).unwrap());
        assert_eq!(got, payloads, "split at byte {cut} changed the decode");
        assert!(dec.is_empty(), "split at byte {cut} left residue");
    }
}

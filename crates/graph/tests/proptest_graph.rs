//! Property-based tests for the hypergraph substrate: CSR consistency and
//! model guarantees.

use proptest::prelude::*;

use peel_graph::models::{Binomial, Gnm, Partitioned};
use peel_graph::rng::Xoshiro256StarStar;
use peel_graph::HypergraphBuilder;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR incidence is the exact inverse of the edge table, for arbitrary
    /// valid edge lists.
    #[test]
    fn csr_is_inverse_of_edges(
        (r, n) in (2usize..=5, 4usize..=50),
        seed in any::<u64>(),
    ) {
        let n = n.max(r + 1);
        let mut rng = Xoshiro256StarStar::new(seed);
        let g = Gnm::new(n, 1.5, r).sample(&mut rng);

        // Forward: every edge endpoint appears in that vertex's incidence.
        for (e, vs) in g.edges() {
            for &v in vs {
                prop_assert!(g.incident(v).contains(&e),
                    "edge {} missing from incidence of {}", e, v);
            }
        }
        // Backward: every incidence entry is an edge containing the vertex.
        let mut total = 0usize;
        for v in 0..n as u32 {
            for &e in g.incident(v) {
                prop_assert!(g.edge(e).contains(&v));
            }
            total += g.incident(v).len();
            prop_assert_eq!(g.degree(v) as usize, g.incident(v).len());
        }
        prop_assert_eq!(total, g.num_edges() * r);
    }

    /// Gnm: exact edge count, distinct endpoints per edge.
    #[test]
    fn gnm_guarantees(
        (r, n, m) in (2usize..=5, 6usize..=60, 0usize..100),
        seed in any::<u64>(),
    ) {
        let n = n.max(r + 1);
        let g = Gnm::with_edges(n, m, r).sample(&mut Xoshiro256StarStar::new(seed));
        prop_assert_eq!(g.num_edges(), m);
        for (_, vs) in g.edges() {
            let mut s = vs.to_vec();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), r, "duplicate endpoint in edge");
        }
    }

    /// Partitioned: one endpoint in each part, always.
    #[test]
    fn partitioned_guarantees(
        (r, per_part, m) in (2usize..=5, 2usize..=20, 0usize..80),
        seed in any::<u64>(),
    ) {
        let n = r * per_part;
        let g = Partitioned::with_edges(n, m, r).sample(&mut Xoshiro256StarStar::new(seed));
        let p = g.partition().expect("metadata");
        prop_assert_eq!(p.parts, r);
        for (_, vs) in g.edges() {
            let mut parts: Vec<usize> = vs.iter().map(|&v| p.part_of(v)).collect();
            parts.sort_unstable();
            prop_assert_eq!(parts, (0..r).collect::<Vec<_>>());
        }
    }

    /// Binomial: all edges distinct as sets.
    #[test]
    fn binomial_guarantees(seed in any::<u64>()) {
        let g = Binomial::new(40, 1.0, 3).sample(&mut Xoshiro256StarStar::new(seed));
        let mut keys: Vec<Vec<u32>> = g.edges().map(|(_, vs)| {
            let mut k = vs.to_vec();
            k.sort_unstable();
            k
        }).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
    }

    /// Builder round-trip: pushing arbitrary valid edges preserves them in
    /// order.
    #[test]
    fn builder_preserves_edges(
        edges in proptest::collection::vec(
            proptest::collection::vec(0u32..30, 3), 0..40),
    ) {
        // Repair duplicates within each edge.
        let edges: Vec<Vec<u32>> = edges.into_iter().map(|mut e| {
            for i in 0..e.len() {
                while e[..i].contains(&e[i]) {
                    e[i] = (e[i] + 1) % 30;
                }
            }
            e
        }).collect();
        let mut b = HypergraphBuilder::new(30, 3);
        for e in &edges {
            b.push_edge(e);
        }
        let g = b.build().unwrap();
        prop_assert_eq!(g.num_edges(), edges.len());
        for (i, e) in edges.iter().enumerate() {
            prop_assert_eq!(g.edge(i as u32), e.as_slice());
        }
    }
}

//! Exhaustive interleaving models for [`peel_graph::bits::AtomicBitset`].
//!
//! Build and run with `RUSTFLAGS="--cfg loom" cargo test -p peel-graph
//! --test loom_bits`. Under that cfg the bitset's words are the vendored
//! loom shims, so `loom::model` explores every schedule (within the
//! preemption bound) including stale relaxed reads — which is exactly
//! the memory model the bitset's Relaxed word RMWs must survive.

#![cfg(loom)]

use loom::sync::Arc;
use peel_graph::bits::{AtomicBitset, StripedCounters};

/// The peeling claim protocol: `test_and_set` is a word `fetch_or`, so
/// of two racing claimants for the same vertex exactly one sees the bit
/// clear. This is what makes duplicate peels impossible in the
/// paper's parallel subrounds.
#[test]
fn test_and_set_grants_one_claim() {
    loom::model(|| {
        let bs = Arc::new(AtomicBitset::with_len(64, false));
        let t = {
            let bs = Arc::clone(&bs);
            loom::thread::spawn(move || bs.test_and_set(7))
        };
        let mine = bs.test_and_set(7);
        let theirs = t.join().unwrap();
        assert!(
            mine != theirs,
            "exactly one of two racing test_and_set calls must claim the bit"
        );
        assert!(bs.get(7));
    });
}

/// Neighboring bits share a word; their RMWs must commute. Two threads
/// claiming different bits in the same `AtomicU64` word must both
/// succeed and neither update may be lost — the fetch_or read-modify-
/// write cycle is atomic even at `Relaxed`.
#[test]
fn same_word_claims_commute() {
    loom::model(|| {
        let bs = Arc::new(AtomicBitset::with_len(64, false));
        let t = {
            let bs = Arc::clone(&bs);
            loom::thread::spawn(move || bs.test_and_set(3))
        };
        assert!(!bs.test_and_set(4), "bit 4 has no competitor");
        assert!(!t.join().unwrap(), "bit 3 has no competitor");
        assert!(bs.get(3) && bs.get(4), "no word update may be lost");
    });
}

/// `test_and_clear` is the release direction of the same protocol: two
/// racing clears of a set bit grant exactly one.
#[test]
fn test_and_clear_grants_one_claim() {
    loom::model(|| {
        let bs = Arc::new(AtomicBitset::with_len(64, true));
        let t = {
            let bs = Arc::clone(&bs);
            loom::thread::spawn(move || bs.test_and_clear(11))
        };
        let mine = bs.test_and_clear(11);
        let theirs = t.join().unwrap();
        assert!(mine != theirs);
        assert!(!bs.get(11));
    });
}

/// The broken variant the RMW protocol exists to rule out: a get-then-
/// clear claim is *not* atomic, and the checker finds the double-claim
/// interleaving and reproduces it from its recorded schedule. This is
/// the suite's deliberately-injected race — it documents both that the
/// model is strong enough to catch the bug class and how to replay one.
#[test]
fn get_then_clear_double_claim_is_caught_and_replays() {
    let claim_via_get_then_clear = || {
        let bs = Arc::new(AtomicBitset::with_len(64, true));
        let t = {
            let bs = Arc::clone(&bs);
            loom::thread::spawn(move || {
                if bs.get(5) {
                    bs.clear(5);
                    return true;
                }
                false
            })
        };
        let mine = if bs.get(5) {
            bs.clear(5);
            true
        } else {
            false
        };
        let theirs = t.join().unwrap();
        assert!(
            !(mine && theirs),
            "non-atomic get-then-clear granted the same bit twice"
        );
    };
    let failure = loom::explore(claim_via_get_then_clear)
        .expect_err("the checker must find the double-claim interleaving");
    assert!(failure.message.contains("granted the same bit twice"));
    // The recorded schedule replays the exact failing interleaving.
    let replayed = loom::model::Builder {
        replay: Some(failure.schedule.clone()),
        ..Default::default()
    }
    .explore(claim_via_get_then_clear)
    .expect_err("replaying the schedule must reproduce the failure");
    assert_eq!(replayed.message, failure.message);
}

/// The striped-decrement merge protocol from the dense kill phase: each
/// worker `add`s into its *own* stripe (plain relaxed load+store, no
/// RMW), the fork-join barrier ends the accumulate phase, and the merge
/// sums every stripe per index. Under loom this verifies that the
/// single-writer stores plus the join are enough — the drain must
/// observe every increment from the spawned stripe even though nothing
/// in the counter path is stronger than `Relaxed`.
#[test]
fn striped_add_then_merge_loses_nothing() {
    loom::model(|| {
        let mut sc = StripedCounters::new();
        sc.reset(2, 4);
        let sc = Arc::new(sc);
        let t = {
            let sc = Arc::clone(&sc);
            loom::thread::spawn(move || {
                // Stripe 1's owner: two touches of index 1, one of 2.
                sc.add(1, 1);
                sc.add(1, 1);
                sc.add(1, 2);
            })
        };
        // Stripe 0's owner works concurrently on the same indices.
        sc.add(0, 1);
        sc.add(0, 3);
        t.join().unwrap(); // the barrier that ends the accumulate phase
        let mut totals = [0u32; 4];
        sc.drain_block(0, |i, total| totals[i] = total);
        assert_eq!(totals, [0, 3, 1, 1], "merge lost a striped increment");
        // Drained: the block is clean and a second drain sees nothing.
        sc.drain_block(0, |_, _| panic!("drain must have zeroed the block"));
    });
}

/// The misuse the single-writer protocol rules out: two threads `add`ing
/// to the *same* stripe race the non-atomic load+store cycle, and the
/// checker finds the lost-update interleaving (both load 0, both store
/// 1). This is why the dense kill phase hands each worker its own
/// stripe index — `add` on a shared stripe is not a fetch_add.
#[test]
fn same_stripe_adds_lose_updates_and_loom_catches_it() {
    let race = || {
        let mut sc = StripedCounters::new();
        sc.reset(1, 2);
        let sc = Arc::new(sc);
        let t = {
            let sc = Arc::clone(&sc);
            loom::thread::spawn(move || sc.add(0, 0))
        };
        sc.add(0, 0);
        t.join().unwrap();
        let mut total = 0;
        sc.drain_block(0, |i, v| {
            if i == 0 {
                total = v;
            }
        });
        assert_eq!(total, 2, "same-stripe add lost an update");
    };
    let failure = loom::explore(race).expect_err("the checker must find the lost update");
    assert!(failure.message.contains("lost an update"));
}

//! Connected components of a hypergraph (union-find over edges).
//!
//! Used to analyze peeling *residues*: above the threshold the 2-core is a
//! single giant component w.h.p., while just below it, rare failures are
//! tiny isolated structures (e.g. the duplicate-edge pairs of §3.2.2 of
//! the paper). These helpers let users and tests inspect exactly that.

use crate::hypergraph::Hypergraph;

/// Disjoint-set forest with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of `x`'s set.
    pub fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Summary of a hypergraph's connected components (isolated vertices count
/// as singleton components).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component id per vertex (dense in `0..count`).
    pub label: Vec<u32>,
    /// Number of vertices in each component.
    pub vertex_count: Vec<u64>,
    /// Number of edges in each component.
    pub edge_count: Vec<u64>,
}

impl Components {
    /// Compute components: two vertices are connected when some edge
    /// contains both.
    pub fn compute(g: &Hypergraph) -> Self {
        let n = g.num_vertices();
        let mut uf = UnionFind::new(n);
        for (_, vs) in g.edges() {
            for w in vs.windows(2) {
                uf.union(w[0], w[1]);
            }
        }
        // Dense relabeling.
        let mut label = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut vertex_count: Vec<u64> = Vec::new();
        let mut roots: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for v in 0..n as u32 {
            let r = uf.find(v);
            let id = *roots.entry(r).or_insert_with(|| {
                let id = next;
                next += 1;
                vertex_count.push(0);
                id
            });
            label[v as usize] = id;
            vertex_count[id as usize] += 1;
        }
        let mut edge_count = vec![0u64; next as usize];
        for (_, vs) in g.edges() {
            edge_count[label[vs[0] as usize] as usize] += 1;
        }
        Components {
            label,
            vertex_count,
            edge_count,
        }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.vertex_count.len()
    }

    /// Vertex count of the largest component (0 for the empty graph).
    pub fn largest(&self) -> u64 {
        self.vertex_count.iter().copied().max().unwrap_or(0)
    }
}

/// Extract the subgraph induced by an edge filter (e.g. the k-core residue
/// after a peel). Vertex ids are preserved; dropped edges simply vanish.
pub fn edge_subgraph<F: Fn(u32) -> bool>(g: &Hypergraph, keep: F) -> Hypergraph {
    let mut b = crate::hypergraph::HypergraphBuilder::new(g.num_vertices(), g.arity())
        .skip_distinct_check();
    for (e, vs) in g.edges() {
        if keep(e) {
            b.push_edge(vs);
        }
    }
    b.build().expect("subgraph of a valid graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;
    use crate::models::Gnm;
    use crate::rng::Xoshiro256StarStar;

    fn two_triangles() -> Hypergraph {
        let mut b = HypergraphBuilder::new(7, 2);
        for (a, c) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.push_edge(&[a, c]);
        }
        b.build().unwrap() // vertex 6 is isolated
    }

    #[test]
    fn separates_triangles_and_isolated() {
        let g = two_triangles();
        let c = Components::compute(&g);
        assert_eq!(c.count(), 3);
        let mut sizes = c.vertex_count.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
        assert_eq!(c.largest(), 3);
        // Edge counts: 3 + 3 + 0.
        let mut edges = c.edge_count.clone();
        edges.sort_unstable();
        assert_eq!(edges, vec![0, 3, 3]);
        // Labels consistent within each triangle.
        assert_eq!(c.label[0], c.label[1]);
        assert_eq!(c.label[1], c.label[2]);
        assert_eq!(c.label[3], c.label[5]);
        assert_ne!(c.label[0], c.label[3]);
        assert_ne!(c.label[6], c.label[0]);
        assert_ne!(c.label[6], c.label[3]);
    }

    #[test]
    fn hyperedges_connect_all_their_vertices() {
        let mut b = HypergraphBuilder::new(6, 3);
        b.push_edge(&[0, 2, 4]);
        let g = b.build().unwrap();
        let c = Components::compute(&g);
        assert_eq!(c.label[0], c.label[2]);
        assert_eq!(c.label[2], c.label[4]);
        assert_eq!(c.count(), 4); // {0,2,4} plus three singletons
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 2);
        assert_eq!(uf.component_size(0), 2);
        assert!(uf.union(0, 3));
        assert_eq!(uf.component_size(2), 4);
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn dense_random_graph_is_mostly_one_component() {
        let g = Gnm::new(10_000, 1.5, 3).sample(&mut Xoshiro256StarStar::new(4));
        let c = Components::compute(&g);
        // Mean degree 4.5 ≫ 1: giant component swallows nearly everything.
        assert!(c.largest() > 9_000, "largest {}", c.largest());
    }

    #[test]
    fn edge_subgraph_keeps_selected_edges() {
        let g = two_triangles();
        let sub = edge_subgraph(&g, |e| e < 3); // first triangle only
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.num_vertices(), 7);
        let c = Components::compute(&sub);
        let mut sizes = c.vertex_count.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1, 1, 3]);
    }
}

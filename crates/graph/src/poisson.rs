//! Exact Poisson sampling.
//!
//! The binomial hypergraph model `G^r_c` needs the number of edges
//! `M ~ Binomial(C(n,r), q)` with `q = cn / C(n,r)`. For the parameter ranges
//! of interest (`n ≥ 10^3`, `r ≤ 8`) the binomial is within total variation
//! distance `q·cn = O(n^{2-r})` of `Poisson(cn)` (Le Cam's theorem, Appendix A
//! of the paper), so we sample the edge count from an *exact* Poisson sampler.
//! The branching-process simulator also needs Poisson(rc) child counts.
//!
//! Implementation: Knuth's product-of-uniforms method for small means, and
//! Hörmann's PTRS transformed-rejection method for large means. PTRS is exact
//! (it is a rejection method, not an approximation) and needs only `log Γ`.

use rand::RngCore;

/// Natural log of the Gamma function, via the Stirling series with argument
/// shifting. Absolute error below 1e-10 for all x > 0.
pub fn ln_gamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument");
    let mut acc = 0.0;
    // Shift x up until the Stirling series is accurate.
    while x < 10.0 {
        acc -= x.ln();
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    let series =
        inv * (1.0 / 12.0 + inv2 * (-1.0 / 360.0 + inv2 * (1.0 / 1260.0 - inv2 * (1.0 / 1680.0))));
    acc + (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + series
}

/// Draw one sample from `Poisson(mean)`.
///
/// Exact for all finite nonnegative means. `mean == 0` returns 0.
pub fn sample_poisson<R: RngCore>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "mean must be finite & >= 0"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean < 10.0 {
        knuth(rng, mean)
    } else {
        ptrs(rng, mean)
    }
}

/// Uniform f64 in (0, 1): 53 random mantissa bits, never exactly 0.
#[inline]
fn unit_open<R: RngCore>(rng: &mut R) -> f64 {
    loop {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

/// Knuth's method: count uniforms until their product drops below e^{-mean}.
fn knuth<R: RngCore>(rng: &mut R, mean: f64) -> u64 {
    let threshold = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= unit_open(rng);
        if p <= threshold {
            return k;
        }
        k += 1;
    }
}

/// Hörmann's PTRS: transformed rejection with squeeze, exact for mean >= 10.
fn ptrs<R: RngCore>(rng: &mut R, mean: f64) -> u64 {
    let b = 0.931 + 2.53 * mean.sqrt();
    let a = -0.059 + 0.02483 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    let ln_mean = mean.ln();
    loop {
        let u = unit_open(rng) - 0.5;
        let v = unit_open(rng);
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + mean + 0.43).floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        let lhs = (v * inv_alpha / (a / (us * us) + b)).ln();
        let rhs = k * ln_mean - mean - ln_gamma(k + 1.0);
        if lhs <= rhs {
            return k as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi)
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-9);
        // Γ(11) = 10! = 3628800
        assert!((ln_gamma(11.0) - 3_628_800.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..10 {
            assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        }
    }

    fn check_moments(mean: f64, n: usize, tol_sigmas: f64) {
        let mut rng = Xoshiro256StarStar::new(42);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = sample_poisson(&mut rng, mean) as f64;
            sum += x;
            sumsq += x * x;
        }
        let emp_mean = sum / n as f64;
        let emp_var = sumsq / n as f64 - emp_mean * emp_mean;
        // Standard error of the sample mean is sqrt(mean/n).
        let se = (mean / n as f64).sqrt();
        assert!(
            (emp_mean - mean).abs() < tol_sigmas * se,
            "mean {mean}: sample mean {emp_mean} off by more than {tol_sigmas} SE ({se})"
        );
        // Variance should equal the mean for a Poisson; allow generous slack.
        assert!(
            (emp_var - mean).abs() < 0.1 * mean + 6.0 * se,
            "mean {mean}: sample variance {emp_var} too far from {mean}"
        );
    }

    #[test]
    fn poisson_small_mean_moments() {
        check_moments(2.8, 200_000, 5.0);
    }

    #[test]
    fn poisson_boundary_mean_moments() {
        check_moments(9.99, 100_000, 5.0);
        check_moments(10.01, 100_000, 5.0);
    }

    #[test]
    fn poisson_large_mean_moments() {
        check_moments(1000.0, 50_000, 5.0);
    }

    #[test]
    fn poisson_pmf_chi_square_small_mean() {
        // Compare empirical frequencies to the exact pmf for mean 3.
        let mean = 3.0;
        let trials = 200_000usize;
        let mut rng = Xoshiro256StarStar::new(7);
        let mut counts = [0u64; 16];
        for _ in 0..trials {
            let x = sample_poisson(&mut rng, mean) as usize;
            let idx = x.min(counts.len() - 1);
            counts[idx] += 1;
        }
        // pmf
        let mut pmf = [0.0f64; 16];
        let mut term = (-mean).exp();
        for (k, p) in pmf.iter_mut().enumerate() {
            *p = term;
            term *= mean / (k as f64 + 1.0);
        }
        // Lump the tail into the last bucket.
        let head: f64 = pmf[..15].iter().sum();
        pmf[15] = 1.0 - head;
        let mut chi2 = 0.0;
        for k in 0..16 {
            let expected = pmf[k] * trials as f64;
            if expected > 5.0 {
                let d = counts[k] as f64 - expected;
                chi2 += d * d / expected;
            }
        }
        // 15 dof; the 0.999 quantile is ~37.7. Be generous.
        assert!(chi2 < 45.0, "chi-square statistic too large: {chi2}");
    }
}

//! Random hypergraph models from the paper.
//!
//! * [`Gnm`] — `G^r_{n,cn}`: exactly `m = round(c·n)` edges, each an
//!   independent uniformly random set of `r` distinct vertices. This is the
//!   model of the paper's simulations (Section 5).
//! * [`Binomial`] — `G^r_c`: each of the `C(n,r)` potential edges appears
//!   independently with probability `q = cn / C(n,r)`. The paper's proofs
//!   work in this model (Section 3.2.1, Lemma 1). We sample the edge count
//!   from `Poisson(cn)` (total-variation distance `O(n^{2−r})` from the true
//!   binomial, by Le Cam's theorem) and then draw that many distinct edges.
//! * [`Partitioned`] — vertices split into `r` equal subtables; each edge has
//!   exactly one uniformly random endpoint in each subtable. This is the
//!   hypergraph of the IBLT implementation (Section 6 / Appendix B).
//!
//! All samplers are deterministic functions of the caller-provided RNG, so
//! experiments are reproducible from a single seed. Each sampler also has a
//! `sample_par`-friendly design: construction of the edge list is sequential
//! (cheap), while the CSR build in [`HypergraphBuilder`] dominates and is
//! shared across models.

use rand::RngCore;

use crate::hypergraph::{Hypergraph, HypergraphBuilder};
use crate::poisson::sample_poisson;
use crate::rng::{sample_distinct, uniform_u64};

/// The `G^r_{n,cn}` model: exactly `m` edges, r distinct endpoints each.
#[derive(Debug, Clone, Copy)]
pub struct Gnm {
    n: usize,
    m: usize,
    r: usize,
}

impl Gnm {
    /// Graph on `n` vertices with `round(c·n)` edges of arity `r`.
    pub fn new(n: usize, c: f64, r: usize) -> Self {
        assert!(n > 0 && r >= 2 && c >= 0.0);
        let m = (c * n as f64).round() as usize;
        Gnm { n, m, r }
    }

    /// Graph on `n` vertices with exactly `m` edges of arity `r`.
    pub fn with_edges(n: usize, m: usize, r: usize) -> Self {
        assert!(n > 0 && r >= 2);
        Gnm { n, m, r }
    }

    /// Number of edges this model will generate.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Draw one hypergraph.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> Hypergraph {
        let mut b = HypergraphBuilder::new(self.n, self.r)
            .with_capacity(self.m)
            .skip_distinct_check();
        let mut buf = vec![0u32; self.r];
        for _ in 0..self.m {
            sample_distinct(rng, self.n as u64, self.r, &mut buf);
            b.push_edge(&buf);
        }
        b.build().expect("Gnm sampler produces valid edges")
    }
}

/// The `G^r_c` binomial model (independent edges).
#[derive(Debug, Clone, Copy)]
pub struct Binomial {
    n: usize,
    c: f64,
    r: usize,
}

impl Binomial {
    /// Graph on `n` vertices where each potential r-set appears independently
    /// with probability `q = cn / C(n,r)`.
    pub fn new(n: usize, c: f64, r: usize) -> Self {
        assert!(n > 0 && r >= 2 && c >= 0.0);
        Binomial { n, c, r }
    }

    /// Draw one hypergraph. The number of edges is `Poisson(cn)` (see module
    /// docs for why this matches the binomial model to negligible error);
    /// edges are distinct r-sets (duplicates are rejected and re-drawn).
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> Hypergraph {
        let mean = self.c * self.n as f64;
        let m = sample_poisson(rng, mean) as usize;
        let mut b = HypergraphBuilder::new(self.n, self.r)
            .with_capacity(m)
            .skip_distinct_check();
        // Deduplicate edges as r-sets via a sorted-key hash set.
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        let mut buf = vec![0u32; self.r];
        let mut key = vec![0u32; self.r];
        let mut produced = 0usize;
        while produced < m {
            sample_distinct(rng, self.n as u64, self.r, &mut buf);
            key.copy_from_slice(&buf);
            key.sort_unstable();
            if seen.insert(key.clone()) {
                b.push_edge(&buf);
                produced += 1;
            }
        }
        b.build().expect("binomial sampler produces valid edges")
    }
}

/// The partitioned (subtable) model: `r` equal vertex classes, one endpoint
/// per class per edge.
#[derive(Debug, Clone, Copy)]
pub struct Partitioned {
    n: usize,
    m: usize,
    r: usize,
}

impl Partitioned {
    /// Graph on `n` vertices (`n` must be divisible by `r`) with
    /// `round(c·n)` edges; each edge takes one uniform endpoint per subtable.
    pub fn new(n: usize, c: f64, r: usize) -> Self {
        assert!(n > 0 && r >= 2 && c >= 0.0);
        assert!(
            n.is_multiple_of(r),
            "partitioned model needs n divisible by r"
        );
        let m = (c * n as f64).round() as usize;
        Partitioned { n, m, r }
    }

    /// Graph with exactly `m` edges.
    pub fn with_edges(n: usize, m: usize, r: usize) -> Self {
        assert!(n > 0 && r >= 2 && n.is_multiple_of(r));
        Partitioned { n, m, r }
    }

    /// Vertices per subtable.
    pub fn part_size(&self) -> usize {
        self.n / self.r
    }

    /// Draw one hypergraph. The returned graph carries its
    /// [`crate::Partition`] so subtable-aware engines can exploit it.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> Hypergraph {
        let part = self.part_size();
        let mut b = HypergraphBuilder::new(self.n, self.r)
            .with_capacity(self.m)
            .with_partition(self.r)
            .skip_distinct_check();
        let mut buf = vec![0u32; self.r];
        for _ in 0..self.m {
            for (j, slot) in buf.iter_mut().enumerate() {
                *slot = (j * part) as u32 + uniform_u64(rng, part as u64) as u32;
            }
            b.push_edge(&buf);
        }
        b.build().expect("partitioned sampler produces valid edges")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = Xoshiro256StarStar::new(1);
        let g = Gnm::new(1000, 0.8, 3).sample(&mut rng);
        assert_eq!(g.num_edges(), 800);
        assert_eq!(g.num_vertices(), 1000);
    }

    #[test]
    fn gnm_edges_are_distinct_vertex_sets() {
        let mut rng = Xoshiro256StarStar::new(2);
        let g = Gnm::new(50, 2.0, 4).sample(&mut rng);
        for (_, vs) in g.edges() {
            let mut s = vs.to_vec();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4);
        }
    }

    #[test]
    fn gnm_is_reproducible() {
        let g1 = Gnm::new(500, 0.7, 3).sample(&mut Xoshiro256StarStar::new(99));
        let g2 = Gnm::new(500, 0.7, 3).sample(&mut Xoshiro256StarStar::new(99));
        assert_eq!(g1.endpoints_flat(), g2.endpoints_flat());
    }

    #[test]
    fn binomial_edge_count_near_mean() {
        let mut rng = Xoshiro256StarStar::new(3);
        let n = 20_000;
        let c = 0.75;
        let g = Binomial::new(n, c, 3).sample(&mut rng);
        let mean = c * n as f64;
        let sd = mean.sqrt();
        let m = g.num_edges() as f64;
        assert!(
            (m - mean).abs() < 6.0 * sd,
            "edge count {m} too far from mean {mean}"
        );
    }

    #[test]
    fn binomial_edges_are_unique_sets() {
        let mut rng = Xoshiro256StarStar::new(4);
        let g = Binomial::new(30, 3.0, 3).sample(&mut rng);
        let mut keys: Vec<Vec<u32>> = g
            .edges()
            .map(|(_, vs)| {
                let mut k = vs.to_vec();
                k.sort_unstable();
                k
            })
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "binomial model must not repeat edges");
    }

    #[test]
    fn partitioned_respects_parts() {
        let mut rng = Xoshiro256StarStar::new(5);
        let model = Partitioned::new(1200, 0.7, 4);
        let g = model.sample(&mut rng);
        let p = g.partition().expect("partition metadata present");
        assert_eq!(p.parts, 4);
        assert_eq!(p.part_size, 300);
        for (_, vs) in g.edges() {
            let mut parts: Vec<usize> = vs.iter().map(|&v| p.part_of(v)).collect();
            parts.sort_unstable();
            assert_eq!(parts, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn mean_degree_matches_rc() {
        // Mean vertex degree must be r*c in every model.
        let n = 40_000;
        let c = 0.7;
        let r = 4;
        let mut rng = Xoshiro256StarStar::new(6);
        for g in [
            Gnm::new(n, c, r).sample(&mut rng),
            Partitioned::new(n, c, r).sample(&mut rng),
        ] {
            let mean = g.total_degree() as f64 / n as f64;
            assert!(
                (mean - r as f64 * c).abs() < 0.05,
                "mean degree {mean} should be near {}",
                r as f64 * c
            );
        }
    }

    #[test]
    #[should_panic]
    fn partitioned_panics_on_indivisible_n() {
        Partitioned::new(1001, 0.7, 4);
    }
}

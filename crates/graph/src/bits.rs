//! Shared-memory primitives for the parallel peeling engines: an atomic
//! bitset and striped collection buffers.
//!
//! Both exist to make the hot loops of `peel-core` and `peel-iblt`
//! allocation-free in steady state:
//!
//! * [`AtomicBitset`] packs per-edge / per-cell boolean state (alive flags,
//!   queued flags) 64 entries to the cache line instead of one `AtomicBool`
//!   per entry, cutting the memory traffic of the scan phases by ~8× while
//!   keeping the same relaxed-RMW claiming semantics (`fetch_or` /
//!   `fetch_and` are commutative, so concurrent claims on neighbouring bits
//!   of one word compose exactly like independent `swap`s on separate
//!   bools).
//! * [`StripedCounters`] batches the dense kill phase's degree decrements:
//!   each worker accumulates into its own stripe-major counter region with
//!   plain load+store (no lock-prefixed RMW per endpoint), and one
//!   post-barrier merge per round sums the stripes, applies the deltas,
//!   and detects threshold crossings exactly — dirty-block tracking keeps
//!   the merge proportional to the region actually touched.
//! * [`Striped`] replaces the `fold(Vec::new).reduce(append)` frontier
//!   collection pattern — which allocates one accumulator per rayon chunk
//!   per round — with a fixed set of reusable buffers. Producers push into
//!   the stripe owning their source index (contiguous source ranges map to
//!   contiguous stripes, so threads working on disjoint ranges rarely share
//!   a stripe), and a sequential drain merges the stripes into one output
//!   vector by offset. `clear()` keeps every buffer's capacity, so after
//!   warm-up no round allocates.

// ordering: every atomic op in this module is Relaxed — the bitset's RMWs
// (fetch_or/fetch_and) are commutative claims whose winner is decided by RMW
// atomicity alone, and cross-phase visibility is sequenced by the engines'
// fork-join barriers (rayon join/scope), not by these accesses. Checked by
// the loom models in tests/loom_bits.rs.
use std::sync::atomic::Ordering::Relaxed;

use crate::sync::{AtomicU32, AtomicU64, Mutex, MutexGuard};

/// A fixed-length bitset over atomic 64-bit words.
///
/// All atomic operations are `Relaxed`: callers sequence phases with
/// fork-join barriers (see the memory-ordering notes in `peel-core`), and
/// within a phase the word-level RMWs commute.
#[derive(Debug, Default)]
pub struct AtomicBitset {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitset {
    /// Empty bitset (length 0); grow it with [`AtomicBitset::reset`].
    pub fn new() -> Self {
        AtomicBitset::default()
    }

    /// Bitset of `len` bits, all set to `fill`.
    pub fn with_len(len: usize, fill: bool) -> Self {
        let mut s = AtomicBitset::new();
        s.reset(len, fill);
        s
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the bitset has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize to `len` bits and set every bit to `fill`, reusing the word
    /// buffer when capacity allows (the steady-state path allocates
    /// nothing).
    pub fn reset(&mut self, len: usize, fill: bool) {
        let words = len.div_ceil(64);
        let word = if fill { u64::MAX } else { 0 };
        self.words.truncate(words);
        for w in &mut self.words {
            *w.get_mut() = word;
        }
        self.words.resize_with(words, || AtomicU64::new(word));
        self.len = len;
        if fill {
            self.mask_tail();
        }
    }

    /// Zero the bits past `len` in the last word so whole-word scans (e.g.
    /// [`AtomicBitset::count_ones`]) never see phantom entries.
    fn mask_tail(&mut self) {
        if !self.len.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last.get_mut() &= (1u64 << (self.len % 64)) - 1;
            }
        }
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64].load(Relaxed) & (1 << (i % 64)) != 0
    }

    /// Set bit `i`, returning its previous value (atomic test-and-set).
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_or(mask, Relaxed) & mask != 0
    }

    /// Clear bit `i`, returning its previous value (atomic test-and-clear —
    /// the "first claimer wins" primitive: exactly one concurrent caller
    /// observes `true`).
    #[inline]
    pub fn test_and_clear(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_and(!mask, Relaxed) & mask != 0
    }

    /// Set bit `i` without reading it.
    #[inline]
    pub fn set(&self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64].fetch_or(1u64 << (i % 64), Relaxed);
    }

    /// Clear bit `i` without reading it.
    #[inline]
    pub fn clear(&self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64].fetch_and(!(1u64 << (i % 64)), Relaxed);
    }

    /// Prefetch the cache line holding bit `i` (see [`crate::prefetch`]).
    #[inline]
    pub fn prefetch_bit(&self, i: usize) {
        crate::prefetch::prefetch_index(&self.words, i / 64);
    }

    /// Set bit `i` through exclusive access — a plain read-modify-write,
    /// no atomic RMW, for single-threaded seeding phases.
    #[inline]
    pub fn set_mut(&mut self, i: usize) {
        debug_assert!(i < self.len);
        *self.words[i / 64].get_mut() |= 1u64 << (i % 64);
    }

    /// Clear every bit in `lo..hi` with word-granularity RMWs (edge words
    /// masked, interior words stored whole) — O(range/64) operations, for
    /// consumers that retire a contiguous block of flags at once.
    pub fn clear_range(&self, lo: usize, hi: usize) {
        debug_assert!(lo <= hi && hi <= self.len);
        if lo >= hi {
            return;
        }
        let (first_word, last_word) = (lo / 64, (hi - 1) / 64);
        for w in first_word..=last_word {
            let mut keep = 0u64;
            if w == first_word && !lo.is_multiple_of(64) {
                keep |= (1u64 << (lo % 64)) - 1; // bits below lo survive
            }
            if w == last_word && !hi.is_multiple_of(64) {
                keep |= !((1u64 << (hi % 64)) - 1); // bits at/above hi survive
            }
            if keep == 0 {
                self.words[w].store(0, Relaxed);
            } else {
                self.words[w].fetch_and(keep, Relaxed);
            }
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Relaxed).count_ones() as usize)
            .sum()
    }
}

/// Number of stripes a [`Striped`] buffer set uses. Comfortably above any
/// realistic worker count, so contiguous source chunks (one per rayon
/// worker) touch mostly disjoint stripes; small enough that draining stays
/// a handful of `memcpy`s.
pub const STRIPES: usize = 32;

/// Reusable striped collection buffers: `STRIPES` mutex-guarded vectors
/// that parallel producers push into by source index, merged by offset into
/// one output vector afterwards.
#[derive(Debug)]
pub struct Striped<T> {
    bufs: Vec<Mutex<Vec<T>>>,
}

impl<T> Default for Striped<T> {
    fn default() -> Self {
        Striped {
            bufs: (0..STRIPES).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

impl<T> Striped<T> {
    /// Fresh buffer set (buffers start empty and grow on first use).
    pub fn new() -> Self {
        Striped::default()
    }

    /// The stripe owning source index `i` of a source of length `len`.
    /// Contiguous index ranges map to contiguous stripes.
    #[inline]
    pub fn stripe_of(i: usize, len: usize) -> usize {
        debug_assert!(i < len.max(1));
        i * STRIPES / len.max(1)
    }

    /// Lock one stripe for pushing. Producers working on one source element
    /// should take the guard once and push all of that element's outputs
    /// through it, rather than locking per push.
    #[inline]
    pub fn lock(&self, stripe: usize) -> MutexGuard<'_, Vec<T>> {
        // A poisoned stripe means a producer panicked mid-round; the whole
        // peel is abandoned then, so propagating the panic is correct.
        self.bufs[stripe].lock().unwrap()
    }

    /// Move every stripe's contents into `out` (appended in stripe order —
    /// the merge-by-offset step), leaving all stripes empty *with their
    /// capacity intact*.
    pub fn drain_into(&mut self, out: &mut Vec<T>) {
        for buf in &mut self.bufs {
            out.append(buf.get_mut().unwrap());
        }
    }

    /// Visit and remove every element (for consumers that route elements to
    /// different destinations instead of one vector). Buffer capacity is
    /// kept.
    pub fn drain_each(&mut self, mut f: impl FnMut(T)) {
        for buf in &mut self.bufs {
            for item in buf.get_mut().unwrap().drain(..) {
                f(item);
            }
        }
    }

    /// Total buffered elements (diagnostics/tests).
    pub fn len(&mut self) -> usize {
        self.bufs
            .iter_mut()
            .map(|b| b.get_mut().unwrap().len())
            .sum()
    }

    /// True iff no stripe holds an element.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
}

/// Striped per-thread counters with dirty-block tracking: the batched
/// substitute for per-edge `fetch_sub` degree decrements in the dense
/// kill phase.
///
/// Layout is stripe-major (`counts[stripe * len + i]`): each stripe is
/// owned by exactly one worker during the accumulate phase, so
/// [`StripedCounters::add`] is a plain load+store on the owner's own
/// contiguous counter region — sequential cache lines, no lock-prefixed
/// RMW, no cross-thread false sharing beyond stripe edges. After a
/// fork-join barrier, [`StripedCounters::drain_block`] sums each index
/// across stripes and zeroes it; a per-stripe dirty bitmap over
/// [`StripedCounters::BLOCK`]-sized index blocks lets the merge skip
/// regions no worker touched.
///
/// The single-writer-then-barrier protocol (concurrent `add` on distinct
/// stripes, `drain_block` on disjoint blocks after a join) is checked by
/// the loom model in `tests/loom_bits.rs`.
#[derive(Debug, Default)]
pub struct StripedCounters {
    stripes: usize,
    len: usize,
    /// `stripes * len` counters, stripe-major.
    counts: Vec<AtomicU32>,
    /// `stripes * words_per_stripe` dirty words; bit `b` of stripe `s`'s
    /// region marks block `b` (indices `b*BLOCK..(b+1)*BLOCK`) as touched.
    dirty: Vec<AtomicU64>,
    words_per_stripe: usize,
}

impl StripedCounters {
    /// Indices per dirty-tracking block: 512 `u32` counters = 2 KiB = a
    /// few cache lines per stripe, small enough that one stray touch
    /// costs little merge work, large enough that the bitmap stays tiny.
    pub const BLOCK: usize = 512;

    /// Empty counter set; size it with [`StripedCounters::reset`].
    pub fn new() -> Self {
        StripedCounters::default()
    }

    /// Resize to `stripes × len` counters, all zero, reusing buffers when
    /// capacity allows. Call only between parallel phases (takes `&mut`).
    pub fn reset(&mut self, stripes: usize, len: usize) {
        let stripes = stripes.max(1);
        let words = len.div_ceil(Self::BLOCK).div_ceil(64);
        let total = stripes * len;
        self.counts.truncate(total);
        for c in &mut self.counts {
            *c.get_mut() = 0;
        }
        self.counts.resize_with(total, || AtomicU32::new(0));
        let dirty_total = stripes * words;
        self.dirty.truncate(dirty_total);
        for w in &mut self.dirty {
            *w.get_mut() = 0;
        }
        self.dirty.resize_with(dirty_total, || AtomicU64::new(0));
        self.stripes = stripes;
        self.len = len;
        self.words_per_stripe = words;
    }

    /// Number of stripes this set was last reset to.
    #[inline]
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// Number of [`StripedCounters::BLOCK`]-sized index blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.len.div_ceil(Self::BLOCK)
    }

    /// Increment counter `i` on `stripe`.
    ///
    /// Single-writer protocol: during an accumulate phase each stripe
    /// must be touched by exactly one thread, which makes the
    /// load-then-store below race-free without an RMW.
    #[inline]
    pub fn add(&self, stripe: usize, i: usize) {
        debug_assert!(stripe < self.stripes && i < self.len);
        let c = &self.counts[stripe * self.len + i];
        c.store(c.load(Relaxed) + 1, Relaxed);
        let block = i / Self::BLOCK;
        let w = &self.dirty[stripe * self.words_per_stripe + block / 64];
        let mask = 1u64 << (block % 64);
        // Check-before-set: the dirty word for a hot block stays in L1
        // and the redundant store is skipped on every add after the first.
        if w.load(Relaxed) & mask == 0 {
            w.store(w.load(Relaxed) | mask, Relaxed);
        }
    }

    /// True iff any stripe touched block `b` since the last drain/reset.
    #[inline]
    pub fn block_dirty(&self, b: usize) -> bool {
        let (word, mask) = (b / 64, 1u64 << (b % 64));
        (0..self.stripes)
            .any(|s| self.dirty[s * self.words_per_stripe + word].load(Relaxed) & mask != 0)
    }

    /// Sum-and-zero every touched index of block `b`, invoking
    /// `f(index, total)` for each index with a nonzero cross-stripe sum,
    /// and clear the block's dirty bits.
    ///
    /// Merge protocol: runs after a barrier ends the accumulate phase;
    /// concurrent callers must hold *disjoint* blocks (each index and
    /// each dirty bit then has one owner, so plain load/store suffice —
    /// dirty-word bit clears use an RMW because neighbouring blocks
    /// share a word across merge workers).
    pub fn drain_block(&self, b: usize, mut f: impl FnMut(usize, u32)) {
        if !self.block_dirty(b) {
            return;
        }
        let lo = b * Self::BLOCK;
        let hi = (lo + Self::BLOCK).min(self.len);
        for i in lo..hi {
            let mut total = 0u32;
            for s in 0..self.stripes {
                let c = &self.counts[s * self.len + i];
                let v = c.load(Relaxed);
                if v != 0 {
                    c.store(0, Relaxed);
                    total += v;
                }
            }
            if total != 0 {
                f(i, total);
            }
        }
        let (word, mask) = (b / 64, 1u64 << (b % 64));
        for s in 0..self.stripes {
            self.dirty[s * self.words_per_stripe + word].fetch_and(!mask, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_clear_roundtrip() {
        let bs = AtomicBitset::with_len(130, false);
        assert_eq!(bs.len(), 130);
        assert!(!bs.get(0) && !bs.get(129));
        assert!(!bs.test_and_set(65));
        assert!(bs.test_and_set(65));
        assert!(bs.get(65));
        assert!(bs.test_and_clear(65));
        assert!(!bs.test_and_clear(65));
        assert!(!bs.get(65));
    }

    #[test]
    fn bitset_reset_refills_and_masks_tail() {
        let mut bs = AtomicBitset::with_len(70, true);
        assert_eq!(bs.count_ones(), 70);
        bs.reset(10, false);
        assert_eq!(bs.len(), 10);
        assert_eq!(bs.count_ones(), 0);
        bs.reset(100, true);
        assert_eq!(bs.count_ones(), 100);
        assert!(bs.get(99));
    }

    #[test]
    fn bitset_clear_range_hits_exact_bits() {
        for (lo, hi) in [(0, 0), (0, 130), (3, 64), (64, 128), (5, 200), (63, 65)] {
            let bs = AtomicBitset::with_len(200, true);
            bs.clear_range(lo, hi);
            for i in 0..200 {
                assert_eq!(
                    bs.get(i),
                    !(lo <= i && i < hi),
                    "bit {i} after clear {lo}..{hi}"
                );
            }
        }
    }

    #[test]
    fn bitset_claims_are_exclusive_under_contention() {
        use std::sync::atomic::AtomicUsize;
        let bs = AtomicBitset::with_len(4096, true);
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..4096 {
                        if bs.test_and_clear(i) {
                            wins.fetch_add(1, Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Relaxed), 4096, "each bit claimed exactly once");
        assert_eq!(bs.count_ones(), 0);
    }

    #[test]
    fn striped_drain_preserves_per_stripe_order() {
        let mut st: Striped<u32> = Striped::new();
        let len = 100;
        for i in (0..len).rev() {
            st.lock(Striped::<u32>::stripe_of(i, len)).push(i as u32);
        }
        let mut out = Vec::new();
        st.drain_into(&mut out);
        assert_eq!(out.len(), len);
        // Stripes drain in index order: the stripe of each element never
        // decreases along the drained output.
        let stripes: Vec<usize> = out
            .iter()
            .map(|&v| Striped::<u32>::stripe_of(v as usize, len))
            .collect();
        assert!(stripes.windows(2).all(|w| w[0] <= w[1]));
        assert!(st.is_empty());
        // Buffers kept their capacity for reuse.
        assert!(st
            .bufs
            .iter_mut()
            .any(|b| b.get_mut().unwrap().capacity() > 0));
    }

    #[test]
    fn striped_counters_accumulate_and_drain() {
        let mut sc = StripedCounters::new();
        sc.reset(3, 1200); // 3 blocks of 512 (last partial)
        assert_eq!(sc.num_blocks(), 3);
        // Stripe 0 and 2 touch index 5; stripe 1 touches 600 and 1199.
        sc.add(0, 5);
        sc.add(0, 5);
        sc.add(2, 5);
        sc.add(1, 600);
        sc.add(1, 1199);
        assert!(sc.block_dirty(0) && sc.block_dirty(1) && sc.block_dirty(2));
        let mut seen = Vec::new();
        for b in 0..sc.num_blocks() {
            sc.drain_block(b, |i, total| seen.push((i, total)));
        }
        assert_eq!(seen, vec![(5, 3), (600, 1), (1199, 1)]);
        // Drained: everything clean and zero.
        for b in 0..sc.num_blocks() {
            assert!(!sc.block_dirty(b));
            sc.drain_block(b, |_, _| panic!("drained counters must be zero"));
        }
    }

    #[test]
    fn striped_counters_reset_reuses_and_zeroes() {
        let mut sc = StripedCounters::new();
        sc.reset(2, 600);
        sc.add(1, 10);
        // Shrink, then regrow past the old size: all counters must be zero.
        sc.reset(1, 100);
        sc.drain_block(0, |_, _| panic!("stale counter after shrink"));
        sc.reset(4, 2000);
        for b in 0..sc.num_blocks() {
            sc.drain_block(b, |_, _| panic!("stale counter after regrow"));
        }
        sc.add(3, 1999);
        let mut seen = Vec::new();
        sc.drain_block(3, |i, t| seen.push((i, t)));
        assert_eq!(seen, vec![(1999, 1)]);
    }

    #[test]
    fn striped_counters_concurrent_stripes_then_merge() {
        use std::sync::atomic::AtomicU64 as StdAtomicU64;
        let mut sc = StripedCounters::new();
        let threads = 4;
        let len = 10_000;
        sc.reset(threads, len);
        std::thread::scope(|s| {
            for t in 0..threads {
                let sc = &sc;
                s.spawn(move || {
                    // Every stripe increments every third index `t+1` times.
                    for _ in 0..=t {
                        for i in (0..len).step_by(3) {
                            sc.add(t, i);
                        }
                    }
                });
            }
        });
        // threads joined: barrier. Parallel merge over disjoint blocks.
        let expected_per_index = (threads * (threads + 1) / 2) as u32;
        let total = StdAtomicU64::new(0);
        std::thread::scope(|s| {
            let blocks = sc.num_blocks();
            for chunk in 0..2 {
                let (sc, total) = (&sc, &total);
                s.spawn(move || {
                    for b in (chunk * blocks / 2)..((chunk + 1) * blocks / 2) {
                        sc.drain_block(b, |i, t| {
                            assert_eq!(i % 3, 0);
                            assert_eq!(t, expected_per_index);
                            total.fetch_add(u64::from(t), Relaxed);
                        });
                    }
                });
            }
        });
        let touched = len.div_ceil(3) as u64;
        assert_eq!(total.load(Relaxed), touched * u64::from(expected_per_index));
    }

    #[test]
    fn stripe_of_is_monotone_and_in_range() {
        for len in [1usize, 5, 31, 32, 33, 1000] {
            let mut prev = 0;
            for i in 0..len {
                let s = Striped::<u32>::stripe_of(i, len);
                assert!(s < STRIPES);
                assert!(s >= prev);
                prev = s;
            }
        }
    }
}

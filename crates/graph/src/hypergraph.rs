//! The immutable r-uniform hypergraph in CSR form.
//!
//! Peeling engines need two traversal directions:
//!
//! * edge → endpoints ("which cells does this item hash to?"), stored as a
//!   flat `Vec<u32>` with edge `e` occupying `endpoints[e*r .. (e+1)*r]`;
//! * vertex → incident edges ("which items touch this cell?"), stored as a
//!   classic CSR pair (`offsets`, `incidence`);
//! * vertex → incident edges *with their other endpoints inlined*
//!   (`adj`): per vertex, one contiguous run of `r` words per incident
//!   edge — `[edge_id, other_0, …, other_{r-2}]` — so a frontier kill
//!   phase streams one sequential region per vertex instead of chasing
//!   `endpoints[e*r..]` cache lines all over the edge table.
//!
//! All tables are built once and never mutated; engines keep their own
//! mutable state (alive flags, degrees) in parallel arrays indexed by the
//! same ids. This keeps the graph shareable across threads (`&Hypergraph` is
//! `Sync`) with zero synchronization.

use crate::error::GraphError;

/// Identifier of a vertex (a cell, in sketch applications). Dense in `0..n`.
pub type VertexId = u32;
/// Identifier of an edge (an item/key). Dense in `0..m`.
pub type EdgeId = u32;

/// Description of a partition of the vertex set into `parts` contiguous,
/// equal-sized ranges ("subtables" in the paper's Section 6 / Appendix B).
///
/// Part `j` owns vertices `j*part_size .. (j+1)*part_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Number of parts (always equals the arity for partitioned models).
    pub parts: usize,
    /// Vertices per part (`n / parts`).
    pub part_size: usize,
}

impl Partition {
    /// The part that owns vertex `v`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> usize {
        (v as usize) / self.part_size
    }

    /// The contiguous vertex range owned by part `j`.
    #[inline]
    pub fn range(&self, j: usize) -> std::ops::Range<u32> {
        let lo = (j * self.part_size) as u32;
        lo..lo + self.part_size as u32
    }
}

/// An immutable r-uniform hypergraph with `n` vertices and `m` edges.
///
/// Construct through [`HypergraphBuilder`] or one of the random models in
/// [`crate::models`].
#[derive(Debug, Clone)]
pub struct Hypergraph {
    n: usize,
    r: usize,
    /// Flattened endpoint table, length `m * r`.
    endpoints: Vec<u32>,
    /// CSR offsets into `incidence`, length `n + 1`.
    offsets: Vec<u32>,
    /// Incident edge ids grouped by vertex, length `m * r`.
    incidence: Vec<u32>,
    /// Vertex-sorted adjacency runs, length `m * r * r`: the j-th incident
    /// edge of vertex `v` (i.e. `incidence[offsets[v] + j]`) occupies
    /// `adj[(offsets[v] + j) * r ..][..r]` as `[edge_id, others…]`.
    adj: Vec<u32>,
    /// Present when the graph was built against a subtable partition.
    partition: Option<Partition>,
}

impl Hypergraph {
    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len() / self.r
    }

    /// Edge arity `r` (every edge has exactly `r` endpoints).
    #[inline]
    pub fn arity(&self) -> usize {
        self.r
    }

    /// Edge density `c = m / n`.
    #[inline]
    pub fn edge_density(&self) -> f64 {
        self.num_edges() as f64 / self.n as f64
    }

    /// The endpoints of edge `e` (slice of length `r`).
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &[u32] {
        let r = self.r;
        let base = e as usize * r;
        &self.endpoints[base..base + r]
    }

    /// The edges incident to vertex `v`.
    #[inline]
    pub fn incident(&self, v: VertexId) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.incidence[lo..hi]
    }

    /// Initial degree of vertex `v` (number of incident edges).
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The raw flattened endpoint table (edge `e` at `e*r..(e+1)*r`).
    #[inline]
    pub fn endpoints_flat(&self) -> &[u32] {
        &self.endpoints
    }

    /// The vertex-sorted adjacency runs of vertex `v`: one `r`-word run per
    /// incident edge, laid out `[edge_id, other_0, …, other_{r-2}]`, in the
    /// same order as [`Self::incident`]. A kill phase walking a frontier
    /// vertex reads this single contiguous region — the edge id *and* every
    /// endpoint it must decrement arrive on sequentially prefetched lines.
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> &[u32] {
        let r = self.r;
        let lo = self.offsets[v as usize] as usize * r;
        let hi = self.offsets[v as usize + 1] as usize * r;
        &self.adj[lo..hi]
    }

    /// The raw flattened adjacency-run table (see [`Self::adjacency`]).
    #[inline]
    pub fn adjacency_flat(&self) -> &[u32] {
        &self.adj
    }

    /// Hint that [`Self::adjacency`]`(v)` will be read soon (prefetches
    /// the first cache line of the run region).
    #[inline]
    pub fn prefetch_adjacency(&self, v: VertexId) {
        let lo = self.offsets[v as usize] as usize * self.r;
        crate::prefetch::prefetch_index(&self.adj, lo);
    }

    /// The subtable partition, if this graph was built with one.
    #[inline]
    pub fn partition(&self) -> Option<Partition> {
        self.partition
    }

    /// Iterate over `(edge_id, endpoints)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &[u32])> + '_ {
        self.endpoints
            .chunks_exact(self.r)
            .enumerate()
            .map(|(e, vs)| (e as EdgeId, vs))
    }

    /// Sum of all degrees; equals `m * r`.
    pub fn total_degree(&self) -> u64 {
        self.endpoints.len() as u64
    }
}

/// Builder that validates an edge list and constructs the CSR tables.
#[derive(Debug, Clone)]
pub struct HypergraphBuilder {
    n: usize,
    r: usize,
    endpoints: Vec<u32>,
    partition: Option<Partition>,
    validate_distinct: bool,
}

impl HypergraphBuilder {
    /// Start a builder for a graph with `n` vertices and arity `r`.
    pub fn new(n: usize, r: usize) -> Self {
        HypergraphBuilder {
            n,
            r,
            endpoints: Vec::new(),
            partition: None,
            validate_distinct: true,
        }
    }

    /// Pre-allocate space for `m` edges.
    pub fn with_capacity(mut self, m: usize) -> Self {
        self.endpoints.reserve(m * self.r);
        self
    }

    /// Declare that the graph respects a subtable partition into `parts`
    /// contiguous equal ranges; [`Self::build`] verifies each edge has
    /// exactly one endpoint per part.
    pub fn with_partition(mut self, parts: usize) -> Self {
        self.partition = Some(Partition {
            parts,
            part_size: self.n / parts.max(1),
        });
        self
    }

    /// Disable the per-edge distinct-endpoints check (useful when the caller
    /// guarantees distinctness and the graph is huge).
    pub fn skip_distinct_check(mut self) -> Self {
        self.validate_distinct = false;
        self
    }

    /// Append one edge given its endpoints.
    pub fn push_edge(&mut self, endpoints: &[u32]) {
        debug_assert_eq!(endpoints.len(), self.r);
        self.endpoints.extend_from_slice(endpoints);
    }

    /// Append edges from a flattened endpoint array.
    pub fn push_flat(&mut self, flat: &[u32]) {
        self.endpoints.extend_from_slice(flat);
    }

    /// Number of edges currently staged.
    pub fn staged_edges(&self) -> usize {
        self.endpoints.len() / self.r
    }

    /// Validate and build the CSR representation.
    pub fn build(self) -> Result<Hypergraph, GraphError> {
        let HypergraphBuilder {
            n,
            r,
            endpoints,
            partition,
            validate_distinct,
        } = self;

        if r < 2 {
            return Err(GraphError::ArityTooSmall { arity: r });
        }
        if endpoints.len() % r != 0 {
            return Err(GraphError::EndpointLengthNotMultipleOfArity {
                len: endpoints.len(),
                arity: r,
            });
        }
        if let Some(p) = partition {
            if p.parts == 0 || n % p.parts != 0 {
                return Err(GraphError::PartitionSizeMismatch { n, parts: p.parts });
            }
        }

        // Validate endpoints.
        for (e, edge) in endpoints.chunks_exact(r).enumerate() {
            for &v in edge {
                if v as usize >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: v, n });
                }
            }
            if validate_distinct {
                // r is tiny; quadratic scan beats sorting.
                for i in 0..r {
                    for j in (i + 1)..r {
                        if edge[i] == edge[j] {
                            return Err(GraphError::DuplicateVertexInEdge { edge: e as u32 });
                        }
                    }
                }
            }
            if let Some(p) = partition {
                // Exactly one endpoint per part: since |edge| == parts == r,
                // it suffices that all parts are distinct.
                let mut seen = 0u64;
                for &v in edge {
                    let part = p.part_of(v);
                    if seen & (1 << part) != 0 {
                        return Err(GraphError::EdgeViolatesPartition { edge: e as u32 });
                    }
                    seen |= 1 << part;
                }
            }
        }

        // Counting sort to build CSR incidence.
        let mut offsets = vec![0u32; n + 1];
        for &v in &endpoints {
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut incidence = vec![0u32; endpoints.len()];
        // Vertex-sorted adjacency runs share the incidence slot numbering:
        // slot s holds edge id `incidence[s]` and run `adj[s*r..][..r]`.
        let mut adj = vec![0u32; endpoints.len() * r];
        for (e, edge) in endpoints.chunks_exact(r).enumerate() {
            for (i, &v) in edge.iter().enumerate() {
                let slot = cursor[v as usize] as usize;
                incidence[slot] = e as u32;
                cursor[v as usize] += 1;
                let run = &mut adj[slot * r..slot * r + r];
                run[0] = e as u32;
                // The r-1 "other" endpoints, in edge order with position i
                // elided (duplicates under skip_distinct_check keep their
                // per-position semantics: each occurrence lists the rest).
                let mut w = 1;
                for (j, &u) in edge.iter().enumerate() {
                    if j != i {
                        run[w] = u;
                        w += 1;
                    }
                }
            }
        }

        Ok(Hypergraph {
            n,
            r,
            endpoints,
            offsets,
            incidence,
            adj,
            partition,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hypergraph {
        // 6 vertices, 3 edges of arity 3.
        let mut b = HypergraphBuilder::new(6, 3);
        b.push_edge(&[0, 1, 2]);
        b.push_edge(&[2, 3, 4]);
        b.push_edge(&[0, 4, 5]);
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.arity(), 3);
        assert_eq!(g.total_degree(), 9);
        assert!((g.edge_density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edge_access() {
        let g = tiny();
        assert_eq!(g.edge(0), &[0, 1, 2]);
        assert_eq!(g.edge(1), &[2, 3, 4]);
        assert_eq!(g.edge(2), &[0, 4, 5]);
    }

    #[test]
    fn incidence_is_inverse_of_edges() {
        let g = tiny();
        assert_eq!(g.incident(0), &[0, 2]);
        assert_eq!(g.incident(1), &[0]);
        assert_eq!(g.incident(2), &[0, 1]);
        assert_eq!(g.incident(3), &[1]);
        assert_eq!(g.incident(4), &[1, 2]);
        assert_eq!(g.incident(5), &[2]);
    }

    #[test]
    fn adjacency_runs_match_incidence_and_endpoints() {
        let g = tiny();
        for v in 0..6u32 {
            let runs = g.adjacency(v);
            let inc = g.incident(v);
            assert_eq!(runs.len(), inc.len() * g.arity());
            for (j, run) in runs.chunks_exact(g.arity()).enumerate() {
                let e = run[0];
                assert_eq!(e, inc[j]);
                // run[1..] is edge(e) minus one occurrence of v, edge order.
                let mut expect: Vec<u32> = g.edge(e).to_vec();
                let pos = expect.iter().position(|&u| u == v).unwrap();
                expect.remove(pos);
                assert_eq!(&run[1..], expect.as_slice());
            }
        }
    }

    #[test]
    fn adjacency_runs_with_duplicate_endpoints() {
        let mut b = HypergraphBuilder::new(4, 2).skip_distinct_check();
        b.push_edge(&[1, 1]);
        let g = b.build().unwrap();
        // Vertex 1 has two incidence slots for edge 0; each run lists the
        // other occurrence (also 1).
        assert_eq!(g.adjacency(1), &[0, 1, 0, 1]);
    }

    #[test]
    fn degrees() {
        let g = tiny();
        let degs: Vec<u32> = (0..6).map(|v| g.degree(v)).collect();
        assert_eq!(degs, vec![2, 1, 2, 1, 2, 1]);
    }

    #[test]
    fn edges_iterator_matches() {
        let g = tiny();
        let collected: Vec<(u32, Vec<u32>)> = g.edges().map(|(e, vs)| (e, vs.to_vec())).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1], (1, vec![2, 3, 4]));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = HypergraphBuilder::new(3, 2);
        b.push_edge(&[0, 3]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 3, n: 3 }
        );
    }

    #[test]
    fn rejects_duplicate_endpoint() {
        let mut b = HypergraphBuilder::new(4, 3);
        b.push_edge(&[1, 2, 1]);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DuplicateVertexInEdge { edge: 0 }
        );
    }

    #[test]
    fn rejects_bad_arity() {
        let b = HypergraphBuilder::new(4, 1);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::ArityTooSmall { arity: 1 }
        );
    }

    #[test]
    fn rejects_ragged_flat_input() {
        let mut b = HypergraphBuilder::new(4, 3);
        b.push_flat(&[0, 1]);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::EndpointLengthNotMultipleOfArity { .. }
        ));
    }

    #[test]
    fn partition_accepts_valid() {
        // 6 vertices, 3 parts of 2: parts {0,1}, {2,3}, {4,5}.
        let mut b = HypergraphBuilder::new(6, 3).with_partition(3);
        b.push_edge(&[0, 2, 4]);
        b.push_edge(&[1, 3, 5]);
        let g = b.build().unwrap();
        let p = g.partition().unwrap();
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(3), 1);
        assert_eq!(p.part_of(5), 2);
        assert_eq!(p.range(1), 2..4);
    }

    #[test]
    fn partition_rejects_two_endpoints_same_part() {
        let mut b = HypergraphBuilder::new(6, 3).with_partition(3);
        b.push_edge(&[0, 1, 4]); // 0 and 1 both in part 0
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::EdgeViolatesPartition { edge: 0 }
        );
    }

    #[test]
    fn partition_rejects_indivisible_n() {
        let b = HypergraphBuilder::new(7, 3).with_partition(3);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::PartitionSizeMismatch { .. }
        ));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = HypergraphBuilder::new(5, 3).build().unwrap();
        assert_eq!(g.num_edges(), 0);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
            assert!(g.incident(v).is_empty());
        }
    }

    #[test]
    fn skip_distinct_check_allows_duplicates() {
        let mut b = HypergraphBuilder::new(4, 2).skip_distinct_check();
        b.push_edge(&[1, 1]);
        let g = b.build().unwrap();
        assert_eq!(g.degree(1), 2);
    }
}

//! Best-effort software prefetch for the peeling hot loops.
//!
//! The kill phases know their future reads a few iterations ahead (the
//! endpoint words of edge `e + D`, the adjacency run of frontier vertex
//! `i + D`) but those addresses are data-dependent, so the hardware
//! prefetcher cannot follow them. [`prefetch_read`] issues a locality
//! hint for the cache line holding the pointed-to value; it never reads
//! or writes memory, so any address — including dangling or unaligned
//! ones — is acceptable, and on architectures without a prefetch
//! intrinsic it compiles to nothing.

/// Hint that the cache line containing `*p` will soon be read.
///
/// A no-op everywhere except x86_64 (the only architecture this crate
/// has a vetted intrinsic for). Safe for any pointer value: prefetch
/// instructions do not fault and do not constitute a memory access in
/// the memory model.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a pure performance hint; it performs no
    // load or store, cannot fault on any address, and has no effect on
    // program semantics.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(p.cast::<i8>(), _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Hint that the element `slice[i]` will soon be read, when `i` is in
/// bounds; out-of-range lookahead indices (the tail of a loop) are
/// ignored rather than being the caller's problem.
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], i: usize) {
    if let Some(v) = slice.get(i) {
        prefetch_read(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_harmless() {
        let data = vec![1u32; 100];
        prefetch_read(data.as_ptr());
        prefetch_index(&data, 50);
        prefetch_index(&data, 5000); // out of range: ignored
        prefetch_read(std::ptr::null::<u64>()); // prefetch never faults
        assert_eq!(data[50], 1);
    }
}

//! Degree statistics of hypergraphs.
//!
//! The branching-process analysis in the paper rests on vertex degrees being
//! asymptotically `Poisson(rc)`. These helpers compute empirical degree
//! distributions so tests (and users) can check how close a generated graph
//! is to that idealization.

use crate::hypergraph::Hypergraph;

/// Summary of a hypergraph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// `histogram[d]` = number of vertices with degree `d`.
    pub histogram: Vec<u64>,
    /// Mean degree (= `r·m/n`).
    pub mean: f64,
    /// Population variance of the degree.
    pub variance: f64,
    /// Maximum degree observed.
    pub max: u32,
    /// Number of isolated (degree-0) vertices.
    pub isolated: u64,
}

impl DegreeStats {
    /// Compute the stats for `g`.
    pub fn compute(g: &Hypergraph) -> Self {
        let n = g.num_vertices();
        let mut histogram: Vec<u64> = Vec::new();
        let mut sum = 0u64;
        let mut sumsq = 0u64;
        let mut max = 0u32;
        for v in 0..n as u32 {
            let d = g.degree(v);
            if d as usize >= histogram.len() {
                histogram.resize(d as usize + 1, 0);
            }
            histogram[d as usize] += 1;
            sum += d as u64;
            sumsq += (d as u64) * (d as u64);
            max = max.max(d);
        }
        let mean = sum as f64 / n as f64;
        let variance = sumsq as f64 / n as f64 - mean * mean;
        let isolated = histogram.first().copied().unwrap_or(0);
        DegreeStats {
            histogram,
            mean,
            variance,
            max,
            isolated,
        }
    }

    /// Fraction of vertices with degree `>= k`. This is the quantity `λ_0`-ish
    /// baseline used when comparing traces to the idealized recurrence.
    pub fn fraction_degree_at_least(&self, k: u32) -> f64 {
        let total: u64 = self.histogram.iter().sum();
        let at_least: u64 = self.histogram.iter().skip(k as usize).sum();
        at_least as f64 / total as f64
    }

    /// Pearson chi-square statistic of the empirical degree histogram against
    /// `Poisson(mean)`, lumping buckets with expected count below
    /// `min_expected` into the tail. Returns `(statistic, dof)`.
    pub fn chi_square_vs_poisson(&self, mean: f64, min_expected: f64) -> (f64, usize) {
        let n: u64 = self.histogram.iter().sum();
        let nf = n as f64;
        // Poisson pmf by ascending recurrence.
        let mut pmf_term = (-mean).exp();
        let mut chi2 = 0.0;
        let mut dof = 0usize;
        let mut lump_obs = 0.0f64;
        let mut lump_exp = 0.0f64;
        let kmax = self.histogram.len().max(1) + 10;
        let mut cumulative = 0.0f64;
        for k in 0..kmax {
            let observed = self.histogram.get(k).copied().unwrap_or(0) as f64;
            let expected = pmf_term * nf;
            cumulative += pmf_term;
            if expected >= min_expected {
                let d = observed - expected;
                chi2 += d * d / expected;
                dof += 1;
            } else {
                lump_obs += observed;
                lump_exp += expected;
            }
            pmf_term *= mean / (k as f64 + 1.0);
        }
        // Remaining tail probability beyond kmax joins the lump.
        lump_exp += (1.0 - cumulative).max(0.0) * nf;
        if lump_exp >= min_expected {
            let d = lump_obs - lump_exp;
            chi2 += d * d / lump_exp;
            dof += 1;
        }
        (chi2, dof.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Gnm;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn stats_on_tiny_graph() {
        use crate::hypergraph::HypergraphBuilder;
        let mut b = HypergraphBuilder::new(4, 2);
        b.push_edge(&[0, 1]);
        b.push_edge(&[0, 2]);
        let g = b.build().unwrap();
        let s = DegreeStats::compute(&g);
        assert_eq!(s.histogram, vec![1, 2, 1]); // deg0: v3; deg1: v1,v2; deg2: v0
        assert_eq!(s.max, 2);
        assert_eq!(s.isolated, 1);
        assert!((s.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_degree_at_least_works() {
        use crate::hypergraph::HypergraphBuilder;
        let mut b = HypergraphBuilder::new(4, 2);
        b.push_edge(&[0, 1]);
        b.push_edge(&[0, 2]);
        let g = b.build().unwrap();
        let s = DegreeStats::compute(&g);
        assert!((s.fraction_degree_at_least(1) - 0.75).abs() < 1e-12);
        assert!((s.fraction_degree_at_least(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gnm_degrees_look_poisson() {
        let n = 100_000;
        let c = 0.7;
        let r = 4;
        let g = Gnm::new(n, c, r).sample(&mut Xoshiro256StarStar::new(12));
        let s = DegreeStats::compute(&g);
        let mean = r as f64 * c;
        assert!((s.mean - mean).abs() < 0.02);
        // Poisson has variance == mean.
        assert!(
            (s.variance - mean).abs() < 0.1,
            "variance {} vs {}",
            s.variance,
            mean
        );
        let (chi2, dof) = s.chi_square_vs_poisson(mean, 5.0);
        // Loose acceptance: chi2 should be comparable to dof, not wildly above.
        assert!(
            chi2 < dof as f64 * 3.0 + 30.0,
            "chi2={chi2} dof={dof}: degrees not Poisson-like"
        );
    }
}

//! Error types for hypergraph construction.

use std::fmt;

/// Errors raised while building or validating a [`crate::Hypergraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The flattened endpoint array length is not a multiple of the arity.
    EndpointLengthNotMultipleOfArity {
        /// Length of the endpoint array provided.
        len: usize,
        /// Arity (edge size) of the hypergraph.
        arity: usize,
    },
    /// An endpoint refers to a vertex id `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// An edge contains the same vertex twice (edges must be r-*sets*).
    DuplicateVertexInEdge {
        /// Index of the offending edge.
        edge: u32,
    },
    /// Arity must be at least 2.
    ArityTooSmall {
        /// The offending arity.
        arity: usize,
    },
    /// A partitioned graph requires `n` divisible by the number of parts.
    PartitionSizeMismatch {
        /// Number of vertices.
        n: usize,
        /// Number of parts requested.
        parts: usize,
    },
    /// An edge of a partitioned graph does not have exactly one endpoint in
    /// each part.
    EdgeViolatesPartition {
        /// Index of the offending edge.
        edge: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EndpointLengthNotMultipleOfArity { len, arity } => write!(
                f,
                "endpoint array length {len} is not a multiple of arity {arity}"
            ),
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex id {vertex} out of range for n={n}")
            }
            GraphError::DuplicateVertexInEdge { edge } => {
                write!(f, "edge {edge} contains a duplicate vertex")
            }
            GraphError::ArityTooSmall { arity } => {
                write!(f, "arity must be >= 2, got {arity}")
            }
            GraphError::PartitionSizeMismatch { n, parts } => {
                write!(f, "n={n} is not divisible by parts={parts}")
            }
            GraphError::EdgeViolatesPartition { edge } => {
                write!(f, "edge {edge} does not have one endpoint per part")
            }
        }
    }
}

impl std::error::Error for GraphError {}

//! # peel-graph — random hypergraph substrate for peeling algorithms
//!
//! This crate provides the probability models and the in-memory hypergraph
//! representation used by the peeling engines in `peel-core` and by the
//! applications built on top of them (`peel-iblt`, `peel-codes`, `peel-fn`).
//!
//! The paper *Parallel Peeling Algorithms* (Jiang, Mitzenmacher, Thaler;
//! SPAA 2014) analyzes peeling on three closely related random models, all of
//! which are implemented here:
//!
//! * [`models::Gnm`] — the `G^r_{n,cn}` model: exactly `m = cn` edges, each an
//!   independently chosen set of `r` distinct vertices out of `n`.
//! * [`models::Binomial`] — the `G^r_c` model: every one of the `C(n,r)`
//!   potential edges appears independently with probability `q = cn / C(n,r)`
//!   (the model the paper's proofs work in; see Lemma 1).
//! * [`models::Partitioned`] — vertices are split into `r` equal *subtables*
//!   and each edge has exactly one endpoint in each subtable. This is the
//!   hypergraph underlying the paper's IBLT implementation (Section 6 and
//!   Appendix B).
//!
//! The central type is [`Hypergraph`]: an immutable r-uniform hypergraph in
//! compressed sparse row (CSR) form, storing both the edge → vertex table and
//! the vertex → incident-edge table so peeling engines can traverse in both
//! directions without allocation.
//!
//! The crate also ships:
//!
//! * [`rng`] — tiny, fast, seedable PRNGs (`SplitMix64`, `Xoshiro256StarStar`)
//!   implementing [`rand::RngCore`] so deterministic experiments are cheap.
//! * [`poisson`] — an exact Poisson sampler (Knuth product method below mean
//!   10, Hörmann's PTRS transformed rejection above) used by the binomial
//!   model and the branching-process simulator.
//! * [`branching`] — a Monte-Carlo simulator of the paper's *idealized
//!   branching process* (Section 3.1), used to validate the recurrences in
//!   `peel-analysis` against an independent implementation.
//! * [`stats`] — degree statistics of generated graphs (used in tests to
//!   check that empirical degrees match the Poisson(rc) prediction).
//! * [`bits`] — shared parallel-engine primitives: an atomic bitset and
//!   striped, reusable collection buffers (the allocation-free substitutes
//!   for per-round `AtomicBool` arrays and `fold`/`reduce` vector churn in
//!   `peel-core` and `peel-iblt`).
//!
//! ## Quick example
//!
//! ```
//! use peel_graph::models::Gnm;
//! use peel_graph::rng::SplitMix64;
//!
//! let mut rng = SplitMix64::new(42);
//! // 10_000 vertices, edge density c = 0.7, 4-uniform edges.
//! let g = Gnm::new(10_000, 0.7, 4).sample(&mut rng);
//! assert_eq!(g.num_edges(), 7_000);
//! assert_eq!(g.arity(), 4);
//! // Every edge has 4 distinct endpoints.
//! for e in 0..g.num_edges() as u32 {
//!     let vs = g.edge(e);
//!     assert_eq!(vs.len(), 4);
//! }
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod branching;
pub mod components;
pub mod error;
pub mod hypergraph;
pub mod models;
pub mod poisson;
pub mod prefetch;
pub mod rng;
pub mod stats;
pub(crate) mod sync;

pub use bits::{AtomicBitset, Striped, StripedCounters};
pub use components::{edge_subgraph, Components, UnionFind};
pub use error::GraphError;
pub use hypergraph::{EdgeId, Hypergraph, HypergraphBuilder, Partition, VertexId};

//! Monte-Carlo simulation of the paper's idealized branching process.
//!
//! Section 3.1 of the paper models the depth-`t` neighborhood of a vertex as
//! a Poisson branching tree: the root has `Poisson(rc)` child edges, each
//! child edge has `r − 1` child vertices, and so on. A vertex at distance
//! `t − i` from the root *survives* `i` rounds of peeling iff at least
//! `k − 1` of its child edges survive (an edge survives iff all of its
//! `r − 1` child vertices survive); the *root* needs `k` surviving edges.
//!
//! `λ_t` is the probability the root survives `t` rounds. The closed-form
//! recurrence for `λ_t` lives in `peel-analysis`; this module estimates the
//! same quantity by direct simulation of the tree, giving an independent
//! implementation to validate the recurrence against (and a way to probe
//! regimes where one doubts the idealization).

use rand::RngCore;

use crate::poisson::sample_poisson;

/// Parameters of the idealized branching process.
#[derive(Debug, Clone, Copy)]
pub struct BranchingProcess {
    /// Peeling threshold: vertices with fewer than `k` surviving child edges
    /// are peeled.
    pub k: u32,
    /// Edge arity.
    pub r: u32,
    /// Edge density.
    pub c: f64,
}

impl BranchingProcess {
    /// Create a process for the `(k, r, c)` triple.
    pub fn new(k: u32, r: u32, c: f64) -> Self {
        assert!(k >= 2 && r >= 2);
        assert!(c > 0.0);
        BranchingProcess { k, r, c }
    }

    /// Simulate whether a single vertex at depth `t − rounds` survives
    /// `rounds` rounds (root semantics when `root == true`: needs `k`
    /// surviving child edges rather than `k − 1`).
    fn survives<R: RngCore>(&self, rng: &mut R, rounds: u32, root: bool) -> bool {
        if rounds == 0 {
            return true;
        }
        let need = if root { self.k } else { self.k - 1 };
        let mean = self.r as f64 * self.c;
        let child_edges = sample_poisson(rng, mean);
        let mut surviving = 0u64;
        for _ in 0..child_edges {
            // An edge survives iff all of its r−1 child vertices survive
            // rounds−1 rounds.
            let mut edge_survives = true;
            for _ in 0..(self.r - 1) {
                if !self.survives(rng, rounds - 1, false) {
                    edge_survives = false;
                    break;
                }
            }
            if edge_survives {
                surviving += 1;
                if surviving >= need as u64 {
                    return true; // early exit: threshold reached
                }
            }
        }
        false
    }

    /// Monte-Carlo estimate of `λ_t`: the probability the root survives `t`
    /// rounds. Runs `trials` independent tree simulations.
    pub fn estimate_lambda<R: RngCore>(&self, rng: &mut R, t: u32, trials: u64) -> f64 {
        let mut survived = 0u64;
        for _ in 0..trials {
            if self.survives(rng, t, true) {
                survived += 1;
            }
        }
        survived as f64 / trials as f64
    }

    /// Monte-Carlo estimate of `ρ_t`: the probability a *non-root* vertex
    /// survives `t` rounds (threshold `k − 1`).
    pub fn estimate_rho<R: RngCore>(&self, rng: &mut R, t: u32, trials: u64) -> f64 {
        let mut survived = 0u64;
        for _ in 0..trials {
            if self.survives(rng, t, false) {
                survived += 1;
            }
        }
        survived as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn lambda_zero_rounds_is_one() {
        let bp = BranchingProcess::new(2, 4, 0.7);
        let mut rng = Xoshiro256StarStar::new(1);
        assert_eq!(bp.estimate_lambda(&mut rng, 0, 100), 1.0);
    }

    #[test]
    fn lambda_one_round_matches_poisson_tail() {
        // λ_1 = P(Poisson(rc) >= k). For r=4, c=0.7, k=2: 1 - e^{-2.8}(1+2.8).
        let bp = BranchingProcess::new(2, 4, 0.7);
        let mut rng = Xoshiro256StarStar::new(2);
        let est = bp.estimate_lambda(&mut rng, 1, 200_000);
        let exact = 1.0 - (-2.8f64).exp() * (1.0 + 2.8);
        assert!(
            (est - exact).abs() < 0.005,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn lambda_decreases_with_rounds_below_threshold() {
        let bp = BranchingProcess::new(2, 4, 0.7); // below c*_{2,4} ≈ 0.772
        let mut rng = Xoshiro256StarStar::new(3);
        let l2 = bp.estimate_lambda(&mut rng, 2, 20_000);
        let l5 = bp.estimate_lambda(&mut rng, 5, 20_000);
        assert!(l5 < l2, "survival must shrink with rounds: {l5} !< {l2}");
    }

    #[test]
    fn rho_upper_bounds_lambda() {
        // Threshold k−1 < k, so ρ_t >= λ_t.
        let bp = BranchingProcess::new(3, 3, 1.0);
        let mut rng = Xoshiro256StarStar::new(4);
        let rho = bp.estimate_rho(&mut rng, 3, 20_000);
        let lam = bp.estimate_lambda(&mut rng, 3, 20_000);
        assert!(rho >= lam - 0.02, "rho {rho} should dominate lambda {lam}");
    }

    #[test]
    fn above_threshold_survival_stabilizes_positive() {
        // c = 0.85 > c*_{2,4}: λ_t converges to λ > 0 (≈ 0.775 for t→∞).
        let bp = BranchingProcess::new(2, 4, 0.85);
        let mut rng = Xoshiro256StarStar::new(5);
        let l8 = bp.estimate_lambda(&mut rng, 8, 20_000);
        assert!(l8 > 0.7, "above threshold the core persists, got {l8}");
    }
}

//! Concurrency-primitive indirection for model checking.
//!
//! Built normally, this re-exports the `std::sync` types the crate's
//! hot paths use. Built with `RUSTFLAGS="--cfg loom"`, the same names
//! resolve to the vendored loom shims, whose operations participate in
//! exhaustive interleaving exploration inside `loom::model` (and
//! delegate straight back to `std` outside one). Keeping the swap in
//! one module means `bits.rs` and friends never mention `cfg(loom)`.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU32, AtomicU64};
#[cfg(loom)]
pub(crate) use loom::sync::{Mutex, MutexGuard};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU32, AtomicU64};
#[cfg(not(loom))]
pub(crate) use std::sync::{Mutex, MutexGuard};

//! Small, fast, seedable PRNGs for deterministic experiments.
//!
//! The experiment harness runs hundreds of thousands of trials; we want
//! generators that are (a) trivially seedable from a `u64` so every trial is
//! reproducible, (b) fast enough to not dominate graph construction, and
//! (c) free of global state so trials can run on rayon worker threads.
//!
//! [`SplitMix64`] is used for seeding and for hash mixing;
//! [`Xoshiro256StarStar`] is the workhorse generator (it is the generator
//! recommended by its authors for general 64-bit use). Both implement
//! [`rand::RngCore`] + [`rand::SeedableRng`] so they compose with the `rand`
//! ecosystem (`gen_range`, shuffling, …).

use rand::{Error, RngCore, SeedableRng};

/// The 64-bit finalizer of SplitMix64 / MurmurHash3.
///
/// This is a high-quality bijective mixer; it is used both inside the PRNGs
/// and as a standalone hash for keys in the IBLT and static-function crates.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// SplitMix64: a tiny splittable PRNG with 64 bits of state.
///
/// Every call advances the state by a fixed odd constant and returns the
/// mixed state. Passes BigCrush when used as described by Vigna.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed. Any seed is fine (including 0).
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // `next` matches the PRNG literature; not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

/// Xoshiro256**: 256 bits of state, period 2^256 − 1, excellent statistical
/// quality; the recommended general-purpose generator of Blackman & Vigna.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 as the reference implementation recommends
    /// (guarantees the state is never all-zero).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next(), sm.next(), sm.next(), sm.next()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // `next` matches the PRNG literature; not an Iterator
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The `jump` function: equivalent to 2^128 calls to [`Self::next`].
    ///
    /// Used to derive non-overlapping parallel streams from one seed: give
    /// worker `i` a generator jumped `i` times.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next();
            }
        }
        self.s = s;
    }

    /// Derive the generator for parallel stream `stream` from `seed`.
    ///
    /// Streams are guaranteed non-overlapping for at least 2^128 outputs.
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut g = Self::new(seed);
        // Cheap alternative to repeated jumping for large stream indices:
        // re-seed through SplitMix64, then jump once to decorrelate.
        if stream > 0 {
            let mut sm = SplitMix64::new(seed ^ mix64(stream));
            g = Xoshiro256StarStar {
                s: [sm.next(), sm.next(), sm.next(), sm.next()],
            };
            g.jump();
        }
        g
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s == [0, 0, 0, 0] {
            // All-zero state is a fixed point; fall back to a fixed seed.
            return Xoshiro256StarStar::new(0xdead_beef);
        }
        Xoshiro256StarStar { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Xoshiro256StarStar::new(state)
    }
}

fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// Sample `r` *distinct* values uniformly from `0..n` into `out`.
///
/// Uses rejection, which is fast because peeling applications have tiny `r`
/// (2–8) and large `n`; the expected number of retries is `O(r^2 / n)`.
///
/// # Panics
/// Panics if `r > n` (no distinct sample exists) or `out.len() < r`.
#[inline]
pub fn sample_distinct<R: RngCore>(rng: &mut R, n: u64, r: usize, out: &mut [u32]) {
    assert!(
        r as u64 <= n,
        "cannot sample {r} distinct values from 0..{n}"
    );
    let mut filled = 0;
    while filled < r {
        let candidate = uniform_u64(rng, n) as u32;
        if !out[..filled].contains(&candidate) {
            out[filled] = candidate;
            filled += 1;
        }
    }
}

/// Unbiased uniform sample from `0..n` using Lemire's multiply-shift method
/// with rejection.
#[inline]
pub fn uniform_u64<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected: retry (probability < n / 2^64, essentially never).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // First outputs for seed 0 from the reference implementation.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next(), 0xe220a8397b1dcdaf);
        assert_eq!(g.next(), 0x6e789e6aa1b965f4);
        assert_eq!(g.next(), 0x06c45d188009454f);
    }

    #[test]
    fn xoshiro_differs_across_seeds() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = Xoshiro256StarStar::new(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn xoshiro_streams_diverge() {
        let mut a = Xoshiro256StarStar::stream(9, 0);
        let mut b = Xoshiro256StarStar::stream(9, 1);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn jump_changes_state() {
        let mut a = Xoshiro256StarStar::new(3);
        let mut b = a.clone();
        b.jump();
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn uniform_is_in_range_and_covers() {
        let mut rng = SplitMix64::new(11);
        let n = 10;
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = uniform_u64(&mut rng, n);
            assert!(x < n);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn uniform_u64_is_roughly_unbiased() {
        let mut rng = Xoshiro256StarStar::new(5);
        let n = 3u64;
        let mut counts = [0u64; 3];
        let trials = 30_000;
        for _ in 0..trials {
            counts[uniform_u64(&mut rng, n) as usize] += 1;
        }
        for &c in &counts {
            let expected = trials as f64 / n as f64;
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn sample_distinct_gives_distinct() {
        let mut rng = SplitMix64::new(13);
        let mut buf = [0u32; 6];
        for _ in 0..500 {
            sample_distinct(&mut rng, 8, 6, &mut buf);
            let mut sorted = buf;
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert_ne!(w[0], w[1]);
            }
            assert!(sorted.iter().all(|&v| v < 8));
        }
    }

    #[test]
    #[should_panic]
    fn sample_distinct_rejects_impossible() {
        let mut rng = SplitMix64::new(13);
        let mut buf = [0u32; 5];
        sample_distinct(&mut rng, 3, 5, &mut buf);
    }

    #[test]
    fn fill_bytes_handles_remainders() {
        let mut rng = SplitMix64::new(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Not all zero with overwhelming probability.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mix64_is_bijective_on_sample() {
        // Spot-check injectivity on a small sample.
        let mut outs: Vec<u64> = (0..1000u64).map(mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 1000);
    }
}

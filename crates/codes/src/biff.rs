//! Biff codes — error correction (not just erasure recovery) from IBLT set
//! reconciliation (Mitzenmacher & Varghese, ref [17] of the paper).
//!
//! Idea: view a message `m[0..n]` as the set of pairs `{(i, m[i])}`. The
//! sender transmits the message plus a small IBLT *sketch* of that set,
//! sized for the anticipated number of corrupted symbols `t` (cells
//! `≈ 2.4t` for r=4 at load 0.7, independent of `n`). The receiver builds
//! the same sketch from what it received and subtracts: corrupted
//! positions surface as `(i, wrong)` with negative sign and `(i, right)`
//! with positive sign. Decoding the difference — parallel peeling — both
//! *locates* and *corrects* the errors.
//!
//! The pair `(i, value)` is packed into a single `u64` key (32-bit index,
//! 32-bit value), so the plain key-only IBLT suffices and all of its
//! recovery machinery (including the parallel subround kernel) is reused.

use peel_iblt::{AtomicIblt, Iblt, IbltConfig};

/// Pack a (position, symbol) pair into an IBLT key.
#[inline]
fn pack(pos: u32, symbol: u32) -> u64 {
    ((pos as u64) << 32) | symbol as u64
}

/// Unpack an IBLT key into (position, symbol).
#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// A Biff code sized for a maximum number of symbol errors.
#[derive(Debug, Clone, Copy)]
pub struct BiffCode {
    cfg: IbltConfig,
}

/// Outcome of Biff decoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BiffOutcome {
    /// Positions that were corrected.
    pub corrected: Vec<u32>,
    /// True iff the sketch difference decoded completely — i.e. all errors
    /// were found (w.h.p.). When `false`, more errors occurred than the
    /// sketch was provisioned for; the message may still contain errors.
    pub complete: bool,
}

impl BiffCode {
    /// A code correcting up to ~`max_errors` symbol corruptions. Each
    /// error consumes two sketch entries (the wrong pair and the right
    /// pair), so the sketch is provisioned for `2·max_errors` keys at
    /// load 0.7 with r = 4 hash functions.
    pub fn new(max_errors: usize, seed: u64) -> Self {
        let cfg = IbltConfig::for_load(4, (2 * max_errors).max(4), 0.7, seed);
        BiffCode { cfg }
    }

    /// Size of the sketch in cells (each cell is 24 bytes on the wire).
    pub fn sketch_cells(&self) -> usize {
        self.cfg.total_cells()
    }

    /// Sender: sketch a message.
    pub fn sketch(&self, message: &[u32]) -> Iblt {
        let t = AtomicIblt::new(self.cfg);
        let pairs: Vec<u64> = message
            .iter()
            .enumerate()
            .map(|(i, &s)| pack(i as u32, s))
            .collect();
        t.par_insert(&pairs);
        t.to_serial()
    }

    /// Receiver: correct `received` in place given the sender's sketch.
    pub fn correct(&self, received: &mut [u32], sender_sketch: &Iblt) -> BiffOutcome {
        let mine = self.sketch(received);
        let mut diff = sender_sketch.subtract(&mine);
        let rec = diff.recover_destructive();

        // positive = sender-only pairs = the true (pos, symbol) at corrupted
        // positions; negative = receiver-only pairs = the corruptions.
        let mut corrected = Vec::with_capacity(rec.positive.len());
        for &key in &rec.positive {
            let (pos, symbol) = unpack(key);
            if (pos as usize) < received.len() {
                received[pos as usize] = symbol;
                corrected.push(pos);
            }
        }
        corrected.sort_unstable();
        BiffOutcome {
            corrected,
            complete: rec.complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect()
    }

    #[test]
    fn corrects_scattered_errors() {
        let code = BiffCode::new(50, 1);
        let original = message(100_000);
        let sketch = code.sketch(&original);

        let mut corrupted = original.clone();
        let error_positions: Vec<usize> = (0..40).map(|i| i * 2_499 + 7).collect();
        for &p in &error_positions {
            corrupted[p] ^= 0xdead_beef;
        }

        let out = code.correct(&mut corrupted, &sketch);
        assert!(out.complete);
        assert_eq!(out.corrected.len(), 40);
        assert_eq!(corrupted, original);
    }

    #[test]
    fn no_errors_is_a_noop() {
        let code = BiffCode::new(10, 2);
        let original = message(5_000);
        let sketch = code.sketch(&original);
        let mut rx = original.clone();
        let out = code.correct(&mut rx, &sketch);
        assert!(out.complete);
        assert!(out.corrected.is_empty());
        assert_eq!(rx, original);
    }

    #[test]
    fn sketch_size_independent_of_message_length() {
        let code = BiffCode::new(100, 3);
        let cells = code.sketch_cells();
        // Sketch a tiny and a huge message: same sketch size.
        assert_eq!(code.sketch(&message(100)).cells().len(), cells);
        assert_eq!(code.sketch(&message(200_000)).cells().len(), cells);
        // And the size is O(max_errors), not O(n).
        assert!(cells < 400, "sketch should be ~2.4 cells/error: {cells}");
    }

    #[test]
    fn too_many_errors_reports_incomplete() {
        let code = BiffCode::new(10, 4);
        let original = message(10_000);
        let sketch = code.sketch(&original);
        let mut corrupted = original.clone();
        for p in 0..200 {
            corrupted[p * 50] ^= 1;
        }
        let out = code.correct(&mut corrupted, &sketch);
        assert!(!out.complete, "200 errors cannot fit a 10-error sketch");
        // Anything it did fix is a true fix.
        for &p in &out.corrected {
            assert_eq!(corrupted[p as usize], original[p as usize]);
        }
    }

    #[test]
    fn burst_errors_also_correct() {
        let code = BiffCode::new(64, 5);
        let original = message(50_000);
        let sketch = code.sketch(&original);
        let mut corrupted = original.clone();
        for (i, c) in corrupted[20_000..20_050].iter_mut().enumerate() {
            let p = 20_000 + i;
            *c = c.wrapping_add(p as u32 + 1);
        }
        let out = code.correct(&mut corrupted, &sketch);
        assert!(out.complete);
        assert_eq!(out.corrected.len(), 50);
        assert_eq!(corrupted, original);
    }
}

//! # peel-codes — peeling-based erasure codes
//!
//! A systematic erasure code in the style the paper sketches in Section 6
//! (and of Biff codes / simple LDPC erasure codes, refs [14, 17]): every
//! message symbol is XORed into `r` *check cells*, one per check group.
//! The receiver gets the message and check symbols with some of each
//! erased; decoding peels:
//!
//! * vertices = received check cells,
//! * edges    = erased (unknown) message symbols,
//! * a check cell covering exactly one unknown symbol reveals it
//!   (degree-1 vertex ⇔ "pure" cell),
//!
//! so full recovery succeeds iff the 2-core of that hypergraph is empty —
//! when all checks arrive, exactly the condition *erased symbols / check
//! cells `< c*_{2,r}`*.
//!
//! Two decoders are provided: a serial worklist decoder and a parallel
//! round/subround decoder with the same subtable discipline as the paper's
//! IBLT implementation (check groups are the subtables).
//!
//! ```
//! use peel_codes::{PeelingCode, Symbol};
//!
//! let code = PeelingCode::new(1_000, 1_000, 4, 7); // 1000 msg, 1000 checks
//! let message: Vec<u64> = (0..1_000u64).map(|i| i.wrapping_mul(0x9e37)).collect();
//! let checks = code.encode(&message);
//!
//! // Erase 60% of the message (load 0.6 < c*_{2,4} ≈ 0.772) and no checks.
//! let mut rx: Vec<Symbol> = message.iter().map(|&s| Some(s)).collect();
//! for i in 0..600 { rx[i] = None; }
//! let rx_checks: Vec<Symbol> = checks.iter().map(|&s| Some(s)).collect();
//!
//! let out = code.decode(&mut rx, &rx_checks);
//! assert!(out.complete);
//! assert_eq!(rx.iter().map(|s| s.unwrap()).collect::<Vec<_>>(), message);
//! ```

#![warn(missing_docs)]

pub mod biff;
pub mod lt;

pub use biff::{BiffCode, BiffOutcome};
pub use lt::{LtCode, LtDecode, LtSymbol, RobustSoliton};

use rayon::prelude::*;
// ordering: Relaxed throughout — check-cell updates are commutative RMWs
// (fetch_xor on sums, fetch_sub on degree), per-index recovery flags are
// written once, and decode rounds are separated by rayon fork-join
// barriers that carry the cross-round happens-before.
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

/// A possibly-erased symbol on the wire.
pub type Symbol = Option<u64>;

/// The 64-bit SplitMix finalizer used for symbol→cell placement.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Outcome of a decode attempt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecodeResult {
    /// Number of erased message symbols recovered.
    pub recovered: usize,
    /// True iff every erased symbol was recovered.
    pub complete: bool,
    /// Peeling rounds used (serial decoder reports worklist *passes* = 1).
    pub rounds: u32,
    /// Subrounds used by the parallel decoder (0 for the serial one).
    pub subrounds: u32,
}

/// A systematic peeling erasure code with `r` check groups.
#[derive(Debug, Clone)]
pub struct PeelingCode {
    message_len: usize,
    group_size: usize,
    r: usize,
    group_seeds: Vec<u64>,
}

impl PeelingCode {
    /// Code for messages of `message_len` symbols with `check_cells` total
    /// check symbols split into `r` groups (rounded up to a multiple of
    /// `r`). For reliable decoding of an erasure fraction `p`, size so that
    /// `p·message_len / check_cells < c*_{2,r}`.
    pub fn new(message_len: usize, check_cells: usize, r: usize, seed: u64) -> Self {
        assert!(r >= 2, "need at least 2 check groups");
        assert!(message_len > 0 && check_cells >= r);
        let group_size = check_cells.div_ceil(r);
        PeelingCode {
            message_len,
            group_size,
            r,
            group_seeds: (0..r).map(|j| mix64(seed ^ mix64(j as u64 + 1))).collect(),
        }
    }

    /// Message length in symbols.
    pub fn message_len(&self) -> usize {
        self.message_len
    }

    /// Total number of check cells (`r × group size`).
    pub fn check_cells(&self) -> usize {
        self.r * self.group_size
    }

    /// Number of check groups `r`.
    pub fn groups(&self) -> usize {
        self.r
    }

    /// Check cell (global index) covering message symbol `i` in group `g`.
    #[inline]
    fn cell_of(&self, g: usize, i: usize) -> usize {
        let h = mix64(i as u64 ^ self.group_seeds[g]);
        g * self.group_size + ((h as u128 * self.group_size as u128) >> 64) as usize
    }

    /// Encode: produce the check symbols for `message`.
    ///
    /// # Panics
    /// Panics if `message.len() != message_len`.
    pub fn encode(&self, message: &[u64]) -> Vec<u64> {
        assert_eq!(message.len(), self.message_len);
        let mut checks = vec![0u64; self.check_cells()];
        for (i, &s) in message.iter().enumerate() {
            for g in 0..self.r {
                checks[self.cell_of(g, i)] ^= s;
            }
        }
        checks
    }

    /// Parallel encode using per-group passes (group cells are disjoint, so
    /// each group encodes independently; within a group, atomic XOR).
    pub fn par_encode(&self, message: &[u64]) -> Vec<u64> {
        assert_eq!(message.len(), self.message_len);
        let checks: Vec<AtomicU64> = (0..self.check_cells()).map(|_| AtomicU64::new(0)).collect();
        message.par_iter().enumerate().for_each(|(i, &s)| {
            for g in 0..self.r {
                checks[self.cell_of(g, i)].fetch_xor(s, Relaxed);
            }
        });
        checks.into_iter().map(|a| a.into_inner()).collect()
    }

    /// Shared decode setup: returns `(residual, idx_sum, deg, available,
    /// unknowns)` for the given reception state.
    #[allow(clippy::type_complexity)]
    fn prepare(
        &self,
        message: &[Symbol],
        checks: &[Symbol],
    ) -> (Vec<u64>, Vec<u64>, Vec<u32>, Vec<bool>, usize) {
        assert_eq!(message.len(), self.message_len);
        assert_eq!(checks.len(), self.check_cells());
        let cells = self.check_cells();
        let mut residual = vec![0u64; cells];
        let mut idx_sum = vec![0u64; cells];
        let mut deg = vec![0u32; cells];
        let mut available = vec![false; cells];
        for (c, &recv) in checks.iter().enumerate() {
            if let Some(v) = recv {
                available[c] = true;
                residual[c] = v;
            }
        }
        let mut unknowns = 0usize;
        for (i, &sym) in message.iter().enumerate() {
            match sym {
                Some(v) => {
                    // Known symbol: cancel its contribution from its cells.
                    for g in 0..self.r {
                        let c = self.cell_of(g, i);
                        if available[c] {
                            residual[c] ^= v;
                        }
                    }
                }
                None => {
                    unknowns += 1;
                    for g in 0..self.r {
                        let c = self.cell_of(g, i);
                        if available[c] {
                            deg[c] += 1;
                            idx_sum[c] ^= i as u64;
                        }
                    }
                }
            }
        }
        (residual, idx_sum, deg, available, unknowns)
    }

    /// Serial worklist decode. Recovers erased entries of `message` in
    /// place.
    pub fn decode(&self, message: &mut [Symbol], checks: &[Symbol]) -> DecodeResult {
        let (mut residual, mut idx_sum, mut deg, available, unknowns) =
            self.prepare(message, checks);

        let mut queue: Vec<usize> = (0..self.check_cells())
            .filter(|&c| available[c] && deg[c] == 1)
            .collect();
        let mut recovered = 0usize;
        while let Some(c) = queue.pop() {
            if deg[c] != 1 {
                continue; // stale
            }
            let i = idx_sum[c] as usize;
            let v = residual[c];
            debug_assert!(message[i].is_none());
            message[i] = Some(v);
            recovered += 1;
            for g in 0..self.r {
                let cg = self.cell_of(g, i);
                if available[cg] {
                    residual[cg] ^= v;
                    idx_sum[cg] ^= i as u64;
                    deg[cg] -= 1;
                    if deg[cg] == 1 {
                        queue.push(cg);
                    }
                }
            }
        }
        DecodeResult {
            recovered,
            complete: recovered == unknowns,
            rounds: 1,
            subrounds: 0,
        }
    }

    /// Parallel decode with the subtable/subround discipline: subround `s`
    /// scans check group `s mod r` for degree-1 cells in parallel, then
    /// applies all recoveries in parallel with atomic updates.
    pub fn par_decode(&self, message: &mut [Symbol], checks: &[Symbol]) -> DecodeResult {
        let (residual, idx_sum, deg, available, unknowns) = self.prepare(message, checks);
        let residual: Vec<AtomicU64> = residual.into_iter().map(AtomicU64::new).collect();
        let idx_sum: Vec<AtomicU64> = idx_sum.into_iter().map(AtomicU64::new).collect();
        let deg: Vec<AtomicU32> = deg.into_iter().map(AtomicU32::new).collect();

        // Recovered values land here; `message` is updated at the end.
        let recovered_val: Vec<AtomicU64> =
            (0..self.message_len).map(|_| AtomicU64::new(0)).collect();
        let recovered_flag: Vec<AtomicU32> =
            (0..self.message_len).map(|_| AtomicU32::new(0)).collect();

        let mut subround = 0u32;
        let mut last_productive = 0u32;
        let mut idle_streak = 0usize;
        let mut recovered = 0usize;

        while idle_streak < self.r {
            let g = (subround as usize) % self.r;
            subround += 1;
            let base = g * self.group_size;

            // Phase 1: find degree-1 available cells in group g.
            let found: Vec<(usize, u64)> = (base..base + self.group_size)
                .into_par_iter()
                .filter_map(|c| {
                    (available[c] && deg[c].load(Relaxed) == 1)
                        .then(|| (idx_sum[c].load(Relaxed) as usize, residual[c].load(Relaxed)))
                })
                .collect();

            if found.is_empty() {
                idle_streak += 1;
                continue;
            }
            idle_streak = 0;
            last_productive = subround;
            recovered += found.len();

            // Phase 2: apply every recovery (atomic updates; two recoveries
            // may share cells in *other* groups).
            found.par_iter().for_each(|&(i, v)| {
                recovered_val[i].store(v, Relaxed);
                recovered_flag[i].store(1, Relaxed);
                for h in 0..self.r {
                    let c = self.cell_of(h, i);
                    if available[c] {
                        residual[c].fetch_xor(v, Relaxed);
                        idx_sum[c].fetch_xor(i as u64, Relaxed);
                        deg[c].fetch_sub(1, Relaxed);
                    }
                }
            });
        }

        for (i, slot) in message.iter_mut().enumerate() {
            if slot.is_none() && recovered_flag[i].load(Relaxed) == 1 {
                *slot = Some(recovered_val[i].load(Relaxed));
            }
        }
        DecodeResult {
            recovered,
            complete: recovered == unknowns,
            rounds: last_productive.div_ceil(self.r as u32),
            subrounds: last_productive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| mix64(i ^ 0x1234)).collect()
    }

    fn erase_prefix(message: &[u64], erased: usize) -> Vec<Symbol> {
        message
            .iter()
            .enumerate()
            .map(|(i, &s)| if i < erased { None } else { Some(s) })
            .collect()
    }

    #[test]
    fn encode_is_xor_of_symbols() {
        let code = PeelingCode::new(50, 64, 4, 1);
        let m = msg(50);
        let checks = code.encode(&m);
        // XOR of all checks in one group == XOR of all message symbols
        // (each symbol contributes once per group).
        let all: u64 = m.iter().fold(0, |a, &b| a ^ b);
        for g in 0..4 {
            let group_xor: u64 = checks[g * 16..(g + 1) * 16].iter().fold(0, |a, &b| a ^ b);
            assert_eq!(group_xor, all, "group {g}");
        }
    }

    #[test]
    fn par_encode_matches_serial() {
        let code = PeelingCode::new(2_000, 2_048, 3, 2);
        let m = msg(2_000);
        assert_eq!(code.encode(&m), code.par_encode(&m));
    }

    #[test]
    fn decode_below_threshold_succeeds() {
        let code = PeelingCode::new(10_000, 10_000, 4, 3);
        let m = msg(10_000);
        let checks = code.encode(&m);
        // 70% of the message erased: load 0.7 < 0.772.
        let mut rx = erase_prefix(&m, 7_000);
        let rx_checks: Vec<Symbol> = checks.iter().map(|&c| Some(c)).collect();
        let out = code.decode(&mut rx, &rx_checks);
        assert!(out.complete);
        assert_eq!(out.recovered, 7_000);
        for (got, want) in rx.iter().zip(&m) {
            assert_eq!(got.unwrap(), *want);
        }
    }

    #[test]
    fn decode_above_threshold_fails() {
        let code = PeelingCode::new(10_000, 10_000, 4, 4);
        let m = msg(10_000);
        let checks = code.encode(&m);
        let mut rx = erase_prefix(&m, 8_500); // load 0.85 > 0.772
        let rx_checks: Vec<Symbol> = checks.iter().map(|&c| Some(c)).collect();
        let out = code.decode(&mut rx, &rx_checks);
        assert!(!out.complete);
        assert!(out.recovered < 8_500);
    }

    #[test]
    fn par_decode_matches_serial() {
        let code = PeelingCode::new(5_000, 5_000, 4, 5);
        let m = msg(5_000);
        let checks = code.encode(&m);
        let rx_checks: Vec<Symbol> = checks.iter().map(|&c| Some(c)).collect();

        let mut rx_a = erase_prefix(&m, 3_400);
        let a = code.decode(&mut rx_a, &rx_checks);
        let mut rx_b = erase_prefix(&m, 3_400);
        let b = code.par_decode(&mut rx_b, &rx_checks);
        assert_eq!(a.complete, b.complete);
        assert_eq!(a.recovered, b.recovered);
        assert_eq!(rx_a, rx_b);
        // Subround count is in the Appendix-B ballpark.
        assert!(b.subrounds >= 8 && b.subrounds <= 40, "{}", b.subrounds);
    }

    #[test]
    fn erased_checks_degrade_gracefully() {
        let code = PeelingCode::new(10_000, 12_000, 4, 6);
        let m = msg(10_000);
        let checks = code.encode(&m);
        // Erase 40% of message and 10% of checks.
        let mut rx = erase_prefix(&m, 4_000);
        let rx_checks: Vec<Symbol> = checks
            .iter()
            .enumerate()
            .map(|(i, &c)| if i % 10 == 0 { None } else { Some(c) })
            .collect();
        let out = code.par_decode(&mut rx, &rx_checks);
        assert!(out.complete, "effective load is still low: {out:?}");
        for (got, want) in rx.iter().zip(&m) {
            assert_eq!(got.unwrap(), *want);
        }
    }

    #[test]
    fn symbol_with_all_checks_erased_is_unrecoverable() {
        let code = PeelingCode::new(100, 100, 3, 7);
        let m = msg(100);
        let checks = code.encode(&m);
        let mut rx = erase_prefix(&m, 1); // only symbol 0 erased
                                          // Erase exactly symbol 0's check cells.
        let dead: Vec<usize> = (0..3).map(|g| code.cell_of(g, 0)).collect();
        let rx_checks: Vec<Symbol> = checks
            .iter()
            .enumerate()
            .map(|(i, &c)| if dead.contains(&i) { None } else { Some(c) })
            .collect();
        let out = code.decode(&mut rx, &rx_checks);
        assert!(!out.complete);
        assert_eq!(out.recovered, 0);
        assert!(rx[0].is_none());
    }

    #[test]
    fn nothing_erased_is_trivially_complete() {
        let code = PeelingCode::new(100, 128, 3, 8);
        let m = msg(100);
        let checks = code.encode(&m);
        let mut rx: Vec<Symbol> = m.iter().map(|&s| Some(s)).collect();
        let rx_checks: Vec<Symbol> = checks.iter().map(|&c| Some(c)).collect();
        let out = code.decode(&mut rx, &rx_checks);
        assert!(out.complete);
        assert_eq!(out.recovered, 0);
    }

    #[test]
    #[should_panic]
    fn encode_rejects_wrong_length() {
        let code = PeelingCode::new(10, 16, 3, 9);
        code.encode(&[1, 2, 3]);
    }
}

//! LT (Luby Transform) fountain codes — peeling with *irregular* degrees.
//!
//! The paper's erasure-code discussion (Section 6, refs [14, 17]) covers
//! the fixed-arity case its theory analyzes; practical rateless codes use
//! a random degree per encoded symbol, drawn from the (robust) soliton
//! distribution, tuned so that the peeling decoder keeps finding degree-1
//! symbols until the whole message is released. This module implements the
//! classic construction:
//!
//! * an encoded symbol's *id* deterministically seeds its degree and
//!   neighbor set, so only `(id, value)` travels on the wire;
//! * decoding is the same peeling process as everywhere else in this
//!   workspace — repeatedly consume an encoded symbol with exactly one
//!   unresolved neighbor — provided serially and as synchronous parallel
//!   rounds.
//!
//! With the robust soliton distribution, `k + O(√k · ln²(k/δ))` received
//! symbols decode a k-symbol message with probability ≥ 1 − δ.

use rayon::prelude::*;
// ordering: Relaxed throughout — symbol-cell updates are commutative RMWs
// (fetch_sub on degree, fetch_xor on the sums), recovery claims are
// decided by a single compare_exchange, and peeling rounds are separated
// by rayon fork-join barriers that carry the cross-round happens-before.
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

/// The 64-bit SplitMix finalizer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Tiny deterministic stream generator for per-symbol randomness.
struct Stream(u64);

impl Stream {
    #[inline]
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.0)
    }

    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    #[inline]
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The robust soliton distribution over degrees `1..=k`.
#[derive(Debug, Clone)]
pub struct RobustSoliton {
    cumulative: Vec<f64>,
}

impl RobustSoliton {
    /// Standard parameterization: spike location `k/R` with
    /// `R = c·ln(k/δ)·√k`.
    pub fn new(k: usize, c: f64, delta: f64) -> Self {
        assert!(k >= 2 && c > 0.0 && delta > 0.0 && delta < 1.0);
        let kf = k as f64;
        let r = c * (kf / delta).ln() * kf.sqrt();
        let spike = ((kf / r).floor() as usize).clamp(1, k);

        let mut weights = vec![0.0f64; k + 1];
        // Ideal soliton ρ.
        weights[1] = 1.0 / kf;
        for (d, w) in weights.iter_mut().enumerate().take(k + 1).skip(2) {
            *w = 1.0 / (d as f64 * (d as f64 - 1.0));
        }
        // Robust addition τ.
        for (d, w) in weights.iter_mut().enumerate().take(spike).skip(1) {
            *w += r / (d as f64 * kf);
        }
        weights[spike] += r * (r / delta).ln() / kf;

        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(k);
        let mut acc = 0.0;
        for &w in &weights[1..] {
            acc += w / total;
            cumulative.push(acc);
        }
        RobustSoliton { cumulative }
    }

    /// Sample a degree from the distribution.
    fn sample(&self, s: &mut Stream) -> usize {
        let u = s.unit();
        // Binary search the cumulative table.
        match self
            .cumulative
            .binary_search_by(|p| p.partial_cmp(&u).unwrap())
        {
            Ok(i) | Err(i) => (i + 1).min(self.cumulative.len()),
        }
    }

    /// Expected degree (used in tests and overhead estimates).
    pub fn mean_degree(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (i, &c) in self.cumulative.iter().enumerate() {
            mean += (i as f64 + 1.0) * (c - prev);
            prev = c;
        }
        mean
    }
}

/// An encoded symbol on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LtSymbol {
    /// Symbol id (drives degree and neighbor derivation).
    pub id: u64,
    /// XOR of the neighbor message symbols.
    pub value: u64,
}

/// Outcome of an LT decode attempt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LtDecode {
    /// Message symbols recovered.
    pub recovered: usize,
    /// True iff the whole message was recovered.
    pub complete: bool,
    /// Peeling rounds used by the parallel decoder (1 for serial).
    pub rounds: u32,
}

/// An LT code over `message_len` symbols.
#[derive(Debug, Clone)]
pub struct LtCode {
    message_len: usize,
    seed: u64,
    soliton: RobustSoliton,
}

impl LtCode {
    /// Code with the conventional robust-soliton parameters
    /// `c = 0.03, δ = 0.05` (small c keeps the decode overhead near 15-20% at moderate k).
    pub fn new(message_len: usize, seed: u64) -> Self {
        LtCode::with_params(message_len, seed, 0.03, 0.05)
    }

    /// Code with explicit soliton parameters.
    pub fn with_params(message_len: usize, seed: u64, c: f64, delta: f64) -> Self {
        assert!(message_len >= 2);
        LtCode {
            message_len,
            seed,
            soliton: RobustSoliton::new(message_len, c, delta),
        }
    }

    /// Message length `k`.
    pub fn message_len(&self) -> usize {
        self.message_len
    }

    /// The neighbor set of encoded symbol `id` (distinct message indices).
    pub fn neighbors(&self, id: u64) -> Vec<u32> {
        let mut s = Stream(self.seed ^ mix64(id));
        let d = self.soliton.sample(&mut s);
        let mut out: Vec<u32> = Vec::with_capacity(d);
        while out.len() < d {
            let cand = s.below(self.message_len as u64) as u32;
            if !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }

    /// Encode one symbol.
    pub fn encode_symbol(&self, id: u64, message: &[u64]) -> LtSymbol {
        assert_eq!(message.len(), self.message_len);
        let value = self
            .neighbors(id)
            .iter()
            .fold(0u64, |acc, &i| acc ^ message[i as usize]);
        LtSymbol { id, value }
    }

    /// Encode a batch of symbols with ids `0..count` (in parallel).
    pub fn encode_block(&self, message: &[u64], count: usize) -> Vec<LtSymbol> {
        (0..count as u64)
            .into_par_iter()
            .map(|id| self.encode_symbol(id, message))
            .collect()
    }

    /// Serial peeling decode from any subset of encoded symbols.
    pub fn decode(&self, symbols: &[LtSymbol]) -> (Vec<Option<u64>>, LtDecode) {
        let k = self.message_len;
        let mut message: Vec<Option<u64>> = vec![None; k];
        // Per received symbol: remaining degree, running XOR value, XOR of
        // unresolved neighbor indices.
        let mut deg: Vec<u32> = Vec::with_capacity(symbols.len());
        let mut val: Vec<u64> = Vec::with_capacity(symbols.len());
        let mut idx: Vec<u64> = Vec::with_capacity(symbols.len());
        // Message index → incident received symbols.
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (s, sym) in symbols.iter().enumerate() {
            let nb = self.neighbors(sym.id);
            deg.push(nb.len() as u32);
            val.push(sym.value);
            idx.push(nb.iter().fold(0u64, |a, &i| a ^ i as u64));
            for &i in &nb {
                incident[i as usize].push(s as u32);
            }
        }

        let mut queue: Vec<usize> = (0..symbols.len()).filter(|&s| deg[s] == 1).collect();
        let mut recovered = 0usize;
        while let Some(s) = queue.pop() {
            if deg[s] != 1 {
                continue;
            }
            let i = idx[s] as usize;
            if message[i].is_some() {
                // Released concurrently by another symbol: just consume.
                deg[s] = 0;
                continue;
            }
            let v = val[s];
            message[i] = Some(v);
            recovered += 1;
            for &t in &incident[i] {
                let t = t as usize;
                if deg[t] > 0 {
                    deg[t] -= 1;
                    val[t] ^= v;
                    idx[t] ^= i as u64;
                    if deg[t] == 1 {
                        queue.push(t);
                    }
                }
            }
        }
        let outcome = LtDecode {
            recovered,
            complete: recovered == k,
            rounds: 1,
        };
        (message, outcome)
    }

    /// Parallel round-synchronous decode: each round releases every message
    /// symbol covered by a degree-1 encoded symbol, in parallel.
    pub fn par_decode(&self, symbols: &[LtSymbol]) -> (Vec<Option<u64>>, LtDecode) {
        let k = self.message_len;
        let neighbor_lists: Vec<Vec<u32>> = symbols
            .par_iter()
            .map(|sym| self.neighbors(sym.id))
            .collect();
        let deg: Vec<AtomicU32> = neighbor_lists
            .iter()
            .map(|nb| AtomicU32::new(nb.len() as u32))
            .collect();
        let val: Vec<AtomicU64> = symbols.iter().map(|s| AtomicU64::new(s.value)).collect();
        let idx: Vec<AtomicU64> = neighbor_lists
            .iter()
            .map(|nb| AtomicU64::new(nb.iter().fold(0u64, |a, &i| a ^ i as u64)))
            .collect();
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (s, nb) in neighbor_lists.iter().enumerate() {
            for &i in nb {
                incident[i as usize].push(s as u32);
            }
        }

        let claimed: Vec<AtomicU32> = (0..k).map(|_| AtomicU32::new(0)).collect();
        let value_out: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        let mut rounds = 0u32;
        let mut recovered = 0usize;

        loop {
            // Phase 1: find degree-1 symbols and claim their releases (two
            // degree-1 symbols may cover the same message index; the CAS
            // ensures one release per index).
            let released: Vec<(usize, u64)> = (0..symbols.len())
                .into_par_iter()
                .filter_map(|s| {
                    if deg[s].load(Relaxed) != 1 {
                        return None;
                    }
                    let i = idx[s].load(Relaxed) as usize;
                    let v = val[s].load(Relaxed);
                    if claimed[i].compare_exchange(0, 1, Relaxed, Relaxed).is_ok() {
                        value_out[i].store(v, Relaxed);
                        Some((i, v))
                    } else {
                        None
                    }
                })
                .collect();
            if released.is_empty() {
                break;
            }
            rounds += 1;
            recovered += released.len();

            // Phase 2: propagate each released symbol to its incident
            // encoded symbols (atomic updates; a symbol may receive several
            // releases in one round).
            released.par_iter().for_each(|&(i, v)| {
                for &t in &incident[i] {
                    let t = t as usize;
                    deg[t].fetch_sub(1, Relaxed);
                    val[t].fetch_xor(v, Relaxed);
                    idx[t].fetch_xor(i as u64, Relaxed);
                }
            });
        }

        let message: Vec<Option<u64>> = (0..k)
            .map(|i| (claimed[i].load(Relaxed) == 1).then(|| value_out[i].load(Relaxed)))
            .collect();
        let outcome = LtDecode {
            recovered,
            complete: recovered == k,
            rounds,
        };
        (message, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(k: usize) -> Vec<u64> {
        (0..k as u64).map(|i| mix64(i ^ 0xbeef)).collect()
    }

    #[test]
    fn soliton_is_a_distribution() {
        let s = RobustSoliton::new(1000, 0.1, 0.05);
        let last = *s.cumulative.last().unwrap();
        assert!((last - 1.0).abs() < 1e-9);
        // Mean degree is O(ln k): roughly 4-12 for k=1000.
        let mean = s.mean_degree();
        assert!(mean > 3.0 && mean < 15.0, "mean degree {mean}");
    }

    #[test]
    fn neighbors_are_deterministic_and_distinct() {
        let code = LtCode::new(500, 42);
        for id in 0..200u64 {
            let a = code.neighbors(id);
            let b = code.neighbors(id);
            assert_eq!(a, b);
            let mut s = a.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), a.len(), "neighbors must be distinct");
            assert!(a.iter().all(|&i| (i as usize) < 500));
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn decodes_with_modest_overhead() {
        let k = 2_000;
        let code = LtCode::new(k, 7);
        let message = msg(k);
        // 25% overhead is comfortably enough for k = 2000 at these parameters.
        let symbols = code.encode_block(&message, (k as f64 * 1.25) as usize);
        let (decoded, out) = code.decode(&symbols);
        assert!(out.complete, "decode failed: {} / {k}", out.recovered);
        for (d, w) in decoded.iter().zip(&message) {
            assert_eq!(d.unwrap(), *w);
        }
    }

    #[test]
    fn parallel_decode_matches_serial() {
        let k = 1_500;
        let code = LtCode::new(k, 8);
        let message = msg(k);
        let symbols = code.encode_block(&message, (k as f64 * 1.3) as usize);
        let (a, oa) = code.decode(&symbols);
        let (b, ob) = code.par_decode(&symbols);
        assert_eq!(oa.complete, ob.complete);
        assert_eq!(oa.recovered, ob.recovered);
        assert_eq!(a, b);
        // Parallel decode takes log-ish rounds, far fewer than k.
        assert!(ob.rounds > 1 && ob.rounds < 200, "rounds {}", ob.rounds);
    }

    #[test]
    fn insufficient_symbols_decode_partially_and_soundly() {
        let k = 1_000;
        let code = LtCode::new(k, 9);
        let message = msg(k);
        let symbols = code.encode_block(&message, k / 2);
        let (decoded, out) = code.par_decode(&symbols);
        assert!(!out.complete);
        assert!(out.recovered < k);
        for (d, w) in decoded.iter().zip(&message) {
            if let Some(v) = d {
                assert_eq!(v, w, "fabricated symbol");
            }
        }
    }

    #[test]
    fn losing_symbols_is_survivable_rateless() {
        // Fountain property: ANY sufficiently large subset decodes.
        let k = 1_000;
        let code = LtCode::new(k, 10);
        let message = msg(k);
        let symbols = code.encode_block(&message, 2 * k);
        // Keep an arbitrary slice of ~1.25k symbols from the middle.
        let subset = &symbols[500..500 + (k as f64 * 1.35) as usize];
        let (decoded, out) = code.decode(subset);
        assert!(out.complete);
        for (d, w) in decoded.iter().zip(&message) {
            assert_eq!(d.unwrap(), *w);
        }
    }
}

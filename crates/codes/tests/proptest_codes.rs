//! Property-based tests for the erasure code: decoders never fabricate
//! data, serial and parallel agree on arbitrary erasure patterns, and
//! encoding is linear.

use proptest::prelude::*;

use peel_codes::{PeelingCode, Symbol};

#[derive(Debug, Clone)]
struct Scenario {
    message: Vec<u64>,
    erase_msg: Vec<bool>,
    erase_chk: Vec<bool>,
    r: usize,
    check_cells: usize,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..=4, 10usize..=120, 0u64..1000).prop_flat_map(|(r, n, seed)| {
        let checks = (n + r).max(2 * r);
        (
            proptest::collection::vec(any::<u64>(), n),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(proptest::bool::weighted(0.15), checks),
        )
            .prop_map(move |(message, erase_msg, erase_chk)| Scenario {
                message,
                erase_msg,
                erase_chk,
                r,
                check_cells: checks,
                seed,
            })
    })
}

impl Scenario {
    fn rx(&self, code: &PeelingCode) -> (Vec<Symbol>, Vec<Symbol>) {
        let checks = code.encode(&self.message);
        let rx_msg: Vec<Symbol> = self
            .message
            .iter()
            .zip(&self.erase_msg)
            .map(|(&s, &e)| if e { None } else { Some(s) })
            .collect();
        let rx_chk: Vec<Symbol> = checks
            .iter()
            .zip(self.erase_chk.iter().cycle())
            .map(|(&c, &e)| if e { None } else { Some(c) })
            .collect();
        (rx_msg, rx_chk)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: every symbol the decoder fills in equals the original,
    /// complete or not; `complete` is truthful.
    #[test]
    fn decode_never_fabricates(sc in arb_scenario()) {
        let code = PeelingCode::new(sc.message.len(), sc.check_cells, sc.r, sc.seed);
        let (mut rx, rx_chk) = sc.rx(&code);
        let erased_before = rx.iter().filter(|s| s.is_none()).count();
        let out = code.decode(&mut rx, &rx_chk);

        let mut still_missing = 0usize;
        for (got, want) in rx.iter().zip(&sc.message) {
            match got {
                Some(v) => prop_assert_eq!(v, want, "decoder fabricated a symbol"),
                None => still_missing += 1,
            }
        }
        prop_assert_eq!(out.recovered, erased_before - still_missing);
        prop_assert_eq!(out.complete, still_missing == 0);
    }

    /// Serial and parallel decoders recover exactly the same symbols.
    #[test]
    fn parallel_decoder_matches_serial(sc in arb_scenario()) {
        let code = PeelingCode::new(sc.message.len(), sc.check_cells, sc.r, sc.seed);
        let (mut rx_a, rx_chk) = sc.rx(&code);
        let (mut rx_b, _) = sc.rx(&code);
        let a = code.decode(&mut rx_a, &rx_chk);
        let b = code.par_decode(&mut rx_b, &rx_chk);
        prop_assert_eq!(a.complete, b.complete);
        prop_assert_eq!(a.recovered, b.recovered);
        prop_assert_eq!(rx_a, rx_b);
    }

    /// Linearity: encode(m1 ^ m2) == encode(m1) ^ encode(m2).
    #[test]
    fn encoding_is_linear(
        m1 in proptest::collection::vec(any::<u64>(), 40),
        m2 in proptest::collection::vec(any::<u64>(), 40),
        seed in 0u64..100,
    ) {
        let code = PeelingCode::new(40, 48, 3, seed);
        let xored: Vec<u64> = m1.iter().zip(&m2).map(|(a, b)| a ^ b).collect();
        let c1 = code.encode(&m1);
        let c2 = code.encode(&m2);
        let cx = code.encode(&xored);
        for ((a, b), x) in c1.iter().zip(&c2).zip(&cx) {
            prop_assert_eq!(a ^ b, *x);
        }
    }

    /// With nothing erased, decoding is a no-op that reports completeness.
    #[test]
    fn no_erasures_is_identity(
        message in proptest::collection::vec(any::<u64>(), 1..80),
        seed in 0u64..100,
    ) {
        let code = PeelingCode::new(message.len(), message.len() + 4, 3, seed);
        let checks = code.encode(&message);
        let mut rx: Vec<Symbol> = message.iter().map(|&s| Some(s)).collect();
        let rx_chk: Vec<Symbol> = checks.iter().map(|&c| Some(c)).collect();
        let out = code.par_decode(&mut rx, &rx_chk);
        prop_assert!(out.complete);
        prop_assert_eq!(out.recovered, 0);
        prop_assert_eq!(rx.iter().map(|s| s.unwrap()).collect::<Vec<_>>(), message);
    }
}

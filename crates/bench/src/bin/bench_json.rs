//! Machine-readable benchmark: the core peeling engines (per-engine
//! ns/edge across load factors, with the adaptive engine audited against
//! the dense/frontier envelope, plus pooled-vs-allocating repeated
//! reconcile throughput), the full wire path (TCP loopback server +
//! client), the in-process service core, and the primary→follower
//! replication path (ingest-to-convergence catch-up time plus observed
//! stream lag), and the observability layer's instrumentation overhead
//! (tracing subscriber disabled vs the flight recorder installed).
//! Measurements are written to `BENCH_service.json` so the repo's perf
//! trajectory can be tracked across PRs.
//!
//! ```sh
//! cargo run --release -p peel-bench --bin bench_json             # laptop scale
//! cargo run --release -p peel-bench --bin bench_json -- --full   # 10× keys
//! cargo run --release -p peel-bench --bin bench_json -- --out results.json
//! # CI smoke: just the core-engine section, small sizes, fast:
//! cargo run --release -p peel-bench --bin bench_json -- --section peel --smoke
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use std::sync::Arc;

use peel_bench::Args;
use peel_core::{peel_parallel_in, peel_rounds_serial, ParallelOpts, PeelWorkspace, Strategy};
use peel_graph::models::Gnm;
use peel_graph::rng::Xoshiro256StarStar;
use peel_iblt::AtomicIblt;
use peel_service::wire::{decode_response, encode_request, read_frame, write_frame, Request};
use peel_service::{
    apply_replication_stream, build_shard_digests, read_from_mesh, sim_duplex, stream_to_follower,
    BlockingServer, Client, Follower, FollowerConfig, PeelService, ReactorConfig, ReplicationHub,
    Server, ServiceConfig, StreamConfig,
};
use rand::RngCore;

fn keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn cfg(shards: u32, diff_budget: usize) -> ServiceConfig {
    ServiceConfig {
        batch_size: 1024,
        queue_depth: 64,
        ..ServiceConfig::for_diff_budget(shards, diff_budget)
    }
}

struct Measurement {
    ingest_ms: f64,
    reconcile_ms: f64,
    subrounds_max: u32,
    complete: bool,
    diff_found: usize,
}

/// One full cycle — seed N keys, reconcile a `diff`-key difference —
/// through a closure that runs the two phases and reports their wall
/// times.
fn run_tcp(n: usize, diff: usize, shards: u32) -> Measurement {
    let server = Server::bind("127.0.0.1:0", cfg(shards, diff * 2)).expect("bind");
    let mut client =
        Client::connect_retry(server.local_addr(), Duration::from_secs(5)).expect("connect");

    let server_set = keys(n, 7);
    let mut peer_set = server_set[..n - diff / 2].to_vec();
    peer_set.extend(keys(diff - diff / 2, 999));

    let t = Instant::now();
    for chunk in server_set.chunks(8_192) {
        client.insert(chunk).expect("insert");
    }
    client.flush().expect("flush");
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let out = client.reconcile(&peer_set).expect("reconcile");
    let reconcile_ms = t.elapsed().as_secs_f64() * 1e3;

    Measurement {
        ingest_ms,
        reconcile_ms,
        subrounds_max: out.max_subrounds(),
        complete: out.complete,
        diff_found: out.only_server.len() + out.only_client.len(),
    }
}

fn run_inproc(n: usize, diff: usize, shards: u32) -> Measurement {
    let svc = PeelService::start(cfg(shards, diff * 2));
    let server_set = keys(n, 7);
    let mut peer_set = server_set[..n - diff / 2].to_vec();
    peer_set.extend(keys(diff - diff / 2, 999));

    let t = Instant::now();
    svc.insert(&server_set);
    svc.flush();
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;

    let hello = svc.hello();
    let t = Instant::now();
    let digests = build_shard_digests(
        &peer_set,
        hello.shards,
        hello.router_seed,
        hello.base_config,
    );
    let mut subrounds_max = 0;
    let mut complete = true;
    let mut diff_found = 0;
    for (i, d) in digests.iter().enumerate() {
        let out = svc.reconcile_shard(i as u32, d).expect("reconcile");
        subrounds_max = subrounds_max.max(out.subrounds);
        complete &= out.complete;
        diff_found += out.only_local.len() + out.only_remote.len();
    }
    let reconcile_ms = t.elapsed().as_secs_f64() * 1e3;

    Measurement {
        ingest_ms,
        reconcile_ms,
        subrounds_max,
        complete,
        diff_found,
    }
}

struct ReplMeasurement {
    ingest_ms: f64,
    catchup_ms: f64,
    max_lag_seen: u64,
    batches_streamed: u64,
    batches_dropped: u64,
    anti_entropy_keys: u64,
}

/// Replication lag: one primary + one TCP follower; ingest `n` keys
/// through the primary, then measure the time until the follower serves
/// cell-identical shard digests. `max_lag_seen` samples the primary's
/// per-follower lag gauge (in batches) throughout.
fn run_replication(n: usize, shards: u32) -> ReplMeasurement {
    let mut c = cfg(shards, 4_096);
    // Keep the stream lossless at this scale so the numbers measure the
    // fast path; drops would shunt work to anti-entropy.
    c.repl_queue_depth = n / c.batch_size + 64;
    let primary = Server::bind("127.0.0.1:0", c).expect("bind");
    let fsvc = Arc::new(PeelService::start(c));
    let _follower = Follower::start(
        Arc::clone(&fsvc),
        primary.local_addr(),
        FollowerConfig {
            anti_entropy_interval: Duration::from_millis(100),
            ..FollowerConfig::default()
        },
    );
    let mut client =
        Client::connect_retry(primary.local_addr(), Duration::from_secs(5)).expect("connect");
    while client.stats().expect("stats").replication.followers == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }

    let server_set = keys(n, 7);
    let t = Instant::now();
    let mut max_lag_seen = 0;
    for chunk in server_set.chunks(8_192) {
        client.insert(chunk).expect("insert");
        max_lag_seen = max_lag_seen.max(client.stats().expect("stats").replication.max_lag);
    }
    client.flush().expect("flush");
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    loop {
        let identical = (0..shards).all(|shard| {
            let (_e, p) = client.digest(shard).expect("digest");
            let (_e, f) = fsvc.snapshot_shard(shard).expect("snapshot");
            p == f
        });
        if identical {
            break;
        }
        max_lag_seen = max_lag_seen.max(client.stats().expect("stats").replication.max_lag);
        assert!(
            t.elapsed() < Duration::from_secs(120),
            "follower never converged"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let catchup_ms = t.elapsed().as_secs_f64() * 1e3;

    let ps = client.stats().expect("stats");
    let fm = fsvc.metrics();
    ReplMeasurement {
        ingest_ms,
        catchup_ms,
        max_lag_seen,
        batches_streamed: ps.replication.batches_streamed,
        batches_dropped: ps.replication.batches_dropped,
        anti_entropy_keys: fm.replication.anti_entropy_keys,
    }
}

/// Windowed-vs-ack-paced sender throughput over a simulated WAN link:
/// stream `batches` sealed batches of `batch_ops` ops through
/// [`stream_to_follower`] across a [`sim_duplex`] with a 10 ms one-way
/// delay (a 20 ms RTT), into the real follower-side applier. With
/// `window == 1` this is the old one-batch-in-flight ack pacing — every
/// batch pays the full RTT; larger windows pipeline the link. Returns
/// (wall ms, ops/sec).
fn run_window(batches: usize, batch_ops: usize, window: usize) -> (f64, f64) {
    use peel_service::queue::Op;
    let (mut near, mut far) = sim_duplex(Duration::from_millis(10));
    let hub = ReplicationHub::new(batches + 8);
    let sub = hub.subscribe();
    for b in 0..batches {
        let ops: Vec<Op> = (0..batch_ops)
            .map(|i| Op {
                key: (b * batch_ops + i) as u64,
                dir: 1,
            })
            .collect();
        hub.publish(&ops);
    }
    hub.close(); // the subscription drains the queue, then ends cleanly

    let follower = PeelService::start(cfg(1, 1_024));
    let t = Instant::now();
    let sender = std::thread::spawn(move || {
        let scfg = StreamConfig {
            window,
            ..StreamConfig::default()
        };
        stream_to_follower(&mut near, &sub, 0, &scfg).expect("in-memory link never errors");
        // Dropping `near` closes the link; the applier sees a clean end.
    });
    let stop = std::sync::atomic::AtomicBool::new(false);
    let last = std::sync::atomic::AtomicU64::new(0);
    let outcome =
        apply_replication_stream(&mut far, &follower, &stop, &last).expect("apply never errors");
    sender.join().expect("sender thread");
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        outcome.applied, batches as u64,
        "window={window}: every batch must arrive exactly once"
    );
    let ops_per_sec = (batches * batch_ops) as f64 / (wall_ms / 1e3);
    (wall_ms, ops_per_sec)
}

/// Failover-to-first-served-read latency: a 3-node TCP mesh (primary +
/// two replicas meshed for election), converged on `n` keys, loses its
/// primary; measure from the kill until `read_from_mesh` first returns
/// a converged digest from the survivors.
fn run_failover(n: usize) -> f64 {
    let mut c = cfg(4, 4_096);
    c.repl_queue_depth = n / c.batch_size + 64;
    let mk = |node_id: u64| ServiceConfig { node_id, ..c };
    let mut primary = Server::bind("127.0.0.1:0", mk(0)).expect("bind primary");
    let f1svc = Arc::new(PeelService::start(mk(1)));
    let f2svc = Arc::new(PeelService::start(mk(2)));
    let mut s1 = Server::bind_with("127.0.0.1:0", Arc::clone(&f1svc)).expect("bind r1");
    let mut s2 = Server::bind_with("127.0.0.1:0", Arc::clone(&f2svc)).expect("bind r2");
    let (a1, a2) = (s1.local_addr(), s2.local_addr());
    let mesh = |peers: Vec<std::net::SocketAddr>, advertise: std::net::SocketAddr| FollowerConfig {
        anti_entropy_interval: Duration::from_millis(50),
        reconnect_backoff: Duration::from_millis(25),
        max_reconnect_backoff: Duration::from_millis(200),
        failover_threshold: 2,
        peers,
        advertise: advertise.to_string(),
        ..FollowerConfig::default()
    };
    let mut f1 = Follower::start(Arc::clone(&f1svc), primary.local_addr(), mesh(vec![a2], a1));
    let mut f2 = Follower::start(Arc::clone(&f2svc), primary.local_addr(), mesh(vec![a1], a2));

    let mut client =
        Client::connect_retry(primary.local_addr(), Duration::from_secs(5)).expect("connect");
    // Both replicas must be on the stream before ingest: batches
    // published pre-subscribe only reach a follower via anti-entropy,
    // and an n-key divergence is far over the diff budget — losing
    // this race turns convergence into a coin flip.
    while client.stats().expect("stats").replication.followers < 2 {
        std::thread::sleep(Duration::from_millis(2));
    }
    client.insert(&keys(n, 7)).expect("insert");
    client.flush().expect("flush");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let identical = (0..c.shards).all(|shard| {
            let (_e, p) = client.digest(shard).expect("digest");
            let (_ea, d1) = f1svc.snapshot_shard(shard).expect("snap1");
            let (_eb, d2) = f2svc.snapshot_shard(shard).expect("snap2");
            p == d1 && p == d2
        });
        if identical {
            break;
        }
        assert!(Instant::now() < deadline, "replicas never converged");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(client);

    let t = Instant::now();
    primary.shutdown();
    // First read served under the new regime: exactly one leader, both
    // survivors fenced at the bumped epoch, and a converged replica
    // answering within its lag bound. (Without the regime check a
    // zero-lag survivor would answer instantly — that would measure the
    // read path, not the failover.)
    loop {
        let elected = u32::from(f1svc.is_leading()) + u32::from(f2svc.is_leading()) == 1
            && f1svc.repl_epoch() > 0
            && f2svc.repl_epoch() > 0;
        if elected && read_from_mesh(&[a1, a2], 0, 0, Duration::from_millis(250)).is_ok() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "survivors never served a converged read"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let elect_ms = t.elapsed().as_secs_f64() * 1e3;
    f1.stop();
    f2.stop();
    s1.shutdown();
    s2.shutdown();
    elect_ms
}

struct ReshardMeasure {
    reshard_ms: f64,
    keys_moved: u64,
    steady_ops_per_sec: f64,
    during_ops_per_sec: f64,
    dip_pct: f64,
}

/// Reshard under racing ingest: seed `n` keys, keep a background
/// ingester streaming at full speed (each chunk is inserted and then
/// deleted, so the op throughput is real — dual-applied, routed, and
/// subject to queue backpressure — while the net resident set stays
/// within the decode budget the reshard needs), then run the whole
/// begin → commit reshard and attribute every timestamped chunk to the
/// steady window (before begin) or the migration window. The ratio of
/// the two rates is the ingest-throughput dip that dual-apply and the
/// stop-the-world cell copies cost; the begin → commit wall time is the
/// reshard latency.
fn run_reshard(n: usize, from: u32, to: u32) -> ReshardMeasure {
    // The reshard decodes whole shards, so the table budget must cover
    // the resident set (base keys + in-flight churn).
    let svc = Arc::new(PeelService::start(cfg(from, n * 3)));
    svc.insert(&keys(n, 7));
    svc.flush();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    // parking_lot, not std::sync::Mutex: the workspace bans the std lock
    // outside the poison-recovery module (`cargo xtask lint`), and a
    // sampling buffer needs no poisoning.
    let samples = Arc::new(parking_lot::Mutex::new(Vec::<(Instant, usize)>::new()));
    let ingester = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        let samples = Arc::clone(&samples);
        std::thread::spawn(move || {
            const CHUNK: u64 = 256;
            let mut next = 0u64;
            // ordering: Relaxed — the stop flag gates a benchmark loop;
            // a stale read costs one extra chunk, and the final state is
            // fenced by join.
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let chunk: Vec<u64> = (0..CHUNK).map(|i| 0xfeed_0000_0000 + next + i).collect();
                next += CHUNK;
                svc.insert(&chunk);
                svc.delete(&chunk);
                samples.lock().push((Instant::now(), 2 * CHUNK as usize));
            }
        })
    };

    // A steady window before the migration, then the reshard itself.
    std::thread::sleep(Duration::from_millis(60));
    let t_begin = Instant::now();
    svc.reshard_begin(to).expect("reshard begin");
    let status = svc.reshard_commit().expect("reshard commit");
    let t_end = Instant::now();
    std::thread::sleep(Duration::from_millis(20));
    // ordering: Relaxed — see the loop above; join fences the handoff.
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    ingester.join().unwrap();
    svc.flush();
    assert_eq!(
        status.serving_shards, to,
        "reshard did not land at {to} shards"
    );

    let samples = samples.lock();
    let rate = |lo: Instant, hi: Instant| {
        let ops: usize = samples
            .iter()
            .filter(|(t, _)| *t >= lo && *t < hi)
            .map(|(_, c)| c)
            .sum();
        ops as f64 / (hi - lo).as_secs_f64()
    };
    let steady = rate(t_begin - Duration::from_millis(50), t_begin);
    let during = rate(t_begin, t_end);
    ReshardMeasure {
        reshard_ms: (t_end - t_begin).as_secs_f64() * 1e3,
        keys_moved: status.keys_moved,
        steady_ops_per_sec: steady,
        during_ops_per_sec: during,
        dip_pct: if steady > 0.0 {
            (1.0 - during / steady) * 100.0
        } else {
            0.0
        },
    }
}

struct PeelEngineMeasure {
    engine: &'static str,
    ms: f64,
    ns_per_edge: f64,
    rounds: u32,
}

/// Warm-up + interleaved best-of-block wall time per engine on one
/// `Gnm(n, c, 4)` instance, k = 2. Every engine (the serial reference
/// included) runs one untimed warm-up pass first — buffer sizing, page
/// faults, branch/cache warm — then `reps` blocks each time every
/// engine once, and each engine keeps its best block: the same
/// interleaved discipline `run_reconcile_repeat` uses, so frequency
/// ramping and background drift hit all engines alike instead of
/// biasing whichever happened to run during a quiet window. (The old
/// rows had no warm-up, which is how serial ns/edge "drifted" 31–43 →
/// 210–324 between runs at identical (n, c) — the first cold pass was
/// being reported.) The parallel engines share one reused
/// [`PeelWorkspace`], so their numbers measure the steady-state
/// allocation-free path. Always asserts that every engine reports the
/// serial round count; with `enforce` also asserts Adaptive is not
/// slower than the worse of Dense/Frontier (the direction-optimizing
/// contract) with 10% timing slack — smoke runs on shared CI boxes print
/// a warning instead so a noisy neighbor can't fail a PR without a code
/// regression.
fn run_peel_engines(n: usize, c: f64, reps: usize, enforce: bool) -> Vec<PeelEngineMeasure> {
    const ENGINES: [(&str, Strategy); 3] = [
        ("dense", Strategy::Dense),
        ("frontier", Strategy::Frontier),
        ("adaptive", Strategy::Adaptive),
    ];
    let opts_of = |strategy| ParallelOpts {
        strategy,
        collect_trace: false,
        ..Default::default()
    };
    let mut rng = Xoshiro256StarStar::new(42);
    let g = Gnm::new(n, c, 4).sample(&mut rng);
    let edges = g.num_edges() as f64;

    // Warm-up: one untimed pass per engine.
    let serial_rounds = peel_rounds_serial(&g, 2).rounds;
    let mut ws = PeelWorkspace::new();
    for (_, strategy) in ENGINES {
        peel_parallel_in(&g, 2, &opts_of(strategy), &mut ws);
    }

    // Interleaved best-of-block timing.
    let mut best_ms = [f64::MAX; 4]; // [serial, dense, frontier, adaptive]
    for _ in 0..reps {
        let t = Instant::now();
        let o = peel_rounds_serial(&g, 2);
        best_ms[0] = best_ms[0].min(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            o.rounds, serial_rounds,
            "serial nondeterminism at n={n} c={c}"
        );
        for (i, (engine, strategy)) in ENGINES.iter().enumerate() {
            let opts = opts_of(*strategy);
            let t = Instant::now();
            let run = peel_parallel_in(&g, 2, &opts, &mut ws);
            best_ms[i + 1] = best_ms[i + 1].min(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                run.rounds, serial_rounds,
                "{engine} diverged from the serial reference at n={n} c={c}"
            );
        }
    }

    let out: Vec<PeelEngineMeasure> = ["serial", "dense", "frontier", "adaptive"]
        .iter()
        .zip(best_ms)
        .map(|(&engine, ms)| PeelEngineMeasure {
            engine,
            ms,
            ns_per_edge: ms * 1e6 / edges,
            rounds: serial_rounds,
        })
        .collect();

    let by = |name: &str| out.iter().find(|m| m.engine == name).unwrap().ms;
    let worse = by("dense").max(by("frontier"));
    if by("adaptive") > worse * 1.10 {
        let msg = format!(
            "adaptive ({:.3} ms) slower than the worse of dense/frontier ({:.3} ms) at n={n} c={c}",
            by("adaptive"),
            worse,
        );
        assert!(!enforce, "{msg}");
        eprintln!("WARNING: {msg}");
    }
    out
}

/// The peel-smoke CI gate: on a pinned 4-thread pool, the best parallel
/// engine must beat the serial reference at the post-CSR contended
/// point (n = 10⁵, c = 0.85 — the regime ROADMAP called out, where the
/// old engine lost 28 vs 44 ns/edge). Boxes with fewer than 4 hardware
/// threads warn and skip: the contract is a ≥ 4-core one, and a
/// 1–2-core runner cannot distinguish a code regression from Amdahl.
fn gate_parallel_beats_serial() {
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    if hw < 4 {
        eprintln!(
            "WARNING: --gate-parallel skipped: {hw} hardware thread(s) < 4 \
             (gate is a 4-thread contract)"
        );
        return;
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool");
    let rows = pool.install(|| run_peel_engines(100_000, 0.85, 5, false));
    let serial = rows.iter().find(|m| m.engine == "serial").unwrap().ms;
    let best = rows
        .iter()
        .filter(|m| m.engine != "serial")
        .min_by(|a, b| a.ms.total_cmp(&b.ms))
        .unwrap();
    println!(
        "gate n=100000 c=0.85 threads=4: serial {serial:.3} ms, best parallel \
         {} {:.3} ms",
        best.engine, best.ms,
    );
    assert!(
        best.ms < serial,
        "parallel peel regression: best parallel engine ({} at {:.3} ms) does not \
         beat serial ({serial:.3} ms) at n=100000 c=0.85 on a 4-thread pool",
        best.engine,
        best.ms,
    );
}

struct ObsMeasure {
    ingest_ops_per_sec_disabled: f64,
    ingest_ops_per_sec_enabled: f64,
    ingest_overhead_pct: f64,
    peel_ns_per_edge_disabled: f64,
    peel_ns_per_edge_enabled: f64,
    peel_overhead_pct: f64,
    events_recorded: u64,
}

/// Instrumentation overhead: the same in-process ingest and parallel
/// peel workloads timed with no tracing subscriber (the
/// one-relaxed-load disabled path) and with the flight recorder
/// installed as the subscriber (every span/event lands in the seqlock
/// ring). Modes alternate per block and each keeps its best block, the
/// same noise discipline as `run_reconcile_repeat`. The observability
/// layer's contract is that enabling it costs ≤ 5% ingest throughput.
fn run_obs(n: usize, shards: u32, reps: usize) -> ObsMeasure {
    let set = keys(n, 7);
    let ingest_once = || {
        let svc = PeelService::start(cfg(shards, 4_096));
        let t = Instant::now();
        svc.insert(&set);
        svc.flush();
        t.elapsed().as_secs_f64()
    };

    let mut rng = Xoshiro256StarStar::new(42);
    let g = Gnm::new(n, 0.70, 4).sample(&mut rng);
    let edges = g.num_edges() as f64;
    let opts = ParallelOpts {
        strategy: Strategy::Adaptive,
        collect_trace: false,
        ..Default::default()
    };
    let mut ws = PeelWorkspace::new();
    peel_parallel_in(&g, 2, &opts, &mut ws); // warm-up: size the buffers
    let mut peel_once = || {
        let t = Instant::now();
        peel_parallel_in(&g, 2, &opts, &mut ws);
        t.elapsed().as_secs_f64()
    };

    tracing::clear_subscriber();
    ingest_once(); // warm-up (page faults, thread pool)
    let mut ingest_s = [f64::MAX; 2]; // [disabled, enabled]
    let mut peel_s = [f64::MAX; 2];
    let mut events_recorded = 0;
    for _ in 0..reps {
        for (mode, enabled) in [(0usize, false), (1, true)] {
            if enabled {
                let rec = peel_service::recorder::install_global(4_096);
                let before = rec.recorded();
                ingest_s[mode] = ingest_s[mode].min(ingest_once());
                peel_s[mode] = peel_s[mode].min(peel_once());
                events_recorded = rec.recorded() - before;
                tracing::clear_subscriber();
            } else {
                ingest_s[mode] = ingest_s[mode].min(ingest_once());
                peel_s[mode] = peel_s[mode].min(peel_once());
            }
        }
    }

    let ops = |s: f64| n as f64 / s;
    ObsMeasure {
        ingest_ops_per_sec_disabled: ops(ingest_s[0]),
        ingest_ops_per_sec_enabled: ops(ingest_s[1]),
        ingest_overhead_pct: (1.0 - ingest_s[0] / ingest_s[1]) * 100.0,
        peel_ns_per_edge_disabled: peel_s[0] * 1e9 / edges,
        peel_ns_per_edge_enabled: peel_s[1] * 1e9 / edges,
        peel_overhead_pct: (1.0 - peel_s[0] / peel_s[1]) * 100.0,
        events_recorded,
    }
}

struct ReconcileRepeatMeasure {
    unpooled_ms_per_cycle: f64,
    pooled_ms_per_cycle: f64,
    speedup: f64,
}

/// Repeated in-process reconciliation of an *unchanged* workload — the
/// steady-state epoch loop of the recovery scheduler. The "unpooled"
/// baseline replays the pre-pooling hot path through the same public
/// API (owned snapshot → owned subtraction → fresh atomic table → dense
/// recovery, allocating four table-sized buffers per shard per epoch);
/// "pooled" is [`PeelService::reconcile_shard`], which runs one fused
/// sweep into pooled buffers. `budget_factor` scales the provisioned
/// diff budget relative to the actual diff: ×2 is a tightly sized sketch
/// (decode cost dominated by cell scans either way), larger factors are
/// the headroom a deployed service carries — there the pooled engine's
/// sparse candidate mode also skips the per-subround O(cells) scans.
fn run_reconcile_repeat(
    n: usize,
    diff: usize,
    shards: u32,
    reps: usize,
    budget_factor: usize,
) -> ReconcileRepeatMeasure {
    let svc = PeelService::start(cfg(shards, diff * budget_factor));
    let server_set = keys(n, 7);
    let mut peer_set = server_set[..n - diff / 2].to_vec();
    peer_set.extend(keys(diff - diff / 2, 999));
    svc.insert(&server_set);
    svc.flush();
    let hello = svc.hello();
    let digests = build_shard_digests(
        &peer_set,
        hello.shards,
        hello.router_seed,
        hello.base_config,
    );

    // Faithful replay of the pre-pooling `reconcile_shard` body through
    // the public API, sorted diff vectors included.
    let unpooled_cycle = || {
        let mut found = 0;
        for (i, digest) in digests.iter().enumerate() {
            let (_epoch, snap) = svc.snapshot_shard(i as u32).expect("snapshot");
            let d = snap.subtract(digest);
            let rec = AtomicIblt::from_iblt(&d).par_recover();
            assert!(rec.complete);
            let mut only_local = rec.positive;
            let mut only_remote = rec.negative;
            only_local.sort_unstable();
            only_remote.sort_unstable();
            found += only_local.len() + only_remote.len();
        }
        assert_eq!(found, diff);
    };
    let pooled_cycle = || {
        let mut found = 0;
        for (i, digest) in digests.iter().enumerate() {
            let out = svc.reconcile_shard(i as u32, digest).expect("reconcile");
            assert!(out.complete);
            found += out.only_local.len() + out.only_remote.len();
        }
        assert_eq!(found, diff);
    };

    // Warm up both paths (pool sizing, page faults), then time in
    // alternating blocks and keep each path's best block — robust to
    // frequency ramping and background drift, which at sub-millisecond
    // cycles otherwise swamp the difference.
    unpooled_cycle();
    pooled_cycle();
    let blocks = 4;
    let block_reps = reps.div_ceil(blocks);
    let mut unpooled_ms_per_cycle = f64::MAX;
    let mut pooled_ms_per_cycle = f64::MAX;
    for _ in 0..blocks {
        let t = Instant::now();
        for _ in 0..block_reps {
            unpooled_cycle();
        }
        unpooled_ms_per_cycle =
            unpooled_ms_per_cycle.min(t.elapsed().as_secs_f64() * 1e3 / block_reps as f64);
        let t = Instant::now();
        for _ in 0..block_reps {
            pooled_cycle();
        }
        pooled_ms_per_cycle =
            pooled_ms_per_cycle.min(t.elapsed().as_secs_f64() * 1e3 / block_reps as f64);
    }

    ReconcileRepeatMeasure {
        unpooled_ms_per_cycle,
        pooled_ms_per_cycle,
        speedup: unpooled_ms_per_cycle / pooled_ms_per_cycle,
    }
}

fn json_entry(out: &mut String, label: &str, n: usize, diff: usize, shards: u32, m: &Measurement) {
    let _ = write!(
        out,
        "    {{\"path\": \"{label}\", \"n_keys\": {n}, \"diff\": {diff}, \"shards\": {shards}, \
         \"ingest_ms\": {:.3}, \"ingest_ops_per_sec\": {:.0}, \"reconcile_ms\": {:.3}, \
         \"subrounds_max\": {}, \"complete\": {}, \"diff_found\": {}}}",
        m.ingest_ms,
        n as f64 / (m.ingest_ms / 1e3),
        m.reconcile_ms,
        m.subrounds_max,
        m.complete,
        m.diff_found,
    );
}

/// Connection-scalability measurement for one server shape: how many
/// concurrent clients it holds live at once (per its own gauge), how
/// long opening and sweeping one request across the whole herd takes,
/// and the pipelined single-connection request throughput (the framing
/// hot path the reactor rewrite changed).
struct ConnMeasurement {
    held: u64,
    open_ms: f64,
    sweep_ms: f64,
    pipelined_rps: f64,
}

enum ConnServer {
    Reactor(Server),
    Blocking(BlockingServer),
}

fn run_connections(target: usize, use_reactor: bool, pipeline: usize) -> ConnMeasurement {
    use std::io::{BufWriter, Write as _};
    use std::net::TcpStream;

    let scfg = cfg(1, 256);
    let mut server = if use_reactor {
        let svc = Arc::new(PeelService::start(scfg));
        let rcfg = ReactorConfig {
            max_connections: target + 64,
            ..ReactorConfig::default()
        };
        ConnServer::Reactor(Server::bind_with_cfg("127.0.0.1:0", svc, rcfg).expect("bind reactor"))
    } else {
        ConnServer::Blocking(BlockingServer::bind("127.0.0.1:0", scfg).expect("bind blocking"))
    };
    let addr = match &server {
        ConnServer::Reactor(s) => s.local_addr(),
        ConnServer::Blocking(s) => s.local_addr(),
    };
    let mut probe = Client::connect_retry(addr, Duration::from_secs(5)).expect("probe connect");
    probe.hello().expect("probe hello");

    // Open the herd, then verify every connection answers one request
    // (all requests written before any response is read, so the server
    // really serves the whole herd concurrently).
    let hello = encode_request(&Request::Hello);
    let t = Instant::now();
    let mut herd: Vec<TcpStream> = Vec::with_capacity(target);
    for i in 0..target {
        let s = TcpStream::connect(addr).unwrap_or_else(|e| panic!("conn {i}/{target}: {e}"));
        let _ = s.set_nodelay(true);
        herd.push(s);
    }
    let open_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    for s in &mut herd {
        write_frame(s, &hello).expect("herd write");
    }
    for (i, s) in herd.iter_mut().enumerate() {
        let payload = read_frame(s)
            .expect("herd read")
            .unwrap_or_else(|| panic!("conn {i} closed during the sweep"));
        decode_response(&payload).expect("herd decode");
    }
    let sweep_ms = t.elapsed().as_secs_f64() * 1e3;

    // Live gauge with the whole herd (plus the probe) still attached.
    let held = probe.stats().expect("stats").connections.live;

    // Pipelined single-connection throughput, best of 3 rounds (the
    // herd stays connected, as it would in production).
    let mut best_rps = 0.0f64;
    for _ in 0..3 {
        let mut s = TcpStream::connect(addr).expect("pipeline conn");
        let _ = s.set_nodelay(true);
        let mut w = BufWriter::new(s.try_clone().expect("pipeline clone"));
        let t = Instant::now();
        for _ in 0..pipeline {
            write_frame(&mut w, &hello).expect("pipeline write");
        }
        w.flush().expect("pipeline flush");
        for k in 0..pipeline {
            read_frame(&mut s)
                .expect("pipeline read")
                .unwrap_or_else(|| panic!("pipeline conn closed at response {k}"));
        }
        best_rps = best_rps.max(pipeline as f64 / t.elapsed().as_secs_f64());
    }

    drop(herd);
    match &mut server {
        ConnServer::Reactor(s) => s.shutdown(),
        ConnServer::Blocking(s) => s.shutdown(),
    }
    ConnMeasurement {
        held,
        open_ms,
        sweep_ms,
        pipelined_rps: best_rps,
    }
}

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        eprintln!(
            "bench_json [--full] [--smoke] [--section all|peel|service] [--n N] \
             [--diff D] [--out PATH] [--gate-parallel]\n\
             Measures core peeling-engine throughput (ns/edge per engine ×\n\
             load factor, pooled repeated-reconcile speedup) and service\n\
             ingest/reconcile/replication performance, writing\n\
             machine-readable JSON (default BENCH_service.json).\n\
             --section peel runs only the core-engine section; --smoke\n\
             shrinks every size for CI; --gate-parallel additionally\n\
             fails unless a parallel engine beats serial at n=1e5\n\
             c=0.85 on a pinned 4-thread pool (skipped below 4 hardware\n\
             threads)."
        );
        return;
    }
    let full = args.flag("full");
    let smoke = args.flag("smoke");
    let section: String = args.get("section", "all".to_string());
    let n: usize = args.get(
        "n",
        match (full, smoke) {
            (true, _) => 1_000_000,
            (_, true) => 30_000,
            _ => 200_000,
        },
    );
    let diff: usize = args.get("diff", if smoke { 200 } else { 1_000 });
    let run_service = section == "all" || section == "service";
    let run_peel = section == "all" || section == "peel";
    assert!(
        run_service || run_peel,
        "unknown --section {section:?} (expected all, peel, or service)"
    );
    // Partial-section runs default to their own file so they can't
    // silently overwrite the committed full results with empty sections.
    let default_out = if section == "all" {
        "BENCH_service.json".to_string()
    } else {
        format!("BENCH_{section}.json")
    };
    let out_path: String = args.get("out", default_out);

    let mut body = String::from("{\n  \"bench\": \"peel-service\",\n  \"results\": [\n");
    let mut first = true;
    if run_service {
        for shards in [1u32, 4, 8] {
            for (label, m) in [
                ("tcp", run_tcp(n, diff, shards)),
                ("inproc", run_inproc(n, diff, shards)),
            ] {
                assert!(m.complete, "{label}/{shards}: recovery incomplete");
                assert_eq!(m.diff_found, diff, "{label}/{shards}: wrong diff size");
                if !first {
                    body.push_str(",\n");
                }
                first = false;
                json_entry(&mut body, label, n, diff, shards, &m);
                println!(
                    "{label:>7} shards={shards}: ingest {:>9.1} ms ({:>10.0} ops/s), \
                     reconcile {:>7.1} ms, {} subrounds",
                    m.ingest_ms,
                    n as f64 / (m.ingest_ms / 1e3),
                    m.reconcile_ms,
                    m.subrounds_max,
                );
            }
        }
        // Reshard under ingest: a split 1 → 4 and a merge 4 → 2, each
        // with full-speed racing churn. Key count capped so the whole
        // resident set fits the reshard's decode budget under the wire
        // frame cap (reshard decodes entire shards, not diffs).
        let rn = n.min(50_000);
        for (from, to) in [(1u32, 4u32), (4, 2)] {
            let m = run_reshard(rn, from, to);
            body.push_str(",\n");
            let _ = write!(
                body,
                "    {{\"path\": \"reshard\", \"n_keys\": {rn}, \"from_shards\": {from}, \
                 \"to_shards\": {to}, \"reshard_ms\": {:.3}, \"keys_moved\": {}, \
                 \"steady_ops_per_sec\": {:.0}, \"during_ops_per_sec\": {:.0}, \
                 \"dip_pct\": {:.1}}}",
                m.reshard_ms, m.keys_moved, m.steady_ops_per_sec, m.during_ops_per_sec, m.dip_pct,
            );
            println!(
                "reshard {from}->{to} n={rn}: {:>7.1} ms ({} keys moved), ingest \
                 {:>9.0} ops/s steady -> {:>9.0} ops/s during migration ({:.1}% dip)",
                m.reshard_ms, m.keys_moved, m.steady_ops_per_sec, m.during_ops_per_sec, m.dip_pct,
            );
        }
        // Replication lag: ingest-to-convergence catch-up of one TCP
        // follower at 1 and 4 shards.
        for shards in [1u32, 4] {
            let m = run_replication(n, shards);
            assert_eq!(m.batches_dropped, 0, "replication stream dropped batches");
            body.push_str(",\n");
            let _ = write!(
                body,
                "    {{\"path\": \"replication\", \"n_keys\": {n}, \"shards\": {shards}, \
                 \"ingest_ms\": {:.3}, \"catchup_ms\": {:.3}, \"max_lag_batches\": {}, \
                 \"batches_streamed\": {}, \"anti_entropy_keys\": {}}}",
                m.ingest_ms, m.catchup_ms, m.max_lag_seen, m.batches_streamed, m.anti_entropy_keys,
            );
            println!(
                "replica shards={shards}: ingest {:>9.1} ms, follower caught up {:>7.1} ms \
                 after flush (max lag {} batches, {} streamed, {} healed by anti-entropy)",
                m.ingest_ms, m.catchup_ms, m.max_lag_seen, m.batches_streamed, m.anti_entropy_keys,
            );
        }
        // Windowed vs ack-paced sender over a 20 ms simulated RTT: the
        // same batches through the same applier, differing only in how
        // many unacked frames the sender keeps in flight. The window
        // must buy at least 2× — that is the whole point of PR 9's
        // sender rewrite.
        let (wb, wo) = (if smoke { 24 } else { 48 }, 64);
        let mut paced_ops = 0.0;
        for window in [1usize, 32] {
            let (wall_ms, ops_per_sec) = run_window(wb, wo, window);
            if window == 1 {
                paced_ops = ops_per_sec;
            } else {
                assert!(
                    ops_per_sec >= 2.0 * paced_ops,
                    "windowed sender must be >= 2x ack-paced at 20 ms RTT \
                     (got {ops_per_sec:.0} vs {paced_ops:.0} ops/s)"
                );
            }
            body.push_str(",\n");
            let _ = write!(
                body,
                "    {{\"path\": \"replication_window\", \"batches\": {wb}, \
                 \"batch_ops\": {wo}, \"rtt_ms\": 20, \"window\": {window}, \
                 \"wall_ms\": {wall_ms:.3}, \"ops_per_sec\": {ops_per_sec:.0}}}",
            );
            println!(
                "replica window={window:>2} rtt=20ms: {wb} batches in {wall_ms:>8.1} ms \
                 ({ops_per_sec:>9.0} ops/s)",
            );
        }
        // Failover: primary death to the survivors' first served read
        // under the new fenced epoch.
        let fn_keys = (n / 4).max(10_000);
        let elect_ms = run_failover(fn_keys);
        body.push_str(",\n");
        let _ = write!(
            body,
            "    {{\"path\": \"failover\", \"nodes\": 3, \"n_keys\": {fn_keys}, \
             \"kill_to_first_read_ms\": {elect_ms:.3}}}",
        );
        println!("failover 3-node n={fn_keys}: kill -> first served read {elect_ms:>8.1} ms");
        // Connection scalability: the same herd-plus-pipeline scenario
        // against the thread-per-connection server (contrast row) and
        // the reactor. The reactor must hold the whole herd live at
        // once and pipeline a single connection at least as fast as
        // the blocking server — the two claims of this PR.
        let herd = if smoke { 256 } else { 1024 };
        let pipeline = if smoke { 1_000 } else { 4_000 };
        let mut blocking_rps = 0.0;
        for (label, use_reactor) in [("blocking", false), ("reactor", true)] {
            let m = run_connections(herd, use_reactor, pipeline);
            if use_reactor {
                assert!(
                    (m.held as usize) >= herd,
                    "reactor held only {} of {herd} concurrent connections",
                    m.held
                );
                if m.pipelined_rps < blocking_rps {
                    let msg = format!(
                        "reactor pipelined throughput ({:.0} req/s) below the blocking \
                         server's ({blocking_rps:.0} req/s)",
                        m.pipelined_rps
                    );
                    assert!(smoke, "{msg}");
                    eprintln!("WARNING: {msg}");
                }
            } else {
                blocking_rps = m.pipelined_rps;
            }
            body.push_str(",\n");
            let _ = write!(
                body,
                "    {{\"path\": \"connections\", \"server\": \"{label}\", \
                 \"concurrent\": {herd}, \"held_live\": {}, \"open_ms\": {:.3}, \
                 \"sweep_ms\": {:.3}, \"pipelined_reqs\": {pipeline}, \
                 \"pipelined_req_per_sec\": {:.0}}}",
                m.held, m.open_ms, m.sweep_ms, m.pipelined_rps,
            );
            println!(
                "conns {label:>8}: {herd} concurrent ({} live on gauge), open {:>7.1} ms, \
                 sweep {:>7.1} ms, pipelined {:>9.0} req/s",
                m.held, m.open_ms, m.sweep_ms, m.pipelined_rps,
            );
        }
    }
    body.push_str("\n  ],\n  \"peel\": {\n    \"engines\": [\n");

    if run_peel {
        // Core-engine section: engine × load factor × n, plus the pooled
        // repeated-reconcile throughput. c = 0.70 is below c*_{2,4} (full
        // peel, ~log log n rounds); c = 0.85 is above (peeling stalls at a
        // large 2-core) — the two regimes with opposite frontier shapes.
        let peel_sizes: &[usize] = if smoke {
            &[30_000]
        } else if full {
            &[250_000, 1_000_000]
        } else {
            &[100_000, 400_000]
        };
        let reps = if smoke { 3 } else { 5 };
        let threads = rayon::current_num_threads();
        let mut first = true;
        for &pn in peel_sizes {
            for c in [0.70, 0.85] {
                for m in run_peel_engines(pn, c, reps, !smoke) {
                    if !first {
                        body.push_str(",\n");
                    }
                    first = false;
                    let _ = write!(
                        body,
                        "      {{\"engine\": \"{}\", \"n\": {pn}, \"c\": {c:.2}, \
                         \"threads\": {threads}, \"ms\": {:.3}, \"ns_per_edge\": {:.2}, \
                         \"rounds\": {}}}",
                        m.engine, m.ms, m.ns_per_edge, m.rounds,
                    );
                    println!(
                        "peel {:>8} n={pn:>8} c={c:.2} t={threads}: {:>8.3} ms \
                         ({:>7.2} ns/edge, {} rounds)",
                        m.engine, m.ms, m.ns_per_edge, m.rounds,
                    );
                }
            }
        }
        body.push_str("\n    ],\n    \"reconcile_repeat\": [\n");
        // Cycles are sub-millisecond: enough reps to swamp timer noise
        // and frequency ramping.
        let rr_reps = if smoke { 100 } else { 400 };
        let mut first = true;
        for (regime, budget_factor) in [("tight", 2usize), ("provisioned", 16)] {
            let m = run_reconcile_repeat(n, diff, 4, rr_reps, budget_factor);
            // Pooling must pay for itself in BOTH regimes now: the
            // provisioned sketch through the sparse candidate engine,
            // and the tight sketch through the dense-hint probe skip
            // (the 0.958 regression this check previously excused). As
            // above, smoke runs warn instead of failing — CI boxes are
            // too noisy for a zero-margin wall-clock gate.
            if m.speedup < 1.0 {
                let msg = format!(
                    "[{regime}] pooled repeated reconcile ({:.3} ms) slower than the \
                     allocate-per-epoch path ({:.3} ms)",
                    m.pooled_ms_per_cycle, m.unpooled_ms_per_cycle,
                );
                assert!(smoke, "{msg}");
                eprintln!("WARNING: {msg}");
            }
            if !first {
                body.push_str(",\n");
            }
            first = false;
            let _ = write!(
                body,
                "      {{\"regime\": \"{regime}\", \"n_keys\": {n}, \"diff\": {diff}, \
                 \"budget_factor\": {budget_factor}, \"shards\": 4, \"reps\": {rr_reps}, \
                 \"unpooled_ms_per_cycle\": {:.3}, \"pooled_ms_per_cycle\": {:.3}, \
                 \"speedup\": {:.3}}}",
                m.unpooled_ms_per_cycle, m.pooled_ms_per_cycle, m.speedup,
            );
            println!(
                "reconcile-repeat [{regime}] n={n} diff={diff} budget x{budget_factor} shards=4: \
                 allocate-per-epoch {:>7.3} ms/cycle, pooled {:>7.3} ms/cycle ({:.2}x)",
                m.unpooled_ms_per_cycle, m.pooled_ms_per_cycle, m.speedup,
            );
        }
        body.push_str("\n    ]\n  },\n");
    } else {
        body.push_str("\n    ],\n    \"reconcile_repeat\": [\n    ]\n  },\n");
    }

    // Instrumentation overhead: tracing subscriber absent vs the flight
    // recorder installed, on ingest and on the parallel peel. The
    // observability layer's acceptance bar is ≤ 5% ingest degradation;
    // smoke runs warn instead of failing (shared CI boxes are too noisy
    // for a wall-clock gate without a code regression).
    body.push_str("  \"obs\": ");
    if run_service {
        let on = n.min(100_000);
        let m = run_obs(on, 4, if smoke { 2 } else { 4 });
        assert!(
            m.events_recorded > 0,
            "enabled run recorded no tracing events"
        );
        if m.ingest_overhead_pct > 5.0 {
            let msg = format!(
                "tracing-enabled ingest degraded {:.1}% (> 5% budget): \
                 {:.0} ops/s disabled -> {:.0} ops/s enabled",
                m.ingest_overhead_pct, m.ingest_ops_per_sec_disabled, m.ingest_ops_per_sec_enabled,
            );
            assert!(smoke, "{msg}");
            eprintln!("WARNING: {msg}");
        }
        let _ = write!(
            body,
            "{{\"n_keys\": {on}, \"shards\": 4, \
             \"ingest_ops_per_sec_disabled\": {:.0}, \"ingest_ops_per_sec_enabled\": {:.0}, \
             \"ingest_overhead_pct\": {:.2}, \"peel_ns_per_edge_disabled\": {:.2}, \
             \"peel_ns_per_edge_enabled\": {:.2}, \"peel_overhead_pct\": {:.2}, \
             \"events_recorded\": {}}}\n}}\n",
            m.ingest_ops_per_sec_disabled,
            m.ingest_ops_per_sec_enabled,
            m.ingest_overhead_pct,
            m.peel_ns_per_edge_disabled,
            m.peel_ns_per_edge_enabled,
            m.peel_overhead_pct,
            m.events_recorded,
        );
        println!(
            "obs n={on} shards=4: ingest {:>9.0} ops/s untraced -> {:>9.0} ops/s traced \
             ({:+.2}%), peel {:.2} -> {:.2} ns/edge ({:+.2}%), {} events recorded",
            m.ingest_ops_per_sec_disabled,
            m.ingest_ops_per_sec_enabled,
            m.ingest_overhead_pct,
            m.peel_ns_per_edge_disabled,
            m.peel_ns_per_edge_enabled,
            m.peel_overhead_pct,
            m.events_recorded,
        );
    } else {
        body.push_str("null\n}\n");
    }

    std::fs::write(&out_path, &body).expect("write results");
    println!("wrote {out_path}");

    // The gate runs after the artifact is written, so a regression still
    // leaves the measurements on disk for the CI upload step.
    if args.flag("gate-parallel") {
        gate_parallel_beats_serial();
    }
}

//! Machine-readable service benchmark: runs the full wire path (TCP
//! loopback server + client), the in-process service core, and the
//! primary→follower replication path (ingest-to-convergence catch-up
//! time plus observed stream lag), and writes the measurements to
//! `BENCH_service.json` so the repo's perf trajectory can be tracked
//! across PRs.
//!
//! ```sh
//! cargo run --release -p peel-bench --bin bench_json             # laptop scale
//! cargo run --release -p peel-bench --bin bench_json -- --full   # 10× keys
//! cargo run --release -p peel-bench --bin bench_json -- --out results.json
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use std::sync::Arc;

use peel_bench::Args;
use peel_graph::rng::Xoshiro256StarStar;
use peel_service::{
    build_shard_digests, Client, Follower, FollowerConfig, PeelService, Server, ServiceConfig,
};
use rand::RngCore;

fn keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn cfg(shards: u32, diff_budget: usize) -> ServiceConfig {
    ServiceConfig {
        batch_size: 1024,
        queue_depth: 64,
        ..ServiceConfig::for_diff_budget(shards, diff_budget)
    }
}

struct Measurement {
    ingest_ms: f64,
    reconcile_ms: f64,
    subrounds_max: u32,
    complete: bool,
    diff_found: usize,
}

/// One full cycle — seed N keys, reconcile a `diff`-key difference —
/// through a closure that runs the two phases and reports their wall
/// times.
fn run_tcp(n: usize, diff: usize, shards: u32) -> Measurement {
    let server = Server::bind("127.0.0.1:0", cfg(shards, diff * 2)).expect("bind");
    let mut client =
        Client::connect_retry(server.local_addr(), Duration::from_secs(5)).expect("connect");

    let server_set = keys(n, 7);
    let mut peer_set = server_set[..n - diff / 2].to_vec();
    peer_set.extend(keys(diff - diff / 2, 999));

    let t = Instant::now();
    for chunk in server_set.chunks(8_192) {
        client.insert(chunk).expect("insert");
    }
    client.flush().expect("flush");
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let out = client.reconcile(&peer_set).expect("reconcile");
    let reconcile_ms = t.elapsed().as_secs_f64() * 1e3;

    Measurement {
        ingest_ms,
        reconcile_ms,
        subrounds_max: out.max_subrounds(),
        complete: out.complete,
        diff_found: out.only_server.len() + out.only_client.len(),
    }
}

fn run_inproc(n: usize, diff: usize, shards: u32) -> Measurement {
    let svc = PeelService::start(cfg(shards, diff * 2));
    let server_set = keys(n, 7);
    let mut peer_set = server_set[..n - diff / 2].to_vec();
    peer_set.extend(keys(diff - diff / 2, 999));

    let t = Instant::now();
    svc.insert(&server_set);
    svc.flush();
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;

    let hello = svc.hello();
    let t = Instant::now();
    let digests = build_shard_digests(
        &peer_set,
        hello.shards,
        hello.router_seed,
        hello.base_config,
    );
    let mut subrounds_max = 0;
    let mut complete = true;
    let mut diff_found = 0;
    for (i, d) in digests.iter().enumerate() {
        let out = svc.reconcile_shard(i as u32, d).expect("reconcile");
        subrounds_max = subrounds_max.max(out.subrounds);
        complete &= out.complete;
        diff_found += out.only_local.len() + out.only_remote.len();
    }
    let reconcile_ms = t.elapsed().as_secs_f64() * 1e3;

    Measurement {
        ingest_ms,
        reconcile_ms,
        subrounds_max,
        complete,
        diff_found,
    }
}

struct ReplMeasurement {
    ingest_ms: f64,
    catchup_ms: f64,
    max_lag_seen: u64,
    batches_streamed: u64,
    batches_dropped: u64,
    anti_entropy_keys: u64,
}

/// Replication lag: one primary + one TCP follower; ingest `n` keys
/// through the primary, then measure the time until the follower serves
/// cell-identical shard digests. `max_lag_seen` samples the primary's
/// per-follower lag gauge (in batches) throughout.
fn run_replication(n: usize, shards: u32) -> ReplMeasurement {
    let mut c = cfg(shards, 4_096);
    // Keep the stream lossless at this scale so the numbers measure the
    // fast path; drops would shunt work to anti-entropy.
    c.repl_queue_depth = n / c.batch_size + 64;
    let primary = Server::bind("127.0.0.1:0", c).expect("bind");
    let fsvc = Arc::new(PeelService::start(c));
    let _follower = Follower::start(
        Arc::clone(&fsvc),
        primary.local_addr(),
        FollowerConfig {
            anti_entropy_interval: Duration::from_millis(100),
            ..FollowerConfig::default()
        },
    );
    let mut client =
        Client::connect_retry(primary.local_addr(), Duration::from_secs(5)).expect("connect");
    while client.stats().expect("stats").replication.followers == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }

    let server_set = keys(n, 7);
    let t = Instant::now();
    let mut max_lag_seen = 0;
    for chunk in server_set.chunks(8_192) {
        client.insert(chunk).expect("insert");
        max_lag_seen = max_lag_seen.max(client.stats().expect("stats").replication.max_lag);
    }
    client.flush().expect("flush");
    let ingest_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    loop {
        let identical = (0..shards).all(|shard| {
            let (_e, p) = client.digest(shard).expect("digest");
            let (_e, f) = fsvc.snapshot_shard(shard).expect("snapshot");
            p == f
        });
        if identical {
            break;
        }
        max_lag_seen = max_lag_seen.max(client.stats().expect("stats").replication.max_lag);
        assert!(
            t.elapsed() < Duration::from_secs(120),
            "follower never converged"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let catchup_ms = t.elapsed().as_secs_f64() * 1e3;

    let ps = client.stats().expect("stats");
    let fm = fsvc.metrics();
    ReplMeasurement {
        ingest_ms,
        catchup_ms,
        max_lag_seen,
        batches_streamed: ps.replication.batches_streamed,
        batches_dropped: ps.replication.batches_dropped,
        anti_entropy_keys: fm.replication.anti_entropy_keys,
    }
}

fn json_entry(out: &mut String, label: &str, n: usize, diff: usize, shards: u32, m: &Measurement) {
    let _ = write!(
        out,
        "    {{\"path\": \"{label}\", \"n_keys\": {n}, \"diff\": {diff}, \"shards\": {shards}, \
         \"ingest_ms\": {:.3}, \"ingest_ops_per_sec\": {:.0}, \"reconcile_ms\": {:.3}, \
         \"subrounds_max\": {}, \"complete\": {}, \"diff_found\": {}}}",
        m.ingest_ms,
        n as f64 / (m.ingest_ms / 1e3),
        m.reconcile_ms,
        m.subrounds_max,
        m.complete,
        m.diff_found,
    );
}

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        eprintln!(
            "bench_json [--full] [--n N] [--diff D] [--out PATH]\n\
             Measures service ingest throughput and reconcile latency (TCP and\n\
             in-process) and writes machine-readable JSON (default\n\
             BENCH_service.json)."
        );
        return;
    }
    let full = args.flag("full");
    let n: usize = args.get("n", if full { 1_000_000 } else { 200_000 });
    let diff: usize = args.get("diff", 1_000);
    let out_path: String = args.get("out", "BENCH_service.json".to_string());

    let mut body = String::from("{\n  \"bench\": \"peel-service\",\n  \"results\": [\n");
    let mut first = true;
    for shards in [1u32, 4, 8] {
        for (label, m) in [
            ("tcp", run_tcp(n, diff, shards)),
            ("inproc", run_inproc(n, diff, shards)),
        ] {
            assert!(m.complete, "{label}/{shards}: recovery incomplete");
            assert_eq!(m.diff_found, diff, "{label}/{shards}: wrong diff size");
            if !first {
                body.push_str(",\n");
            }
            first = false;
            json_entry(&mut body, label, n, diff, shards, &m);
            println!(
                "{label:>7} shards={shards}: ingest {:>9.1} ms ({:>10.0} ops/s), \
                 reconcile {:>7.1} ms, {} subrounds",
                m.ingest_ms,
                n as f64 / (m.ingest_ms / 1e3),
                m.reconcile_ms,
                m.subrounds_max,
            );
        }
    }
    // Replication lag: ingest-to-convergence catch-up of one TCP
    // follower at 1 and 4 shards.
    for shards in [1u32, 4] {
        let m = run_replication(n, shards);
        assert_eq!(m.batches_dropped, 0, "replication stream dropped batches");
        body.push_str(",\n");
        let _ = write!(
            body,
            "    {{\"path\": \"replication\", \"n_keys\": {n}, \"shards\": {shards}, \
             \"ingest_ms\": {:.3}, \"catchup_ms\": {:.3}, \"max_lag_batches\": {}, \
             \"batches_streamed\": {}, \"anti_entropy_keys\": {}}}",
            m.ingest_ms, m.catchup_ms, m.max_lag_seen, m.batches_streamed, m.anti_entropy_keys,
        );
        println!(
            "replica shards={shards}: ingest {:>9.1} ms, follower caught up {:>7.1} ms \
             after flush (max lag {} batches, {} streamed, {} healed by anti-entropy)",
            m.ingest_ms, m.catchup_ms, m.max_lag_seen, m.batches_streamed, m.anti_entropy_keys,
        );
    }
    body.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &body).expect("write results");
    println!("wrote {out_path}");
}

//! Fit `ADAPTIVE_DENSE_ALPHA` against the current engine's cost model.
//!
//! Sweeps the adaptive switch coefficient α over the benched `Gnm`
//! regimes (warm-up + interleaved best-of-block per α, the same
//! discipline as `bench_json`) and prints ns/edge per (n, c, α) next to
//! the dense/frontier envelope, so the crossover can be read off
//! directly. Run after any change to the kill phases' per-edge costs —
//! the fitted constant is only as durable as the cost ratio it encodes.
//!
//! ```sh
//! cargo run --release -p peel-bench --bin alpha_sweep
//! cargo run --release -p peel-bench --bin alpha_sweep -- --n 400000 --reps 7
//! ```

use std::time::Instant;

use peel_bench::Args;
use peel_core::{peel_parallel_in, ParallelOpts, PeelWorkspace, Strategy};
use peel_graph::models::Gnm;
use peel_graph::rng::Xoshiro256StarStar;

const ALPHAS: [u64; 7] = [2, 3, 4, 6, 8, 10, 12];

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        eprintln!(
            "alpha_sweep [--n N] [--reps K]\n\
             Times Strategy::Adaptive at each candidate α (plus the pure\n\
             dense/frontier envelope) on Gnm(n, c, 4), k = 2, for\n\
             c in {{0.70, 0.85}}."
        );
        return;
    }
    let n: usize = args.get("n", 400_000);
    let reps: usize = args.get("reps", 5);
    println!(
        "alpha sweep: n={n}, r=4, k=2, threads={}",
        rayon::current_num_threads()
    );

    for c in [0.70f64, 0.85] {
        let mut rng = Xoshiro256StarStar::new(42);
        let g = Gnm::new(n, c, 4).sample(&mut rng);
        let edges = g.num_edges() as f64;
        let mut ws = PeelWorkspace::new();

        // Contestants: the two pure directions bracket every α.
        let mut rows: Vec<(String, ParallelOpts, u64)> = vec![
            (
                "dense".into(),
                ParallelOpts {
                    strategy: Strategy::Dense,
                    collect_trace: false,
                    ..Default::default()
                },
                0,
            ),
            (
                "frontier".into(),
                ParallelOpts {
                    strategy: Strategy::Frontier,
                    collect_trace: false,
                    ..Default::default()
                },
                0,
            ),
        ];
        for a in ALPHAS {
            rows.push((
                format!("alpha={a}"),
                ParallelOpts {
                    strategy: Strategy::Adaptive,
                    collect_trace: false,
                    ..Default::default()
                },
                a,
            ));
        }

        // Warm-up, then interleaved best-of-block.
        for (_, opts, alpha) in &rows {
            if *alpha > 0 {
                ws.adaptive_alpha = *alpha;
            }
            peel_parallel_in(&g, 2, opts, &mut ws);
        }
        let mut best = vec![f64::MAX; rows.len()];
        for _ in 0..reps {
            for (i, (_, opts, alpha)) in rows.iter().enumerate() {
                if *alpha > 0 {
                    ws.adaptive_alpha = *alpha;
                }
                let t = Instant::now();
                peel_parallel_in(&g, 2, opts, &mut ws);
                best[i] = best[i].min(t.elapsed().as_secs_f64() * 1e3);
            }
        }
        for (i, (label, _, _)) in rows.iter().enumerate() {
            println!(
                "  c={c:.2} {label:>10}: {:>8.3} ms ({:>7.2} ns/edge)",
                best[i],
                best[i] * 1e6 / edges,
            );
        }
    }
}

//! Table 2 reproduction: idealized recurrence `λ_t·n` vs the measured
//! number of unpeeled vertices after each round (r=4, k=2, n=10^6).
//!
//! The paper runs c = 0.70 (below threshold) and c = 0.85 (above), 1000
//! trials, n = 10^6. Default here: 10 trials at n = 10^6 (the prediction
//! column is exact; the experiment column's sampling error at 10 trials is
//! already below the rounding noise for all but the tiniest entries).

use rayon::prelude::*;

use peel_analysis::Idealized;
use peel_bench::{mean, row, Args};
use peel_core::parallel::{peel_parallel, ParallelOpts, Strategy};
use peel_graph::models::Gnm;
use peel_graph::rng::Xoshiro256StarStar;

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        eprintln!(
            "table2 [--full] [--n N] [--trials T] [--rounds R] [--seed S]\n\
             Reproduces Table 2 (prediction vs experiment, r=4, k=2)."
        );
        return;
    }
    let full = args.flag("full");
    let n: usize = args.get("n", 1_000_000);
    let trials: u64 = args.get("trials", if full { 1000 } else { 10 });
    let t_max: u32 = args.get("rounds", 20);
    let seed: u64 = args.get("seed", 7141);
    let r = 4u32;
    let k = 2u32;

    for &c in &[0.70f64, 0.85] {
        println!("# Table 2 (c = {c}): r={r}, k={k}, n={n}, {trials} trials");
        // Average survivor counts per round over the trials.
        let survivor_sums: Vec<Vec<u64>> = (0..trials)
            .into_par_iter()
            .map(|t| {
                let mut rng = Xoshiro256StarStar::new(seed ^ c.to_bits() ^ (t << 24));
                let g = Gnm::new(n, c, r as usize).sample(&mut rng);
                let opts = ParallelOpts {
                    strategy: Strategy::Frontier,
                    max_rounds: t_max,
                    collect_trace: true,
                };
                let out = peel_parallel(&g, k, &opts);
                // Pad with the final survivor count (post-fixpoint rounds
                // keep the same survivor count).
                let mut series = out.survivor_series();
                let last = series.last().copied().unwrap_or(n as u64);
                series.resize(t_max as usize, last);
                series
            })
            .collect();

        let predictions = Idealized::new(k, r, c).survivor_predictions(n as u64, t_max);
        let widths = [4usize, 14, 14];
        println!(
            "{}",
            row(
                &["t".into(), "Prediction".into(), "Experiment".into()],
                &widths
            )
        );
        for t in 0..t_max as usize {
            let experiment = mean(
                &survivor_sums
                    .iter()
                    .map(|s| s[t] as f64)
                    .collect::<Vec<_>>(),
            );
            let pred = predictions[t];
            let pred_str = if pred >= 0.5 {
                format!("{pred:.0}")
            } else {
                format!("{pred:.5}")
            };
            println!(
                "{}",
                row(
                    &[format!("{}", t + 1), pred_str, format!("{experiment:.1}")],
                    &widths
                )
            );
        }
        println!();
    }
}

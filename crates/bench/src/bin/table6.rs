//! Table 6 reproduction: subtable recurrence `λ'_{i,j}·n` vs the measured
//! number of unpeeled vertices after each subround (r=4, k=2, c=0.70,
//! n=10^6).
//!
//! The paper's Table 6 runs to round 7 (28 subrounds); per-subround
//! survivor counts should track the prediction to within sampling noise.

use rayon::prelude::*;

use peel_analysis::SubtableRecurrence;
use peel_bench::{mean, row, Args};
use peel_core::subtable::{peel_subtables, SubtableOpts};
use peel_graph::models::Partitioned;
use peel_graph::rng::Xoshiro256StarStar;

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        eprintln!(
            "table6 [--full] [--n N] [--trials T] [--rounds R] [--c C] [--seed S]\n\
             Reproduces Table 6 (subtable prediction vs experiment)."
        );
        return;
    }
    let full = args.flag("full");
    let n: usize = args.get("n", 1_000_000);
    let trials: u64 = args.get("trials", if full { 1000 } else { 10 });
    let rounds: u32 = args.get("rounds", 7);
    let c: f64 = args.get("c", 0.70);
    let seed: u64 = args.get("seed", 666);
    let r = 4usize;
    let k = 2;
    let total_subrounds = rounds * r as u32;

    println!("# Table 6 (c = {c}): subtable peeling, r={r}, k={k}, n={n}, {trials} trials");

    let survivor_sums: Vec<Vec<u64>> = (0..trials)
        .into_par_iter()
        .map(|t| {
            let mut rng = Xoshiro256StarStar::new(seed ^ (t << 17));
            let g = Partitioned::new(n, c, r).sample(&mut rng);
            let out = peel_subtables(
                &g,
                k,
                &SubtableOpts {
                    max_subrounds: total_subrounds,
                    collect_trace: true,
                },
            );
            // Expand the trace to a dense per-subround series (unproductive
            // subrounds keep the previous survivor count).
            let mut series = Vec::with_capacity(total_subrounds as usize);
            let mut last = n as u64;
            let mut iter = out.trace.iter().peekable();
            for s in 1..=total_subrounds {
                if let Some(st) = iter.peek() {
                    if st.subround == s {
                        last = st.unpeeled_vertices;
                        iter.next();
                    }
                }
                series.push(last);
            }
            series
        })
        .collect();

    let steps = SubtableRecurrence::new(k, r as u32, c).steps(rounds);
    let widths = [3usize, 3, 14, 14];
    println!(
        "{}",
        row(
            &[
                "i".into(),
                "j".into(),
                "Prediction".into(),
                "Experiment".into()
            ],
            &widths
        )
    );
    for (idx, step) in steps.iter().enumerate() {
        let pred = step.lambda_prime * n as f64;
        let experiment = mean(
            &survivor_sums
                .iter()
                .map(|s| s[idx] as f64)
                .collect::<Vec<_>>(),
        );
        let pred_str = if pred >= 0.5 {
            format!("{pred:.0}")
        } else {
            format!("{pred:.3}")
        };
        println!(
            "{}",
            row(
                &[
                    format!("{}", step.round),
                    format!("{}", step.subtable),
                    pred_str,
                    format!("{experiment:.1}"),
                ],
                &widths
            )
        );
    }
}

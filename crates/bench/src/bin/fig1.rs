//! Figure 1 reproduction: trajectories of `β_i` under the idealized
//! recurrence (Eq. C.1) for densities just below the threshold
//! `c*_{2,4} ≈ 0.77228` — the long plateau near `x*` is Theorem 5's
//! `Θ(√(1/ν))` middle phase.
//!
//! Also prints the Theorem 5 plateau sweep: rounds-to-τ times `√ν` should
//! be approximately constant across two decades of `ν`.

use peel_analysis::theorem5::{beta_trajectory, default_tau, plateau_sweep};
use peel_analysis::threshold::threshold;
use peel_bench::{row, Args};

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        eprintln!(
            "fig1 [--max-rounds R]\n\
             Reproduces Figure 1 (β_i trajectories near threshold, k=2, r=4)\n\
             and the Theorem 5 plateau sweep. Output: CSV series."
        );
        return;
    }
    let max_rounds: u32 = args.get("max-rounds", 4000);
    let k = 2u32;
    let r = 4u32;
    let t = threshold(k, r).unwrap();

    println!("# Figure 1: beta_i trajectories, k={k}, r={r}");
    println!("# c* = {:.6}, x* = {:.6}", t.c_star, t.x_star);

    let cs = [0.77f64, 0.772];
    let trajs: Vec<Vec<f64>> = cs
        .iter()
        .map(|&c| beta_trajectory(k, r, c, 1e-6, max_rounds))
        .collect();
    println!("round,beta(c=0.77),beta(c=0.772)");
    let longest = trajs.iter().map(Vec::len).max().unwrap();
    for i in 0..longest {
        let cells: Vec<String> = trajs
            .iter()
            .map(|t| {
                t.get(i)
                    .map(|b| format!("{b:.6}"))
                    .unwrap_or_else(|| "".to_string())
            })
            .collect();
        println!("{},{}", i + 1, cells.join(","));
    }

    println!();
    println!(
        "# Theorem 5 plateau sweep: rounds until beta < tau, tau = {:.4}",
        default_tau(k, r)
    );
    let nus = [3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5, 1e-5];
    let sweep = plateau_sweep(k, r, &nus, 10_000_000);
    let widths = [12usize, 10, 16];
    println!(
        "{}",
        row(
            &["nu".into(), "rounds".into(), "rounds*sqrt(nu)".into()],
            &widths
        )
    );
    for (nu, rounds) in sweep {
        println!(
            "{}",
            row(
                &[
                    format!("{nu:.0e}"),
                    format!("{rounds}"),
                    format!("{:.3}", rounds as f64 * nu.sqrt()),
                ],
                &widths
            )
        );
    }
    println!("# Theorem 5: the last column should be ~constant (Θ(sqrt(1/nu)) plateau)");
}

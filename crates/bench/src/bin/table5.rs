//! Table 5 reproduction: peeling with subtables — failed trials and mean
//! *subrounds* (r=4, k=2, c ∈ {0.70, 0.75}).
//!
//! Paper: n = 10000·2^i, 1000 trials; observes ≈27 subrounds at c=0.70 and
//! ≈48 at c=0.75 — about 2× the plain round counts of Table 1, far below
//! the naive factor r=4 (Appendix B's Fibonacci-exponential effect).

use rayon::prelude::*;

use peel_bench::{mean, row, Args};
use peel_core::subtable::{peel_subtables, SubtableOpts};
use peel_graph::models::Partitioned;
use peel_graph::rng::Xoshiro256StarStar;

fn main() {
    let args = Args::parse();
    if args.flag("help") {
        eprintln!(
            "table5 [--full] [--trials T] [--max-n N] [--seed S]\n\
             Reproduces Table 5 (subrounds of subtable peeling, r=4, k=2)."
        );
        return;
    }
    let full = args.flag("full");
    let trials: u64 = args.get("trials", if full { 1000 } else { 100 });
    let max_n: usize = args.get("max-n", if full { 2_560_000 } else { 640_000 });
    let seed: u64 = args.get("seed", 555);
    let densities = [0.70f64, 0.75];
    let r = 4;
    let k = 2;

    println!("# Table 5: subtable peeling on partitioned graphs, r=4, k=2, {trials} trials");
    println!(
        "# predicted subround inflation over plain rounds: {:.3}",
        peel_analysis::subround_inflation(k, r as u32)
    );
    let widths = [9usize, 8, 10, 8, 10];
    let mut header = vec!["n".to_string()];
    for c in densities {
        header.push(format!("c={c}"));
        header.push("subrounds".to_string());
    }
    println!("{}", row(&header, &widths));

    let mut n = 10_000usize;
    while n <= max_n {
        let mut cells = vec![format!("{n}")];
        for &c in &densities {
            let results: Vec<(bool, u32)> = (0..trials)
                .into_par_iter()
                .map(|t| {
                    let mut rng =
                        Xoshiro256StarStar::new(seed ^ (n as u64) ^ c.to_bits() ^ (t << 32));
                    let g = Partitioned::new(n, c, r).sample(&mut rng);
                    let out = peel_subtables(&g, k, &SubtableOpts::default());
                    (!out.success(), out.subrounds)
                })
                .collect();
            let failed = results.iter().filter(|(f, _)| *f).count();
            let subrounds = mean(&results.iter().map(|&(_, s)| s as f64).collect::<Vec<_>>());
            cells.push(format!("{failed}"));
            cells.push(format!("{subrounds:.3}"));
        }
        println!("{}", row(&cells, &widths));
        n *= 2;
    }
    println!("# columns per density: failed trials (of {trials}), mean subrounds");
}
